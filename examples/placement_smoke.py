#!/usr/bin/env python3
"""Placement smoke test: the page-migration ablation end to end.

Drives ``dimmlink-repro placement --size tiny`` the way a user would,
against a shared results cache, and asserts the placement stack's
contract:

* the ablation **completes** cold (every policy x workload x mechanism
  point simulated, table printed) and a warm rerun replays >= 90% of
  its grid from the cache — ``data_placement``-carrying specs
  round-trip through the cache keys;
* the **static shim is byte-identical**: running a paged workload
  through a static-policy page table produces the same ``RunResult``
  JSON as the legacy unpaged path, so ``data_placement="static"``
  cannot perturb any pinned golden number;
* the **crossover is real**: on the skewed ``hotpage`` pattern every
  dynamic policy (first-touch, next-touch, profiled) beats the static
  shard, and next-touch actually migrated pages to get there.

Run:  PYTHONPATH=src python examples/placement_smoke.py [cache-dir]

Exits nonzero (via assert) if any guarantee is violated; used as the CI
placement-smoke step.
"""

import json
import re
import sys
import tempfile
from contextlib import redirect_stdout
from io import StringIO

from repro.config import SystemConfig
from repro.experiments.cli import main as cli_main
from repro.experiments.common import build_workload, threads_for
from repro.experiments.runner import RunSpec, execute_spec
from repro.mapping.pagetable import PageTable, make_policy
from repro.nmp.system import NMPSystem


def run_cli(cache_dir: str) -> str:
    out = StringIO()
    with redirect_stdout(out):
        code = cli_main(["placement", "--size", "tiny", "--cache-dir", cache_dir])
    text = out.getvalue()
    assert code == 0, f"placement exited {code}:\n{text}"
    return text


def cache_stats(output: str):
    match = re.search(r"\[cache\] cache\.hits=(\d+) cache\.misses=(\d+)", output)
    assert match, f"no cache stat line:\n{output}"
    return int(match.group(1)), int(match.group(2))


def assert_static_is_legacy() -> None:
    """Paged ops + static page table == legacy unpaged run, byte for byte."""
    config = SystemConfig.named("4D-2C")
    threads = threads_for(config)

    legacy = build_workload("pagerank", size="tiny")
    system = NMPSystem(config, idc="mcn")
    baseline = system.run(
        legacy.thread_factories(threads, config.num_dimms),
        workload_name=legacy.name,
    )

    paged = build_workload("pagerank", size="tiny", paged=True)
    system = NMPSystem(config, idc="mcn")
    shimmed = system.run(
        paged.thread_factories(threads, config.num_dimms),
        workload_name=paged.name,
        pagetable=PageTable(make_policy("static"), config.num_dimms),
    )

    a = json.dumps(baseline.to_json_dict(), sort_keys=True)
    b = json.dumps(shimmed.to_json_dict(), sort_keys=True)
    assert a == b, "static page table diverged from the legacy unpaged path"
    print("static shim: paged + StaticPolicy == legacy run (byte-identical)")


def assert_crossover() -> None:
    """Dynamic placement beats the static shard on the skewed pattern."""
    times = {}
    migrations = {}
    for policy in ("static", "first_touch", "next_touch", "profiled"):
        spec = RunSpec(
            config="4D-2C",
            workload="hotpage",
            size="tiny",
            mechanism="mcn",
            data_placement=policy,
        )
        result = execute_spec(spec)
        times[policy] = result.time_us
        migrations[policy] = result.stats.sum_suffix("placement.migrations")
    for policy in ("first_touch", "next_touch", "profiled"):
        assert times[policy] < times["static"], (
            f"{policy} ({times[policy]:.1f}us) did not beat "
            f"static ({times['static']:.1f}us) on hotpage"
        )
    assert migrations["next_touch"] > 0, "next-touch never migrated a page"
    assert migrations["static"] == 0, "static policy must never migrate"
    print(
        "crossover: hotpage static "
        f"{times['static']:.1f}us vs next-touch {times['next_touch']:.1f}us "
        f"({migrations['next_touch']:.0f} migrations), "
        f"profiled {times['profiled']:.1f}us"
    )


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="placement-smoke-"
    )

    assert_static_is_legacy()
    assert_crossover()

    cold = run_cli(cache_dir)
    hits, misses = cache_stats(cold)
    assert misses > 0, "cold run simulated nothing"
    print(f"placement cold: {misses} simulated, {hits} replayed")

    warm = run_cli(cache_dir)
    hits, misses = cache_stats(warm)
    print(f"placement warm: {hits} hits / {misses} misses")
    rate = hits / (hits + misses)
    assert rate >= 0.90, f"warm cache hit rate {rate:.0%} < 90%"

    strip = lambda text: [
        line for line in text.splitlines() if "[cache]" not in line
    ]
    assert strip(warm) == strip(cold), "warm table differs from cold table"
    print("placement smoke: OK")


if __name__ == "__main__":
    main()
