#!/usr/bin/env python3
"""Graph analytics across every IDC mechanism (the paper's motivation).

Runs BFS and PageRank on the same partitioned R-MAT graph under all four
inter-DIMM communication mechanisms plus the CPU baseline, and prints the
Fig. 10-style comparison: who wins, the non-overlapped IDC stall share,
and how much traffic each mechanism pushes through the host.

Run:  python examples/graph_analytics.py [size]
"""

import sys

from repro import SystemConfig, build_workload, run_cpu, run_nmp, run_optimized
from repro.analysis import format_table


def main(size: str = "small") -> None:
    config_name = "16D-8C"
    rows = []
    for workload_name in ("bfs", "pagerank"):
        workload = build_workload(workload_name, size)
        cpu = run_cpu(SystemConfig.named(config_name), workload)
        systems = {
            "CPU (16-core)": cpu,
            "MCN (CPU-fwd)": run_nmp(SystemConfig.named(config_name), workload, "mcn"),
            "AIM (ded. bus)": run_nmp(SystemConfig.named(config_name), workload, "aim"),
            "DIMM-Link": run_nmp(SystemConfig.named(config_name), workload, "dimm_link"),
            "DIMM-Link-opt": run_optimized(SystemConfig.named(config_name), workload),
        }
        for label, result in systems.items():
            rows.append(
                (
                    workload_name,
                    label,
                    result.total_ps / 1e6,
                    cpu.total_ps / result.total_ps,
                    result.nonoverlapped_idc_ratio,
                    result.forwarded_fraction,
                )
            )
    print(f"graph analytics on {config_name} (size={size})\n")
    print(
        format_table(
            ["workload", "system", "time (us)", "speedup", "IDC stall", "host-fwd share"],
            rows,
            precision=2,
        )
    )
    print(
        "\nreading: DIMM-Link routes most inter-DIMM traffic over its "
        "bridge links,\nso its host-forwarded share and IDC stalls drop, "
        "which is where the speedup\nover MCN/AIM comes from (paper Sec. V-C)."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
