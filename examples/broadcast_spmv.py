#!/usr/bin/env python3
"""Broadcast-dominant SpMV across broadcast-capable mechanisms (Fig. 12).

Iterative y = A x where the x-vector is re-published to every DIMM each
iteration.  Compares MCN-BC (host read + per-DIMM writes), ABC-DIMM
(one broadcast-write per channel), AIM-BC (single snooped bus transfer),
and DIMM-Link (group floods + one host forward per remote group).

Run:  python examples/broadcast_spmv.py [size]
"""

import sys

from repro import SystemConfig, build_workload, run_nmp
from repro.analysis import format_table

LABELS = {
    "mcn": "MCN-BC",
    "abc": "ABC-DIMM",
    "aim": "AIM-BC",
    "dimm_link": "DIMM-Link",
}


def main(size: str = "small") -> None:
    workload = build_workload("spmv_bc", size)
    print(f"broadcast SpMV (size={size}), speedups over MCN-BC\n")
    rows = []
    for dpc_label, config_name in (("2 DIMMs/channel", "16D-8C"),
                                   ("3 DIMMs/channel", "12D-4C")):
        results = {
            mech: run_nmp(SystemConfig.named(config_name), workload, mech)
            for mech in LABELS
        }
        base = results["mcn"].total_ps
        for mech, result in results.items():
            rows.append(
                (
                    dpc_label,
                    LABELS[mech],
                    result.total_ps / 1e6,
                    base / result.total_ps,
                )
            )
    print(format_table(["system", "mechanism", "time (us)", "speedup"], rows, precision=2))
    print(
        "\nreading: AIM-BC's ideal multi-drop bus wins on paper but is "
        "impractical for\nDDR4/DDR5 signal integrity; DIMM-Link gets most of "
        "the benefit with only\npoint-to-point links (paper Sec. V-C, Fig. 12)."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
