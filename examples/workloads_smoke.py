#!/usr/bin/env python3
"""Workload-suite smoke test: dlrm + apsp end to end, cold then warm.

Drives both workload-suite experiments the way a user would
(``dimmlink-repro dlrm|apsp --size tiny``) against a shared results
cache, and asserts the suite's contract:

* both sweeps **complete** cold (every spec simulated, tables printed);
* the APSP sweep's blocked numerics are **zero-diff** against the
  triple-loop Floyd–Warshall reference, checked here directly as well as
  by the sweep's own ``verify`` pass;
* a warm rerun of both experiments replays >= 90% of its grid points
  from the cache — params-carrying specs (``batch_size=...``,
  ``block=...,n=...``) round-trip through the cache keys.

Run:  PYTHONPATH=src python examples/workloads_smoke.py [cache-dir]

Exits nonzero (via assert) if any guarantee is violated; used as the CI
workloads-smoke step.
"""

import re
import sys
import tempfile
from contextlib import redirect_stdout
from io import StringIO

from repro.experiments.cli import main as cli_main
from repro.workloads.apsp import BlockedFloydWarshall

EXPERIMENTS = ("dlrm", "apsp")


def run_cli(experiment: str, cache_dir: str) -> str:
    out = StringIO()
    with redirect_stdout(out):
        code = cli_main([experiment, "--size", "tiny", "--cache-dir", cache_dir])
    text = out.getvalue()
    assert code == 0, f"{experiment} exited {code}:\n{text}"
    return text


def cache_stats(output: str):
    match = re.search(r"\[cache\] cache\.hits=(\d+) cache\.misses=(\d+)", output)
    assert match, f"no cache stat line:\n{output}"
    return int(match.group(1)), int(match.group(2))


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="workloads-smoke-"
    )

    # zero-diff APSP numerics, asserted independently of the sweep
    workload = BlockedFloydWarshall(n=48, block=12)
    assert workload.blocked_distances() == workload.reference_distances(), (
        "blocked Floyd-Warshall diverged from the triple-loop reference"
    )
    print("apsp numerics: blocked == reference (zero diff)")

    total_hits = total_misses = 0
    for experiment in EXPERIMENTS:
        cold = run_cli(experiment, cache_dir)
        hits, misses = cache_stats(cold)
        assert misses > 0, f"{experiment}: cold run simulated nothing"
        print(f"{experiment} cold: {misses} simulated, {hits} replayed")

        warm = run_cli(experiment, cache_dir)
        hits, misses = cache_stats(warm)
        total_hits += hits
        total_misses += misses
        print(f"{experiment} warm: {hits} hits / {misses} misses")

        strip = lambda text: [
            line for line in text.splitlines() if "[cache]" not in line
        ]
        assert strip(warm) == strip(cold), (
            f"{experiment}: warm table differs from cold table"
        )

    rate = total_hits / (total_hits + total_misses)
    print(f"warm hit rate across both suites: {rate:.0%}")
    assert rate >= 0.90, f"warm cache hit rate {rate:.0%} < 90%"
    print("workloads smoke: OK")


if __name__ == "__main__":
    main()
