#!/usr/bin/env python3
"""Fabric smoke test: a distributed sweep survives a SIGKILLed worker.

Drives the crash-safe work fabric (:mod:`repro.fabric`) end to end with
real worker *processes* against a shared file broker:

* a real fig16-style grid is submitted to a broker directory;
* two workers drain it; one is SIGKILLed while it provably holds a
  lease on a healthy spec (mid-simulation);
* one spec is sabotaged to crash on every attempt (the "injected
  crasher").

Then asserts the fabric contract:

* the sweep **completes** — every healthy spec lands in the shared
  cache, including the one the killed worker was holding;
* the killed worker's lease is **reclaimed** (its journal records the
  lease-expiry recovery) rather than wedging the queue;
* **exactly** the injected crasher is quarantined into the farm-wide
  dead-letter store, after its full retry budget;
* a warm rerun of the same grid through broker mode replays from the
  cache (>= 90% hit rate) — zero lost work.

Run:  PYTHONPATH=src python examples/fabric_smoke.py [broker-dir]

Exits nonzero (via assert) if any guarantee is violated; used as the CI
fabric-smoke step.  (Internally re-execs itself with ``--worker`` to
spawn the worker processes.)
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import fig16_bandwidth
from repro.experiments.runner import SweepRunner, execute_spec
from repro.fabric.broker import BrokerConfig, WorkBroker
from repro.fabric.worker import Worker

#: 3 CPU references + a 3x3 bandwidth sweep = 12 real tiny specs.
SPECS = fig16_bandwidth.specs(
    size="tiny",
    bandwidths=(8.0, 25.6, 51.2),
    config_names=("4D-2C",),
    workload_names=("pagerank", "spmv", "bfs"),
)

CRASH_AT = 4  # spec index that raises on every attempt

#: long enough that a live worker's heartbeat (TTL/3) never lapses,
#: short enough that reclaiming the killed worker costs seconds.
LEASE_TTL_S = 3.0


def chaotic_execute(spec):
    """The sabotage hook every worker runs: one spec always crashes."""
    if spec == SPECS[CRASH_AT]:
        raise RuntimeError("chaos: injected crasher")
    return execute_spec(spec)


def worker_main(root: str) -> None:
    """``--worker`` mode: one pull-based fabric worker, drain and exit."""
    worker = Worker(WorkBroker(root), execute=chaotic_execute, poll_interval_s=0.1)
    worker.run()
    print(f"[fabric-worker] {worker}")


def spawn_worker(root: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--worker", root],
        env=dict(os.environ, PYTHONPATH=os.pathsep.join(
            [str(Path(__file__).resolve().parent.parent / "src")]
            + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
        )),
    )


def wait_for_healthy_leased_record(broker, pid, crasher_key, timeout_s=120.0):
    """Block until ``pid`` has journaled a lease on a *healthy* spec."""
    needle = f"-{pid}-"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for key, record in broker.records().items():
            if (
                record.state == "leased"
                and needle in record.worker
                and key != crasher_key
            ):
                return key
        time.sleep(0.01)
    raise AssertionError(f"worker {pid} never journaled a healthy lease")


def run_fabric_smoke(root: str) -> None:
    crasher_key = SPECS[CRASH_AT].cache_key()
    broker = WorkBroker(
        root, config=BrokerConfig(retries=1, lease_ttl_s=LEASE_TTL_S)
    )
    report = broker.submit(SPECS)
    print(f"[fabric] submitted: {report.summary()} -> {broker.root}")
    assert report.enqueued == len(SPECS), report.summary()

    victim = spawn_worker(root)
    survivor = spawn_worker(root)
    procs = [victim, survivor]
    try:
        victim_key = wait_for_healthy_leased_record(broker, victim.pid, crasher_key)
        os.kill(victim.pid, signal.SIGKILL)
        print(f"[fabric] SIGKILLed worker {victim.pid} mid-spec "
              f"(held {victim_key[:12]}...)")
        assert victim.wait(timeout=60) == -signal.SIGKILL
        replacement = spawn_worker(root)  # back to two workers
        procs.append(replacement)
        for proc in (survivor, replacement):
            assert proc.wait(timeout=600) == 0, f"worker exited {proc.returncode}"
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    # the sweep completed: every healthy spec is in the shared cache ...
    assert broker.drained(), f"queue not drained: {broker}"
    counts = broker.counts()
    assert counts["done"] == len(SPECS) - 1, counts
    for index, spec in enumerate(SPECS):
        if index == CRASH_AT:
            continue
        assert broker.cache.get(spec.cache_key()) is not None, f"spec {index} lost"
    # ... the killed worker's lease was reclaimed, not wedged ...
    victim_record = broker.records()[victim_key]
    assert victim_record.state == "done", victim_record
    assert "lease expired" in victim_record.error, victim_record
    print(f"[fabric] reclaimed after kill: {victim_record.error}")
    # ... and exactly the injected crasher was quarantined, farm-wide
    assert counts["dead"] == 1, counts
    broker.dead_letters.refresh()
    assert broker.dead_letters.keys() == [crasher_key]
    crasher = broker.dead_letters.known(crasher_key)
    assert "injected crasher" in crasher["error"], crasher
    assert crasher["attempts"] == 2, crasher  # initial + one retry
    print(f"[fabric] quarantined: {crasher['error']} "
          f"(attempts={crasher['attempts']})")

    print("[fabric] warm rerun through broker mode ...")
    warm = SweepRunner(broker=WorkBroker(root), execute=chaotic_execute, strict=False)
    results = warm.run(SPECS)
    assert results[CRASH_AT] is None
    assert all(
        results[i] is not None for i in range(len(SPECS)) if i != CRASH_AT
    )
    hits, misses = warm.stats["cache.hits"], warm.stats["cache.misses"]
    rate = hits / (hits + misses) if hits + misses else 1.0
    print(f"[fabric] warm run: {hits} hits / {misses} misses ({rate:.0%})")
    assert rate >= 0.90, f"warm hit rate {rate:.0%} < 90%"
    print("[fabric] ok: sweep survived the SIGKILL, quarantined the crasher")


def main() -> None:
    if len(sys.argv) > 2 and sys.argv[1] == "--worker":
        worker_main(sys.argv[2])
    elif len(sys.argv) > 1:
        run_fabric_smoke(sys.argv[1])
    else:
        with tempfile.TemporaryDirectory(prefix="dl-fabric-") as root:
            run_fabric_smoke(root)


if __name__ == "__main__":
    main()
