#!/usr/bin/env python3
"""Chaos smoke test: a sweep survives a crashing and a hanging spec.

Runs a real fig16-style grid through the supervised :class:`SweepRunner`
with a fault-injecting ``execute`` hook that makes one spec crash every
attempt and another hang until the per-spec timeout cuts it off.  Then
asserts the fault-tolerance contract end to end:

* the sweep **completes** — every healthy spec simulates, is
  checkpointed incrementally, and comes back in order;
* exactly the two bad specs are **quarantined** into the dead-letter
  list, with their retry counts and (for the hang) the engine
  watchdog's diagnosis of where the simulation was stuck;
* a warm rerun of the same sweep replays the healthy specs from the
  cache (>= 90% hit rate), so an interrupted campaign resumes with
  zero lost work.

Run:  PYTHONPATH=src python examples/chaos_smoke.py [cache-dir]

Exits nonzero (via assert) if any guarantee is violated; used as the CI
chaos step.
"""

import sys
import tempfile

from repro.experiments import fig16_bandwidth
from repro.experiments.runner import SweepRunner, execute_spec
from repro.results_cache import ResultsCache
from repro.sim.engine import Simulator

#: grid: per workload a CPU reference + an 8-point bandwidth sweep;
#: 27 specs total, so a warm rerun with 2 quarantined specs still
#: clears the >= 90% hit-rate bar.
SPECS = fig16_bandwidth.specs(
    size="tiny",
    bandwidths=(4.0, 8.0, 16.0, 25.6, 32.0, 51.2, 64.0, 102.4),
    config_names=("4D-2C",),
    workload_names=("pagerank", "spmv", "bfs"),
)

CRASH_AT = 2  # spec index that raises on every attempt
HANG_AT = 5  # spec index whose simulation livelocks until the watchdog fires

#: generous next to the sub-second healthy specs, tight enough that the
#: two hang attempts cost the smoke run ~20s.
SPEC_TIMEOUT_S = 10.0


def chaotic_execute(spec):
    """Fault-injecting hook: same simulations, two sabotaged points."""
    if spec == SPECS[CRASH_AT]:
        raise RuntimeError("chaos: injected crash")
    if spec == SPECS[HANG_AT]:
        # a hung *simulation*: the event queue never drains, so the
        # engine's StallWatchdog must cut it off and name the process
        sim = Simulator()

        def spin():
            while True:
                yield 1

        sim.process(spin(), name="chaos.hung-kernel")
        sim.run()
    return execute_spec(spec)


def run_chaos_sweep(cache_dir: str) -> None:
    bad = {CRASH_AT, HANG_AT}

    print(f"[chaos] cold sweep: {len(SPECS)} specs, 2 sabotaged ...")
    chaos = SweepRunner(
        jobs=2,
        cache=ResultsCache(cache_dir),
        execute=chaotic_execute,
        retries=1,
        spec_timeout=SPEC_TIMEOUT_S,
        strict=False,
    )
    results = chaos.run(SPECS)

    # the sweep completed: every healthy spec has an in-order result ...
    for index, result in enumerate(results):
        if index in bad:
            assert result is None, f"sabotaged spec {index} produced a result"
        else:
            assert result is not None, f"healthy spec {index} lost its result"
            assert result.workload == SPECS[index].workload
    # ... and exactly the sabotaged specs were quarantined, with retries
    quarantined = {SPECS.index(letter.spec) for letter in chaos.dead_letters}
    assert quarantined == bad, f"quarantined {quarantined}, expected {bad}"
    for letter in chaos.dead_letters:
        assert letter.attempts == 2, f"expected 2 attempts, saw {letter.attempts}"
        if SPECS.index(letter.spec) == HANG_AT:
            # the engine watchdog diagnosed *where* the hang was stuck
            assert "stalled at" in letter.diagnosis, letter
            assert "chaos.hung-kernel" in letter.diagnosis, letter
        print(f"[chaos] dead-letter: {letter.summary()}")

    print("[chaos] warm rerun of the full grid (healthy specs cached) ...")
    warm = SweepRunner(
        jobs=2,
        cache=ResultsCache(cache_dir),
        execute=chaotic_execute,
        retries=0,
        spec_timeout=SPEC_TIMEOUT_S,
        strict=False,
    )
    warm.run(SPECS)
    hits, misses = warm.stats["cache.hits"], warm.stats["cache.misses"]
    rate = hits / (hits + misses)
    print(f"[chaos] warm run: {hits} hits / {misses} misses ({rate:.0%})")
    assert rate >= 0.90, f"warm hit rate {rate:.0%} < 90%"
    print("[chaos] ok: sweep survived the crash and the hang")


def main() -> None:
    if len(sys.argv) > 1:
        run_chaos_sweep(sys.argv[1])
    else:
        with tempfile.TemporaryDirectory(prefix="dl-chaos-") as cache_dir:
            run_chaos_sweep(cache_dir)


if __name__ == "__main__":
    main()
