#!/usr/bin/env python3
"""Extending the library: a custom workload, topology, and task mapping.

Implements a halo-exchange "ocean current" stencil as a user-defined
:class:`~repro.workloads.base.Workload`, runs it on a torus-topology
DIMM-Link system, and shows the full distance-aware mapping flow on a
deliberately scrambled initial placement.

Run:  python examples/custom_workload.py
"""

from typing import Iterator, List

from repro import (
    NMPSystem,
    SystemConfig,
    distance_aware_placement,
    profile_traffic,
    threads_for,
)
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.batching import OffsetCursor, batched_reads, batched_writes
from repro.workloads.ops import Barrier, Compute


class OceanCurrents(Workload):
    """A 9-point stencil with two-deep halos over a ring of ocean tiles.

    Tile t's data lives on DIMM ``t % num_dimms`` (interleaved layout!),
    so a runtime that places threads sequentially gets poor locality —
    exactly the situation distance-aware mapping repairs.
    """

    name = "ocean_currents"

    def __init__(self, tile_cells: int = 8192, iterations: int = 6) -> None:
        self.tile_cells = tile_cells
        self.iterations = iterations

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            home = thread_id % num_dimms  # interleaved data layout
            left = (thread_id - 1) % num_threads % num_dimms
            right = (thread_id + 1) % num_threads % num_dimms

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    cell_bytes = self.tile_cells * 8
                    for _ in range(self.iterations):
                        halo = {}
                        for neighbor in (left, right):
                            halo[neighbor] = halo.get(neighbor, 0) + 2 * 1024
                        yield from batched_reads(halo, cursor)
                        yield from batched_reads({home: cell_bytes}, cursor, chunk=8192)
                        yield Compute(6 * self.tile_cells)
                        yield from batched_writes({home: cell_bytes}, cursor, chunk=8192)
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]


def main() -> None:
    config = SystemConfig.named("16D-8C", topology="torus")
    workload = OceanCurrents()
    threads = threads_for(config)

    # a mapping-oblivious runtime: threads fill DIMMs sequentially,
    # but the tiles are interleaved across DIMMs
    naive = [t // config.nmp.cores_per_dimm for t in range(threads)]
    system = NMPSystem(SystemConfig.named("16D-8C", topology="torus"), idc="dimm_link")
    naive_run = system.run(
        workload.thread_factories(threads, config.num_dimms), placement=naive
    )

    # the paper's flow: profile traffic, solve Algorithm 1, migrate
    traffic = profile_traffic(
        workload.thread_factories(threads, config.num_dimms), config.num_dimms
    )
    optimized = distance_aware_placement(traffic, config)
    system = NMPSystem(SystemConfig.named("16D-8C", topology="torus"), idc="dimm_link")
    optimized_run = system.run(
        workload.thread_factories(threads, config.num_dimms), placement=optimized
    )

    print(f"custom workload {workload.name!r} on a torus-topology DL group")
    print(f"  naive placement:     {naive_run.time_us:8.1f} us "
          f"(host-fwd share {naive_run.forwarded_fraction:.0%})")
    print(f"  Algorithm 1 mapping: {optimized_run.time_us:8.1f} us "
          f"(host-fwd share {optimized_run.forwarded_fraction:.0%})")
    print(f"  speedup from distance-aware mapping: "
          f"{naive_run.time_ps / optimized_run.time_ps:.2f}x")


if __name__ == "__main__":
    main()
