#!/usr/bin/env python3
"""Quickstart: run one kernel on a DIMM-Link NMP system.

Builds the paper's 16-DIMM / 8-channel machine, runs PageRank on the
16-core CPU baseline and on DIMM-Link (with distance-aware task mapping),
and prints the speedup plus where the bytes went.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, build_workload, run_cpu, run_optimized
from repro.energy import energy_report


def main() -> None:
    config = SystemConfig.named("16D-8C")
    workload = build_workload("pagerank", size="small")

    print(f"system: {config.name} "
          f"({config.num_dimms} DIMMs x {config.nmp.cores_per_dimm} NMP cores, "
          f"{config.num_channels} channels, groups {config.groups})")
    print(f"workload: {workload.name} on an R-MAT graph "
          f"({workload.graph.num_vertices} vertices, {workload.graph.num_edges} edges)")

    cpu = run_cpu(config, workload)
    print(f"\n16-core CPU baseline: {cpu.time_us:9.1f} us")

    dl = run_optimized(SystemConfig.named("16D-8C"), workload)
    print(f"DIMM-Link (opt):      {dl.total_ps / 1e6:9.1f} us "
          f"(incl. profiling) -> {cpu.total_ps / dl.total_ps:.2f}x speedup")

    breakdown = dl.traffic_breakdown
    total = sum(breakdown.values())
    print("\nwhere the bytes went (Fig. 11 style):")
    for path, nbytes in breakdown.items():
        print(f"  {path:12s} {nbytes / 1e6:8.2f} MB  ({nbytes / total:5.1%})")
    print(f"  IDC traffic forwarded via host CPU: {dl.forwarded_fraction:.1%} "
          f"(paper: ~29%)")

    energy = energy_report(dl, config, polling=dl.polling)
    print("\nenergy breakdown:")
    for category, joules in energy.as_dict().items():
        print(f"  {category:11s} {joules * 1e6:9.2f} uJ")


if __name__ == "__main__":
    main()
