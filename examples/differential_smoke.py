#!/usr/bin/env python3
"""Differential smoke test: epoch loop ≡ legacy loop on a real figure.

Runs the Fig. 10 point-to-point comparison (one tiny workload, one
config — CPU baseline plus all four IDC mechanisms) twice: once under
the default epoch-synchronized fast-forward loop and once under the
legacy one-pop-per-event loop, then asserts the two summary JSON
documents — every row, every ratio, every digit — are **byte
identical**.  This is the end-to-end witness for the bit-identity
contract documented in `DESIGN.md` §14: the epoch loop may only change
how fast the simulator gets to the answer, never the answer.

Run:  PYTHONPATH=src python examples/differential_smoke.py

Exits nonzero (via assert) if the loops diverge; used as the CI
differential step.
"""

import json

from repro.experiments import fig10_p2p
from repro.sim import set_default_loop


def run_under(legacy: bool) -> str:
    previous = set_default_loop(legacy)
    try:
        rows = fig10_p2p.run(
            size="tiny", config_names=("4D-2C",), workload_names=("pagerank",)
        )
        summary = fig10_p2p.summary(rows)
    finally:
        set_default_loop(previous)
    return json.dumps({"rows": rows, "summary": summary}, sort_keys=True)


def main() -> None:
    epoch = run_under(legacy=False)
    legacy = run_under(legacy=True)
    assert epoch == legacy, "epoch and legacy loops produced different results"
    document = json.loads(epoch)
    print("differential smoke: epoch == legacy, byte-identical summary JSON")
    print(f"  rows: {len(document['rows'])}")
    for key, value in sorted(document["summary"].items()):
        print(f"  {key}: {value:.4f}")


if __name__ == "__main__":
    main()
