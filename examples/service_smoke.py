#!/usr/bin/env python3
"""Service smoke test: a socket-fronted sweep farm survives real chaos.

Drives the sweep service (:mod:`repro.service`) and the socket broker
(:mod:`repro.fabric.netbroker`) end to end with real *processes*:

* one ``repro.service.server`` process owns the broker directory, armed
  (via ``DIMMLINK_FABRIC_FAULTS=net.server.exit_mid_reply:exit``) to
  ``os._exit`` after journaling its first outcome but *before* the
  reply leaves the wire — exactly-once's worst ambiguity, injected
  mid-stream while a subscriber is watching progress;
* a real fig16-style grid is submitted over the socket;
* two shared-nothing netbroker workers drain it; one is SIGKILLed while
  it provably holds a lease;
* the parent supervises: restarts the crashed server (same port,
  unarmed), replaces the killed worker, and keeps a progress
  subscription streaming across the crash.

Then asserts the service contract:

* the sweep **completes exactly once** — every spec lands ``done``,
  none dead, no lease left behind;
* the progress stream **resumes across the server crash** (the client
  reconnects and reconciles via a ``reset`` snapshot) and observes the
  grid drain;
* the shared cache is **byte-identical** to a serial in-process run of
  the same grid;
* a warm rerun replays from the cache (>= 90% hit rate) — zero lost or
  repeated work.

Run:  PYTHONPATH=src python examples/service_smoke.py [broker-dir]

Exits nonzero (via assert) if any guarantee is violated; used as the CI
service-smoke step.  (Internally re-execs itself with ``--worker`` to
spawn the netbroker worker processes.)
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.experiments import fig16_bandwidth
from repro.experiments.runner import SweepRunner, execute_spec
from repro.fabric.broker import WorkBroker
from repro.fabric.faultpoints import EXIT_STATUS
from repro.fabric.netbroker import NetBroker
from repro.fabric.worker import Worker
from repro.results_cache import ResultsCache
from repro.service.client import ServiceClient, ServiceUnavailable

#: 2 CPU references + a 2x3 bandwidth sweep = 8 real tiny specs.
SPECS = fig16_bandwidth.specs(
    size="tiny",
    bandwidths=(8.0, 25.6, 51.2),
    config_names=("4D-2C",),
    workload_names=("pagerank", "spmv"),
)

#: long enough that a live worker's heartbeat (TTL/3) never lapses,
#: short enough that reclaiming the killed worker costs seconds.
LEASE_TTL_S = 3.0

SRC_ROOT = str(Path(__file__).resolve().parent.parent / "src")


def _env(**extra: str) -> dict:
    path = os.pathsep.join(
        [SRC_ROOT]
        + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
    )
    return dict(os.environ, PYTHONPATH=path, **extra)


def worker_main(address: str) -> None:
    """``--worker`` mode: one shared-nothing netbroker worker.

    Retries through :class:`ServiceUnavailable` windows (the server is
    expected to crash and come back) and exits 0 once the farm drains.
    """
    broker = NetBroker(address, retries=20, backoff_s=0.05, backoff_cap_s=0.25)

    def steady_execute(spec):
        # tiny specs run in ~0.1s; hold the lease a beat longer so the
        # parent can provably observe (and SIGKILL) a mid-spec worker
        result = execute_spec(spec)
        time.sleep(0.25)
        return result

    deadline = time.monotonic() + 600.0
    while time.monotonic() < deadline:
        worker = Worker(broker, execute=steady_execute, poll_interval_s=0.1)
        try:
            worker.run()
            print(f"[service-worker] {worker}", flush=True)
            return
        except ServiceUnavailable:
            print("[service-worker] endpoint down; retrying", flush=True)
            time.sleep(0.2)
    raise AssertionError("worker never saw the farm drain")


def spawn_worker(address: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--worker", address],
        env=_env(),
    )


def spawn_server(root: str, port: int, armed: bool) -> subprocess.Popen:
    env = _env()
    env.pop("DIMMLINK_FABRIC_FAULTS", None)
    if armed:
        env["DIMMLINK_FABRIC_FAULTS"] = "net.server.exit_mid_reply:exit"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", root,
         "--port", str(port), "--lease-ttl", str(LEASE_TTL_S)],
        env=env, stdout=subprocess.PIPE, text=True,
    )


def read_endpoint(server: subprocess.Popen) -> str:
    line = server.stdout.readline()
    match = re.search(r"tcp://127\.0\.0\.1:(\d+)", line)
    assert match, f"no endpoint in server banner: {line!r}"
    # keep draining the pipe so later server prints can never block it
    threading.Thread(
        target=lambda: [None for _ in server.stdout], daemon=True
    ).start()
    return f"tcp://127.0.0.1:{match.group(1)}"


def submit_with_retry(address: str, specs) -> list:
    client = ServiceClient(address, timeout_s=10.0, retries=10,
                           backoff_s=0.05, backoff_cap_s=0.5)
    report = client.submit(specs)["report"]
    client.close()
    assert report["enqueued"] == len(specs), report
    return list(report["keys"])


def find_healthy_lease(broker: WorkBroker, pid: int):
    """A key ``pid`` has journaled a live lease on, or None."""
    needle = f"-{pid}-"
    for key, record in broker.records().items():
        if record.state == "leased" and needle in record.worker:
            return key
    return None


def run_service_smoke(root: str) -> None:
    keys = [spec.cache_key() for spec in SPECS]
    server = spawn_server(root, port=0, armed=True)
    address = read_endpoint(server)
    print(f"[service] armed server on {address} (broker: {root})")
    submit_with_retry(address, SPECS)
    print(f"[service] submitted {len(SPECS)} spec(s) over the socket")

    # the mid-stream subscriber: watches progress across the crash
    events: list = []
    watcher_final: dict = {}

    def watch() -> None:
        client = ServiceClient(address, timeout_s=10.0, backoff_s=0.1,
                               backoff_cap_s=0.5)
        watcher_final.update(
            client.watch(keys, on_event=events.append,
                         reconnect_attempts=40)
        )
        client.close()

    watcher = threading.Thread(target=watch, daemon=True)
    watcher.start()

    observer = WorkBroker(root)  # read-only view of the shared state
    port = int(address.rsplit(":", 1)[1])
    victim = spawn_worker(address)
    survivor = spawn_worker(address)
    procs = [victim, survivor]
    victim_killed = False
    server_restarted = False
    try:
        deadline = time.monotonic() + 600.0
        while time.monotonic() < deadline:
            status = server.poll()
            if status is not None and not server_restarted:
                # the armed fault point fired: journaled outcome, reply
                # never sent.  Restart the owner, unarmed, same port.
                assert status == EXIT_STATUS, f"server exited {status}"
                print("[service] server os._exit mid-reply; restarting")
                server = spawn_server(root, port=port, armed=False)
                read_endpoint(server)
                server_restarted = True
            if not victim_killed:
                held = find_healthy_lease(observer, victim.pid)
                if held is not None:
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.wait(timeout=60)
                    print(f"[service] SIGKILLed worker {victim.pid} "
                          f"(held {held[:12]}...)")
                    victim_killed = True
                    procs.append(spawn_worker(address))
            live = [p for p in procs if p.poll() is None]
            if not live and server_restarted and victim_killed:
                break
            time.sleep(0.02)
        assert server_restarted, "armed server never tripped its fault"
        assert victim_killed, "victim worker never held an observable lease"
        for proc in procs:
            code = proc.wait(timeout=600)
            if proc is victim:
                assert code == -signal.SIGKILL, code
            else:
                assert code == 0, f"worker exited {code}"
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        if server.poll() is None:
            server.terminate()
            server.wait(timeout=30)

    # exactly once: every spec done, none dead, no lease left behind
    counts = observer.counts()
    assert counts["done"] == len(SPECS) and counts["dead"] == 0, counts
    time.sleep(LEASE_TTL_S + 0.5)
    assert observer.leases.live_count() == 0, "orphaned lease"
    print(f"[service] drained exactly once: {counts}")

    # the stream survived the crash and observed the drain
    watcher.join(timeout=120)
    assert not watcher.is_alive(), "progress stream never finished"
    assert watcher_final.get("done") == len(SPECS), watcher_final
    kinds = {event.get("type") for event in events}
    assert "drained" in kinds, kinds
    print(f"[service] stream observed {len(events)} event(s) across "
          f"the crash ({', '.join(sorted(kinds))})")

    # byte-identical to a serial in-process run of the same grid
    with tempfile.TemporaryDirectory(prefix="dl-serial-") as serial_root:
        serial = SweepRunner(jobs=1, cache=ResultsCache(serial_root))
        serial.run(SPECS)
        for spec in SPECS:
            key = spec.cache_key()
            farm_bytes = observer.cache.path_for(key).read_bytes()
            assert farm_bytes == serial.cache.path_for(key).read_bytes(), (
                f"result for {key[:12]} diverged from the serial run"
            )
    print("[service] results byte-identical to the serial reference")

    # a warm rerun replays from the cache: zero lost work
    warm = SweepRunner(broker=WorkBroker(root))
    results = warm.run(SPECS)
    assert all(result is not None for result in results)
    hits, misses = warm.stats["cache.hits"], warm.stats["cache.misses"]
    rate = hits / (hits + misses) if hits + misses else 1.0
    print(f"[service] warm run: {hits} hits / {misses} misses ({rate:.0%})")
    assert rate >= 0.90, f"warm hit rate {rate:.0%} < 90%"
    print("[service] ok: farm survived the SIGKILL and the mid-reply "
          "server crash; results exactly once")


def main() -> None:
    if len(sys.argv) > 2 and sys.argv[1] == "--worker":
        worker_main(sys.argv[2])
    elif len(sys.argv) > 1:
        run_service_smoke(sys.argv[1])
    else:
        with tempfile.TemporaryDirectory(prefix="dl-service-") as root:
            run_service_smoke(root)


if __name__ == "__main__":
    main()
