#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one go.

Equivalent to ``dimmlink-repro all --size small`` but kept as a runnable
example of driving the experiment harnesses programmatically.  Takes
roughly 15-30 minutes at the ``small`` preset on a laptop.

Run:  python examples/reproduce_all.py [size]
"""

import sys
import time

from repro.experiments import (
    fig01_idc_bandwidth,
    fig10_p2p,
    fig11_breakdown,
    fig12_broadcast,
    fig13_energy,
    fig14_sync,
    fig15_polling,
    fig16_bandwidth,
    fig17_topology,
    mapping_ablation,
    table1_bandwidth_model,
    table2_serdes,
)


def main(size: str = "small") -> None:
    unsized = (
        ("Table I", table1_bandwidth_model.main),
        ("Table II", table2_serdes.main),
        ("Fig. 1", fig01_idc_bandwidth.main),
        ("Fig. 14", fig14_sync.main),
    )
    sized = (
        ("Fig. 10", fig10_p2p.main),
        ("Fig. 11", fig11_breakdown.main),
        ("Fig. 12", fig12_broadcast.main),
        ("Fig. 13", fig13_energy.main),
        ("Fig. 15", fig15_polling.main),
        ("Fig. 16", fig16_bandwidth.main),
        ("Fig. 17", fig17_topology.main),
        ("Mapping ablation", mapping_ablation.main),
    )
    for label, runner in unsized:
        start = time.time()
        print(f"\n{'=' * 72}\n{label}\n{'=' * 72}")
        runner()
        print(f"[{label} done in {time.time() - start:.0f}s]")
    for label, runner in sized:
        start = time.time()
        print(f"\n{'=' * 72}\n{label} (size={size})\n{'=' * 72}")
        runner(size)
        print(f"[{label} done in {time.time() - start:.0f}s]")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
