"""Time and bandwidth units for the simulator.

The global simulation clock counts integer **picoseconds**.  Integer time
keeps the event queue deterministic (no float tie-break jitter) while still
resolving sub-nanosecond transfers (a 16-byte flit on a 25 GB/s link lasts
640 ps).

Conventions used throughout the library:

* durations and timestamps: ``int`` picoseconds,
* bandwidths: ``float`` bytes per nanosecond — numerically equal to the
  bandwidth in GB/s (1 GB/s = 1e9 B / 1e9 ns = 1 B/ns), which makes configs
  read exactly like the paper ("25 GB/s per link" -> ``25.0``).
"""

from __future__ import annotations

import math

#: One picosecond (the base unit).
PS: int = 1

# -- epoch fast-forward tuning (see repro.sim.engine) ------------------------

#: Minimum epoch span for the fast-forward run loop.  Components with
#: degenerate lookahead (a zero-latency bus registers ``latency + 1``)
#: would otherwise shrink epochs to single events; the floor keeps batches
#: worth sorting.  Correctness never depends on this value — intra-epoch
#: arrivals are merged in exact ``(time, seq)`` order regardless.
EPOCH_FLOOR_PS: int = 2_000

#: Epoch span used when no lookahead domain is registered at all (pure
#: process/timer simulations with no modelled hardware latencies).
DEFAULT_EPOCH_SPAN_PS: int = 50_000
#: Picoseconds per nanosecond.
NS: int = 1_000
#: Picoseconds per microsecond.
US: int = 1_000_000
#: Picoseconds per millisecond.
MS: int = 1_000_000_000
#: Picoseconds per second.
S: int = 1_000_000_000_000


def ps(value: float) -> int:
    """Convert a picosecond quantity to integer picoseconds."""
    return int(round(value))


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return int(round(value * NS))


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return int(round(value * US))


def ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds."""
    return int(round(value * MS))


def to_ns(time_ps: int) -> float:
    """Convert integer picoseconds back to (float) nanoseconds."""
    return time_ps / NS


def to_us(time_ps: int) -> float:
    """Convert integer picoseconds back to (float) microseconds."""
    return time_ps / US


def to_ms(time_ps: int) -> float:
    """Convert integer picoseconds back to (float) milliseconds."""
    return time_ps / MS


def to_s(time_ps: int) -> float:
    """Convert integer picoseconds back to (float) seconds."""
    return time_ps / S


def cycles(n: float, freq_ghz: float) -> int:
    """Duration of ``n`` clock cycles at ``freq_ghz`` GHz, in picoseconds."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return int(round(n * 1_000 / freq_ghz))


def gbps(value: float) -> float:
    """Bandwidth in GB/s expressed as bytes-per-nanosecond (identity)."""
    if value <= 0:
        raise ValueError(f"bandwidth must be positive, got {value}")
    return float(value)


def transfer_ps(nbytes: int, bytes_per_ns: float) -> int:
    """Time to push ``nbytes`` through a ``bytes_per_ns`` medium, in ps.

    Rounds up so a transfer never takes zero time.
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    if bytes_per_ns <= 0:
        raise ValueError(f"bandwidth must be positive, got {bytes_per_ns}")
    if nbytes == 0:
        return 0
    return max(1, math.ceil(nbytes * NS / bytes_per_ns))


def bandwidth_gbps(nbytes: int, duration_ps: int) -> float:
    """Achieved bandwidth in GB/s for ``nbytes`` moved in ``duration_ps``."""
    if duration_ps <= 0:
        raise ValueError(f"duration must be positive, got {duration_ps}")
    return nbytes * NS / duration_ps / 1.0


def fmt(time_ps: int) -> str:
    """Human-readable rendering of a picosecond timestamp/duration."""
    if time_ps >= S:
        return f"{time_ps / S:.3f}s"
    if time_ps >= MS:
        return f"{time_ps / MS:.3f}ms"
    if time_ps >= US:
        return f"{time_ps / US:.3f}us"
    if time_ps >= NS:
        return f"{time_ps / NS:.3f}ns"
    return f"{time_ps}ps"
