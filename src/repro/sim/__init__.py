"""Discrete-event simulation kernel (engine, time units, resources, stats)."""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    LookaheadDomain,
    Process,
    SimEvent,
    Simulator,
    StallWatchdog,
    TimerQueue,
    active_watchdog,
    clear_watchdog,
    default_loop_legacy,
    install_watchdog,
    set_default_loop,
)
from repro.sim.resource import BandwidthResource, SlotResource
from repro.sim.stats import Histogram, StatRegistry
from repro.sim import time

__all__ = [
    "AllOf",
    "AnyOf",
    "LookaheadDomain",
    "Process",
    "SimEvent",
    "Simulator",
    "StallWatchdog",
    "TimerQueue",
    "active_watchdog",
    "clear_watchdog",
    "default_loop_legacy",
    "install_watchdog",
    "set_default_loop",
    "BandwidthResource",
    "SlotResource",
    "Histogram",
    "StatRegistry",
    "time",
]
