"""Discrete-event simulation kernel (engine, time units, resources, stats)."""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Process,
    SimEvent,
    Simulator,
    StallWatchdog,
    active_watchdog,
    clear_watchdog,
    install_watchdog,
)
from repro.sim.resource import BandwidthResource, SlotResource
from repro.sim.stats import Histogram, StatRegistry
from repro.sim import time

__all__ = [
    "AllOf",
    "AnyOf",
    "Process",
    "SimEvent",
    "Simulator",
    "StallWatchdog",
    "active_watchdog",
    "clear_watchdog",
    "install_watchdog",
    "BandwidthResource",
    "SlotResource",
    "Histogram",
    "StatRegistry",
    "time",
]
