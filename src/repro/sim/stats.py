"""Statistics collection for simulation runs.

A :class:`StatRegistry` is a flat namespace of named counters plus named
histograms.  Components take a registry (or create a scoped child via
:meth:`StatRegistry.scope`) and record events; experiment harnesses read
the totals afterwards.

Registries and histograms serialize to plain JSON dicts
(:meth:`StatRegistry.to_json_dict` / :meth:`StatRegistry.from_json_dict`)
so finished runs can be persisted by the results cache and compared
byte-for-byte across processes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple


class Histogram:
    """A streaming histogram tracking count/sum/min/max and log2 buckets."""

    #: bucket holding all non-positive samples.  floor(log2(x)) of the
    #: smallest positive float is -1074, so this can never collide with a
    #: genuine log2 bucket (values in (0, 1) land in buckets -1074..-1).
    NONPOS_BUCKET = -1075

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= 0:
            bucket = self.NONPOS_BUCKET
        else:
            bucket = int(math.floor(math.log2(value)))
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[int, int]]:
        """Sorted (log2-bucket, count) pairs."""
        return sorted(self._buckets.items())

    # -- serialization -------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (bucket keys as a sorted pair list)."""
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [[bucket, count] for bucket, count in self.buckets()],
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from :meth:`to_json_dict` output."""
        hist = cls(str(data["name"]))
        hist.count = int(data["count"])  # type: ignore[arg-type]
        hist.total = float(data["total"])  # type: ignore[arg-type]
        hist.min = None if data["min"] is None else float(data["min"])  # type: ignore[arg-type]
        hist.max = None if data["max"] is None else float(data["max"])  # type: ignore[arg-type]
        hist._buckets = {int(bucket): int(count) for bucket, count in data["buckets"]}  # type: ignore[union-attr]
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.name == other.name
            and self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
            and self._buckets == other._buckets
        )

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.2f}, "
            f"min={self.min}, max={self.max})"
        )


class StatRegistry:
    """Named counters and histograms with optional hierarchical prefixes."""

    def __init__(self, prefix: str = "") -> None:
        self._prefix = prefix
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _key(self, name: str) -> str:
        return f"{self._prefix}{name}" if self._prefix else name

    def scope(self, prefix: str) -> "StatRegistry":
        """A view that writes into this registry under ``prefix.``."""
        child = StatRegistry.__new__(StatRegistry)
        child._prefix = self._key(prefix) + "."
        child._counters = self._counters
        child._histograms = self._histograms
        return child

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        key = self._key(name)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set(self, name: str, value: float) -> None:
        """Set counter ``name`` to ``value`` (overwrites)."""
        self._counters[self._key(name)] = value

    def max(self, name: str, value: float) -> None:
        """Raise counter ``name`` to ``value`` if larger."""
        key = self._key(name)
        self._counters[key] = max(self._counters.get(key, value), value)

    def get(self, name: str, default: float = 0.0) -> float:
        """Read counter ``name`` (checked against this scope's prefix)."""
        return self._counters.get(self._key(name), default)

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram named ``name``."""
        key = self._key(name)
        hist = self._histograms.get(key)
        if hist is None:
            hist = Histogram(key)
            self._histograms[key] = hist
        return hist

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """Snapshot of all counters under ``prefix``.

        Matching is on whole dotted components: prefix ``"dl"`` selects the
        counter ``"dl"`` itself and everything under ``"dl."``, but not
        ``"dlx.foo"``.  A prefix already ending in ``"."`` (including the
        implicit one of a scoped registry) selects everything under it.
        """
        full = self._key(prefix)
        if not full:
            return dict(self._counters)
        if full.endswith("."):
            return {
                k: v for k, v in self._counters.items() if k.startswith(full)
            }
        dotted = full + "."
        return {
            k: v
            for k, v in self._counters.items()
            if k == full or k.startswith(dotted)
        }

    def sum(self, prefix: str) -> float:
        """Sum of every counter under ``prefix``.

        Sorted-key summation order, for the same round-trip stability
        reason as :meth:`sum_suffix`.
        """
        return sum(v for _, v in sorted(self.counters(prefix).items()))

    @staticmethod
    def _suffix_match(key: str, suffix: str, dotted: str) -> bool:
        """Whole-dotted-component suffix match: ``suffix`` itself or
        ``*.suffix`` — never a mid-component substring.  ``apsp.rounds``
        therefore matches suffix ``apsp.rounds`` but NOT suffix
        ``p.rounds`` (the aliasing footgun :meth:`counters` already
        guards against on the prefix side)."""
        return key == suffix or key.endswith(dotted)

    def sum_suffix(self, suffix: str) -> float:
        """Sum of every counter (any scope) whose name ends with ``suffix``.

        Used to aggregate per-component counters such as
        ``dimm3.core.busy_ps`` across the whole system.  Matching is on
        whole dotted components (``core.busy_ps`` or ``*.core.busy_ps``),
        so one namespace can never alias a substring of another (e.g.
        suffix ``sp.bytes`` must not absorb ``apsp.bytes``).  Summation
        runs in sorted-key order so the aggregate is insertion-order
        independent: a registry rebuilt from JSON (sorted keys) yields
        the exact same float as the live registry it was serialized from.
        """
        dotted = "." + suffix
        return sum(
            v
            for k, v in sorted(self._counters.items())
            if self._suffix_match(k, suffix, dotted)
        )

    def histograms_suffix(self, suffix: str) -> Dict[str, Histogram]:
        """Every histogram (any scope) named ``suffix``, sorted by key.

        Same whole-component matching as :meth:`sum_suffix`; used to
        aggregate per-core latency histograms (e.g. every
        ``dimm*.dlrm.batch_ps``) into system-wide percentiles.
        """
        dotted = "." + suffix
        return {
            k: self._histograms[k]
            for k in sorted(self._histograms)
            if self._suffix_match(k, suffix, dotted)
        }

    # -- serialization -------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of every counter and histogram.

        Scoped views share their parent's storage, so serializing any
        scope captures the whole registry; deserialization always yields
        a root (prefix-less) registry.
        """
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "histograms": {
                k: self._histograms[k].to_json_dict()
                for k in sorted(self._histograms)
            },
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "StatRegistry":
        """Rebuild a root registry from :meth:`to_json_dict` output."""
        registry = cls()
        registry._counters = {
            str(k): float(v) for k, v in data["counters"].items()  # type: ignore[union-attr]
        }
        registry._histograms = {
            str(k): Histogram.from_json_dict(v)  # type: ignore[arg-type]
            for k, v in data["histograms"].items()  # type: ignore[union-attr]
        }
        return registry

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatRegistry):
            return NotImplemented
        return (
            self._prefix == other._prefix
            and self._counters == other._counters
            and self._histograms == other._histograms
        )

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def __repr__(self) -> str:
        return f"StatRegistry({len(self._counters)} counters)"
