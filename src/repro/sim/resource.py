"""Shared-medium resource models.

Every physical medium in the modelled system — a memory-channel bus, AIM's
dedicated bus, each DIMM-Link SerDes link — is a :class:`BandwidthResource`:
transfers are serialised in arrival order, each occupying the medium for
``size / bandwidth``, and the resource records its total busy time so
occupancy statistics (Fig. 15 of the paper) fall out for free.

:class:`SlotResource` models a bounded pool of concurrency slots (e.g. an
NMP core's outstanding-request window) with FIFO wakeup.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import SimEvent, Simulator
from repro.sim.time import transfer_ps


class BandwidthResource:
    """A serialising medium with finite bandwidth and a fixed latency.

    ``transfer(nbytes)`` reserves the medium for the transfer's duration
    starting no earlier than now and no earlier than the end of the previous
    transfer, then fires its completion event after an additional
    propagation ``latency``.  Busy time (bandwidth occupancy, excluding
    latency) is accumulated in :attr:`busy_ps`.
    """

    def __init__(
        self,
        sim: Simulator,
        bytes_per_ns: float,
        latency_ps: int = 0,
        name: str = "medium",
    ) -> None:
        if bytes_per_ns <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive")
        if latency_ps < 0:
            raise SimulationError(f"{name}: latency must be non-negative")
        self.sim = sim
        self.name = name
        self.bytes_per_ns = bytes_per_ns
        self.latency_ps = latency_ps
        self.busy_ps = 0
        self.bytes_moved = 0
        self.transfers = 0
        self._free_at = 0
        self._background = 0.0
        # fixed event labels: the transfer/occupy fast paths must not
        # rebuild them per call
        self._n_transfer = f"{name}.transfer"
        self._n_occupy = f"{name}.occupy"
        # serialisation makes grant times monotone, so completions ride a
        # countdown queue the epoch loop bulk-expires; the propagation
        # latency is this medium's conservative lookahead contribution
        self._timers = sim.timer_queue(name)
        self._lookahead = sim.register_lookahead(name, latency_ps + 1)

    def set_background_load(self, fraction: float) -> None:
        """Reserve a constant fraction of the medium for background traffic.

        Used for periodic host polling (Sec. IV-A): polls occupy the bus
        whether or not requests exist, so foreground transfers see reduced
        effective bandwidth and :meth:`occupancy` includes the fraction.
        """
        if not 0.0 <= fraction < 1.0:
            raise SimulationError(
                f"{self.name}: background load {fraction} outside [0, 1)"
            )
        # restore nominal bandwidth before applying the new fraction
        nominal = self.bytes_per_ns / (1.0 - self._background)
        self._background = fraction
        self.bytes_per_ns = nominal * (1.0 - fraction)

    @property
    def background_load(self) -> float:
        """The configured constant background fraction."""
        return self._background

    def occupancy(self, horizon_ps: Optional[int] = None) -> float:
        """Fraction of time the medium was busy over ``horizon_ps`` (or now).

        Includes any configured background load.
        """
        horizon = horizon_ps if horizon_ps is not None else self.sim.now
        if horizon <= 0:
            return min(1.0, self._background)
        return min(1.0, self._background + self.busy_ps / horizon)

    def queue_delay(self) -> int:
        """How long a transfer arriving now would wait before starting."""
        return max(0, self._free_at - self.sim.now)

    def transfer(self, nbytes: int, extra_ps: int = 0) -> SimEvent:
        """Reserve the medium for ``nbytes``; returns the completion event.

        ``extra_ps`` adds per-transfer fixed overhead (e.g. protocol
        processing) that occupies the medium along with the payload.
        """
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size {nbytes}")
        start = max(self.sim.now, self._free_at)
        duration = transfer_ps(nbytes, self.bytes_per_ns) + extra_ps
        end = start + duration
        self._free_at = end
        self.busy_ps += duration
        self.bytes_moved += nbytes
        self.transfers += 1
        event = self.sim.event(name=self._n_transfer)
        self.sim.at_monotone(self._timers, end + self.latency_ps, event.succeed, nbytes)
        return event

    def occupy(self, duration_ps: int) -> SimEvent:
        """Reserve the medium for a fixed duration (no payload bytes)."""
        if duration_ps < 0:
            raise SimulationError(f"{self.name}: negative occupy {duration_ps}")
        start = max(self.sim.now, self._free_at)
        end = start + duration_ps
        self._free_at = end
        self.busy_ps += duration_ps
        self.transfers += 1
        event = self.sim.event(name=self._n_occupy)
        # occupy grants fire without the propagation latency, so they can
        # land earlier than an in-flight transfer completion; at_monotone
        # detects that and routes the stragglers to the heap
        self.sim.at_monotone(self._timers, end, event.succeed, None)
        return event


class SlotResource:
    """A counted pool of slots with FIFO blocking acquire.

    Used for bounded concurrency such as an NMP core's MSHR-like
    outstanding-request window or a router's input-buffer credits.
    """

    def __init__(self, sim: Simulator, slots: int, name: str = "slots") -> None:
        if slots <= 0:
            raise SimulationError(f"{name}: slot count must be positive")
        self.sim = sim
        self.name = name
        self.capacity = slots
        self._available = slots
        self._waiters: Deque[SimEvent] = deque()
        self.peak_in_use = 0
        self._n_acquire = f"{name}.acquire"

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self.capacity - self._available

    def acquire(self) -> SimEvent:
        """Returns an event that fires once a slot has been granted."""
        event = self.sim.event(name=self._n_acquire)
        if self._available > 0:
            self._available -= 1
            self.peak_in_use = max(self.peak_in_use, self.in_use)
            event.succeed(None)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot; wakes the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            if self._available >= self.capacity:
                raise SimulationError(f"{self.name}: release without acquire")
            self._available += 1
