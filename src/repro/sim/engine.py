"""Discrete-event simulation engine.

A deliberately small SimPy-style kernel: a binary-heap event queue over
integer picosecond timestamps, plus generator-based *processes*.  A process
is a Python generator that yields one of:

* an ``int`` — sleep for that many picoseconds,
* a :class:`SimEvent` — suspend until the event succeeds; the event's value
  is sent back into the generator,
* a :class:`Process` — suspend until that process finishes,
* :class:`AllOf` — suspend until every listed event/process has finished,
* :class:`AnyOf` — suspend until the first listed event/process fires.

Events can also *fail* (:meth:`SimEvent.fail`): the exception is thrown
into every waiting process at its ``yield``, so ordinary ``try/except``
implements failover across processes.  A process whose generator raises
fails its ``done`` event when someone is waiting on it, and propagates the
exception out of :meth:`Simulator.run` otherwise (failures are never
silent).  :meth:`Process.interrupt` cancels a pending wait by throwing an
exception into the process at the current time.

The kernel is single-threaded and deterministic: events scheduled at the
same timestamp fire in scheduling order.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import DeadlockError, SimStallError, SimulationError
from repro.trace.recorder import NULL_RECORDER

ProcessGen = Generator[Any, Any, Any]

#: sentinel bound for the run loop: an int compares smaller than +inf, so
#: "no limit" needs no per-event None check.
_NO_BOUND = float("inf")


class StallWatchdog:
    """No-progress detector consulted by :meth:`Simulator.run`.

    Two independent checks, both optional:

    * **Wall-clock budget** — ``wall_clock_limit_s`` starts a monotonic
      deadline *at construction time*, so one watchdog bounds a whole
      spec execution even when it spans several ``run()`` calls.  The
      loop samples the clock every ``check_interval_events`` events and
      raises :class:`~repro.errors.SimStallError` with a diagnostic
      snapshot (simulated time, event count, queue depth, blocked
      processes) once the budget is spent.
    * **Deadlock on drain** — with ``detect_deadlock`` set, a queue that
      empties while processes are still suspended raises a structured
      :class:`~repro.errors.DeadlockError` naming every waiting process
      and what it waits on.  Off by default: simulations may legitimately
      finish with service loops parked on events that never fire.

    Install process-wide with :func:`install_watchdog` (how the sweep
    harness arms per-spec budgets without threading a handle through
    every layer) or pass one directly to ``Simulator.run``.
    """

    __slots__ = (
        "wall_clock_limit_s",
        "detect_deadlock",
        "check_interval_events",
        "deadline",
    )

    def __init__(
        self,
        wall_clock_limit_s: Optional[float] = None,
        detect_deadlock: bool = False,
        check_interval_events: int = 4096,
    ) -> None:
        if wall_clock_limit_s is not None and wall_clock_limit_s <= 0:
            raise SimulationError(
                f"wall_clock_limit_s must be positive, got {wall_clock_limit_s}"
            )
        self.wall_clock_limit_s = wall_clock_limit_s
        self.detect_deadlock = detect_deadlock
        self.check_interval_events = max(1, check_interval_events)
        self.deadline = (
            time.monotonic() + wall_clock_limit_s
            if wall_clock_limit_s is not None
            else None
        )

    def check(self, sim: "Simulator", processed: int) -> None:
        """Raise :class:`SimStallError` if the wall-clock budget is spent."""
        if self.deadline is None or time.monotonic() <= self.deadline:
            return
        snapshot = sim.snapshot(events_processed=processed)
        raise SimStallError(
            f"simulation exceeded its {self.wall_clock_limit_s}s wall-clock "
            f"budget at t={sim.now}ps ({processed} events this run, "
            f"{snapshot['queue_depth']} queued, "
            f"{snapshot['live_processes']} live processes)",
            snapshot=snapshot,
        )


#: process-wide watchdog consulted by every ``Simulator.run`` when the
#: caller passes none explicitly (armed per spec by the sweep harness).
_ACTIVE_WATCHDOG: Optional[StallWatchdog] = None


def install_watchdog(watchdog: StallWatchdog) -> StallWatchdog:
    """Arm ``watchdog`` as the process-wide default; returns it."""
    global _ACTIVE_WATCHDOG
    _ACTIVE_WATCHDOG = watchdog
    return watchdog


def clear_watchdog() -> None:
    """Disarm the process-wide watchdog."""
    global _ACTIVE_WATCHDOG
    _ACTIVE_WATCHDOG = None


def active_watchdog() -> Optional[StallWatchdog]:
    """The currently armed process-wide watchdog, if any."""
    return _ACTIVE_WATCHDOG


def _describe_wait(target: Any) -> str:
    """Human-readable description of what a process is suspended on."""
    if isinstance(target, int):
        return f"delay {target}ps"
    if isinstance(target, Process):
        return f"process {target.name!r}"
    if isinstance(target, SimEvent):
        return f"event {target.name!r}"
    if isinstance(target, AllOf):
        return f"AllOf({len(target.children)} children)"
    if isinstance(target, AnyOf):
        return f"AnyOf({len(target.children)} children)"
    return "nothing (not yet waiting)" if target is None else repr(target)


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts untriggered; calling :meth:`succeed` fires it exactly
    once with an optional value, resuming every waiter.  Calling
    :meth:`fail` instead fires it with an exception, which is thrown into
    every waiting process.
    """

    __slots__ = ("sim", "name", "_value", "_triggered", "_failed", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._failed = False
        self._callbacks: List[Callable[["SimEvent"], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._triggered

    @property
    def failed(self) -> bool:
        """Whether the event fired with an exception instead of a value."""
        return self._failed

    @property
    def value(self) -> Any:
        """The value the event fired with (None before triggering).

        For failed events this is the exception instance.
        """
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event, resuming all waiters at the current time."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Fire the event with an exception, throwing it into every waiter.

        A failure with no registered waiter raises ``exc`` immediately at
        the fail site — failures must be handled, never dropped.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(
                f"event {self.name!r} failed with non-exception {exc!r}"
            )
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._failed = True
        self._value = exc
        callbacks, self._callbacks = self._callbacks, []
        if not callbacks:
            raise exc
        for callback in callbacks:
            callback(self)
        return self

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` when the event fires (now if already fired)."""
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)


class AllOf:
    """Condition satisfied when all child events/processes have fired.

    A failing child throws its exception into the waiting process (first
    failure wins; later results are discarded).
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]) -> None:
        self.children = list(children)


class AnyOf:
    """Condition satisfied when the *first* child event/process fires.

    The waiting process resumes with the first child's value (or has its
    exception thrown, if that child failed); later firings are ignored.
    Used for timeout patterns: ``yield AnyOf([ack, sim.timeout(t)])``.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]) -> None:
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf needs at least one child")


class Process:
    """A running simulation process wrapping a generator.

    The generator's return value becomes :attr:`value`, and :attr:`done`
    is a :class:`SimEvent` fired on completion.  If the generator raises,
    ``done`` fails (throwing into any waiter); with no waiter the
    exception propagates out of :meth:`Simulator.run`.

    Every suspension records a wait *epoch*; resume callbacks carry the
    epoch they were registered under and are ignored once stale.  That is
    what lets :meth:`interrupt` (and :class:`AnyOf` losers) cancel a
    pending wait without the resumed process being woken twice.
    """

    __slots__ = ("sim", "name", "done", "_gen", "_finished", "_epoch", "_blocked_on")

    # Resume paths are allocation-slim on purpose: a timer wait schedules a
    # bound method with the epoch as its argument (no closure), and an event
    # wait registers one closure that defers through the heap via
    # :meth:`_event_resume` (one tuple) — the deferral is what preserves
    # same-timestamp FIFO ordering, so it must stay.

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self.done = SimEvent(sim, name=f"{self.name}.done")
        self._gen = gen
        self._finished = False
        self._epoch = 0
        self._blocked_on: Any = None
        sim._live.add(self)
        sim._schedule_now(self._step, None)

    @property
    def finished(self) -> bool:
        """Whether the underlying generator has returned."""
        return self._finished

    @property
    def value(self) -> Any:
        """The generator's return value (None until finished)."""
        return self.done.value

    def waiting_on(self) -> str:
        """What the process is currently suspended on (diagnostics)."""
        if self._finished:
            return "finished"
        return _describe_wait(self._blocked_on)

    def interrupt(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at the current time.

        Cancels whatever the process is waiting on (timeout/cancellation
        support); a finished process ignores the interrupt.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(
                f"process {self.name!r} interrupted with non-exception {exc!r}"
            )
        self.sim._schedule_now(
            lambda _arg: None if self._finished else self._advance(True, exc), None
        )

    def _step(self, send_value: Any) -> None:
        self._advance(False, send_value)

    def _resume(self, epoch: int, throw: bool, value: Any) -> None:
        """Resume from a wait registered at ``epoch`` (ignored if stale)."""
        if self._finished or epoch != self._epoch:
            return
        self._advance(throw, value)

    def _timer_resume(self, epoch: int) -> None:
        """Heap callback for plain-delay waits (arg is the wait epoch)."""
        if self._finished or epoch != self._epoch:
            return
        self._advance(False, None)

    def _event_resume(self, pair: Tuple[int, "SimEvent"]) -> None:
        """Heap callback for event waits (arg is ``(epoch, event)``)."""
        epoch, event = pair
        if self._finished or epoch != self._epoch:
            return
        self._advance(event._failed, event._value)

    def _advance(self, throw: bool, value: Any) -> None:
        self._epoch += 1
        try:
            if throw:
                target = self._gen.throw(value)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finished = True
            self.sim._live.discard(self)
            self.done.succeed(stop.value)
            return
        except BaseException as exc:
            self._finished = True
            self.sim._live.discard(self)
            # deliver to a waiter if someone is listening, else surface
            # loudly out of the event loop
            if self.done._callbacks:
                self.done.fail(exc)
                return
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        epoch = self._epoch
        self._blocked_on = target
        if isinstance(target, int):
            if target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {target}"
                )
            self.sim.schedule(target, self._timer_resume, epoch)
        elif isinstance(target, (SimEvent, Process)):
            event = target.done if isinstance(target, Process) else target
            event.add_callback(
                lambda ev, _e=epoch: self.sim._schedule_now(
                    self._event_resume, (_e, ev)
                )
            )
        elif isinstance(target, AllOf):
            self._wait_all(target.children, epoch)
        elif isinstance(target, AnyOf):
            self._wait_any(target.children, epoch)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )

    def _wait_all(self, children: List[Any], epoch: int) -> None:
        pending = len(children)
        if pending == 0:
            self.sim._schedule_now(lambda _arg: self._resume(epoch, False, []), None)
            return
        results: List[Any] = [None] * pending
        remaining = [pending]

        def on_done(index: int, ev: SimEvent) -> None:
            if ev.failed:
                # first failure wins; stale-epoch guard drops the rest
                self.sim._schedule_now(
                    lambda _arg: self._resume(epoch, True, ev.value), None
                )
                return
            results[index] = ev.value
            remaining[0] -= 1
            if remaining[0] == 0:
                self.sim._schedule_now(
                    lambda _arg: self._resume(epoch, False, results), None
                )

        for index, child in enumerate(children):
            event = child.done if isinstance(child, Process) else child
            if not isinstance(event, SimEvent):
                raise SimulationError(f"AllOf child {child!r} is not waitable")
            event.add_callback(lambda ev, i=index: on_done(i, ev))

    def _wait_any(self, children: List[Any], epoch: int) -> None:
        delivered = [False]

        def on_fire(ev: SimEvent) -> None:
            if delivered[0]:
                return
            delivered[0] = True
            self.sim._schedule_now(
                lambda _arg: self._resume(epoch, ev.failed, ev.value), None
            )

        for child in children:
            event = child.done if isinstance(child, Process) else child
            if not isinstance(event, SimEvent):
                raise SimulationError(f"AnyOf child {child!r} is not waitable")
            event.add_callback(on_fire)


class Simulator:
    """The event loop: a heap of ``(time, seq, callback, arg)`` entries."""

    __slots__ = ("_now", "_seq", "_queue", "_live", "trace")

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[Any], None], Any]] = []
        #: unfinished processes (diagnostics: who is blocked, and on what).
        self._live: set = set()
        #: observability hook; the shared no-op recorder unless a
        #: :class:`~repro.trace.recorder.TraceRecorder` is installed.
        self.trace = NULL_RECORDER

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    def blocked_processes(self) -> List[Tuple[str, str]]:
        """``(name, waiting_on)`` for every unfinished process, sorted.

        Deterministic (name-sorted) so stall/deadlock diagnoses are
        stable across runs of the same simulation.
        """
        return sorted(
            (process.name, process.waiting_on()) for process in self._live
        )

    def snapshot(self, events_processed: int = 0) -> Dict[str, Any]:
        """Diagnostic state dump used by stall/deadlock reports."""
        blocked = self.blocked_processes()
        return {
            "time_ps": self._now,
            "events_processed": events_processed,
            "queue_depth": len(self._queue),
            "live_processes": len(blocked),
            "blocked": blocked[:16],
        }

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh untriggered event bound to this simulator."""
        return SimEvent(self, name=name)

    def schedule(self, delay: int, callback: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``callback(arg)`` after ``delay`` picoseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback, arg))

    def at(self, time: int, callback: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``callback(arg)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (delay={time - self._now})"
            )
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, callback, arg))

    def _schedule_now(self, callback: Callable[[Any], None], arg: Any) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now, self._seq, callback, arg))

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        return Process(self, gen, name=name)

    def timeout(self, delay: int, value: Any = None) -> SimEvent:
        """An event that fires ``delay`` picoseconds from now."""
        event = SimEvent(self, name="timeout")
        self.schedule(delay, event.succeed, value)
        return event

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        watchdog: Optional[StallWatchdog] = None,
    ) -> int:
        """Drain the event queue; return the final simulation time.

        ``until`` bounds simulated time; ``max_events`` guards against
        runaway simulations (raises :class:`SimulationError` when hit).
        Whether the queue empties before the horizon or not, the clock
        lands on ``until`` (never moving backwards), so time-based rate
        denominators are consistent across both cases.

        ``watchdog`` (default: the process-wide one armed via
        :func:`install_watchdog`, if any) adds no-progress detection: a
        wall-clock budget enforced every ``check_interval_events``
        events (:class:`~repro.errors.SimStallError` with a diagnostic
        snapshot), and — when ``detect_deadlock`` is set — a structured
        :class:`~repro.errors.DeadlockError` naming the waiting
        processes if the queue drains while some are still suspended.
        """
        processed = 0
        trace = self.trace
        tracing = trace.enabled
        if watchdog is None:
            watchdog = _ACTIVE_WATCHDOG
        check_every = (
            watchdog.check_interval_events
            if watchdog is not None and watchdog.deadline is not None
            else 0
        )
        # hot loop: everything loop-invariant is hoisted into locals, the
        # horizon/budget guards become plain comparisons against +inf
        # sentinels, and watchdog polling is amortized onto a next-check
        # threshold instead of a modulo per event.  Semantics (event order,
        # clock movement, error behaviour) are identical to the plain loop.
        queue = self._queue
        pop = heapq.heappop
        horizon = until if until is not None else _NO_BOUND
        budget = max_events if max_events is not None else _NO_BOUND
        next_check = check_every if check_every else _NO_BOUND
        while queue:
            entry = queue[0]
            time = entry[0]
            if time > horizon:
                break
            pop(queue)
            if tracing and time != self._now:
                self._now = time
                trace.on_time_advance(time)
            else:
                self._now = time
            entry[2](entry[3])
            processed += 1
            if processed >= budget:
                raise SimulationError(f"exceeded max_events={max_events}")
            if processed >= next_check:
                watchdog.check(self, processed)
                next_check += check_every
        if watchdog is not None and watchdog.detect_deadlock and not self._queue:
            blocked = self.blocked_processes()
            if blocked:
                detail = "; ".join(f"{name} <- {wait}" for name, wait in blocked[:8])
                raise DeadlockError(
                    f"event queue drained at t={self._now}ps with "
                    f"{len(blocked)} blocked process(es): {detail}",
                    blocked=blocked,
                    time_ps=self._now,
                )
        if until is not None and until > self._now:
            self._now = until
            if tracing:
                trace.on_time_advance(until)
        return self._now

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Convenience: start a process, run to completion, return its value."""
        proc = self.process(gen, name=name)
        self.run()
        if not proc.finished:
            blocked = self.blocked_processes()
            detail = "; ".join(f"{name} <- {wait}" for name, wait in blocked[:8])
            raise DeadlockError(
                f"process {proc.name!r} deadlocked at t={self._now}ps"
                + (f" (blocked: {detail})" if detail else ""),
                blocked=blocked,
                time_ps=self._now,
            )
        return proc.value
