"""Discrete-event simulation engine.

A deliberately small SimPy-style kernel: a binary-heap event queue over
integer picosecond timestamps, plus generator-based *processes*.  A process
is a Python generator that yields one of:

* an ``int`` — sleep for that many picoseconds,
* a :class:`SimEvent` — suspend until the event succeeds; the event's value
  is sent back into the generator,
* a :class:`Process` — suspend until that process finishes,
* :class:`AllOf` — suspend until every listed event/process has finished,
* :class:`AnyOf` — suspend until the first listed event/process fires.

Events can also *fail* (:meth:`SimEvent.fail`): the exception is thrown
into every waiting process at its ``yield``, so ordinary ``try/except``
implements failover across processes.  A process whose generator raises
fails its ``done`` event when someone is waiting on it, and propagates the
exception out of :meth:`Simulator.run` otherwise (failures are never
silent).  :meth:`Process.interrupt` cancels a pending wait by throwing an
exception into the process at the current time.

The kernel is single-threaded and deterministic: events scheduled at the
same timestamp fire in scheduling order.

Two run loops drain the queue (``Simulator.run``):

* the **legacy loop** (``legacy=True``): one binary-heap pop per event —
  the reference implementation, kept verbatim for differential testing;
* the **epoch fast-forward loop** (the default): a conservative-PDES
  style batcher.  Components with guaranteed minimum outbound latency
  (link SerDes, DRAM timing floors) register :class:`LookaheadDomain`
  lookaheads and park their monotone timers in per-component
  :class:`TimerQueue` countdown queues (O(1) append, no heap).  Each
  epoch the engine computes a safe horizon ``t0 + min(lookahead)``,
  bulk-expires every due timer with one sort, and merges the few
  intra-epoch arrivals through a small pending heap.  Execution order is
  the exact global ``(time, seq)`` order of the legacy loop — the two
  loops are bit-identical by construction, and the horizon only tunes
  batch size, never correctness (see ``tests/test_epoch_fastforward.py``
  and DESIGN.md §14).
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_right
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import DeadlockError, SimStallError, SimulationError
from repro.sim.time import DEFAULT_EPOCH_SPAN_PS, EPOCH_FLOOR_PS
from repro.trace.recorder import NULL_RECORDER

ProcessGen = Generator[Any, Any, Any]

#: sentinel bound for the run loop: an int compares smaller than +inf, so
#: "no limit" needs no per-event None check.
_NO_BOUND = float("inf")

#: process-wide default run loop (False = epoch fast-forward).  Flipped by
#: :func:`set_default_loop` so whole experiment runs — which construct
#: their simulators internally — can be replayed under the legacy loop for
#: differential verification.
_DEFAULT_LEGACY = False


def set_default_loop(legacy: bool) -> bool:
    """Select the loop new :class:`Simulator` instances use; returns the
    previous setting (restore it in a ``finally``)."""
    global _DEFAULT_LEGACY
    previous = _DEFAULT_LEGACY
    _DEFAULT_LEGACY = bool(legacy)
    return previous


def default_loop_legacy() -> bool:
    """Whether new simulators currently default to the legacy loop."""
    return _DEFAULT_LEGACY


class StallWatchdog:
    """No-progress detector consulted by :meth:`Simulator.run`.

    Two independent checks, both optional:

    * **Wall-clock budget** — ``wall_clock_limit_s`` starts a monotonic
      deadline *at construction time*, so one watchdog bounds a whole
      spec execution even when it spans several ``run()`` calls.  The
      loop samples the clock every ``check_interval_events`` events and
      raises :class:`~repro.errors.SimStallError` with a diagnostic
      snapshot (simulated time, event count, queue depth, blocked
      processes) once the budget is spent.
    * **Deadlock on drain** — with ``detect_deadlock`` set, a queue that
      empties while processes are still suspended raises a structured
      :class:`~repro.errors.DeadlockError` naming every waiting process
      and what it waits on.  Off by default: simulations may legitimately
      finish with service loops parked on events that never fire.

    Install process-wide with :func:`install_watchdog` (how the sweep
    harness arms per-spec budgets without threading a handle through
    every layer) or pass one directly to ``Simulator.run``.
    """

    __slots__ = (
        "wall_clock_limit_s",
        "detect_deadlock",
        "check_interval_events",
        "deadline",
    )

    def __init__(
        self,
        wall_clock_limit_s: Optional[float] = None,
        detect_deadlock: bool = False,
        check_interval_events: int = 4096,
    ) -> None:
        if wall_clock_limit_s is not None and wall_clock_limit_s <= 0:
            raise SimulationError(
                f"wall_clock_limit_s must be positive, got {wall_clock_limit_s}"
            )
        self.wall_clock_limit_s = wall_clock_limit_s
        self.detect_deadlock = detect_deadlock
        self.check_interval_events = max(1, check_interval_events)
        self.deadline = (
            time.monotonic() + wall_clock_limit_s
            if wall_clock_limit_s is not None
            else None
        )

    def check(self, sim: "Simulator", processed: int) -> None:
        """Raise :class:`SimStallError` if the wall-clock budget is spent."""
        if self.deadline is None or time.monotonic() <= self.deadline:
            return
        snapshot = sim.snapshot(events_processed=processed)
        raise SimStallError(
            f"simulation exceeded its {self.wall_clock_limit_s}s wall-clock "
            f"budget at t={sim.now}ps ({processed} events this run, "
            f"{snapshot['queue_depth']} queued, "
            f"{snapshot['live_processes']} live processes)",
            snapshot=snapshot,
        )


#: process-wide watchdog consulted by every ``Simulator.run`` when the
#: caller passes none explicitly (armed per spec by the sweep harness).
_ACTIVE_WATCHDOG: Optional[StallWatchdog] = None


def install_watchdog(watchdog: StallWatchdog) -> StallWatchdog:
    """Arm ``watchdog`` as the process-wide default; returns it."""
    global _ACTIVE_WATCHDOG
    _ACTIVE_WATCHDOG = watchdog
    return watchdog


def clear_watchdog() -> None:
    """Disarm the process-wide watchdog."""
    global _ACTIVE_WATCHDOG
    _ACTIVE_WATCHDOG = None


def active_watchdog() -> Optional[StallWatchdog]:
    """The currently armed process-wide watchdog, if any."""
    return _ACTIVE_WATCHDOG


def _describe_wait(target: Any) -> str:
    """Human-readable description of what a process is suspended on."""
    if isinstance(target, int):
        return f"delay {target}ps"
    if isinstance(target, Process):
        return f"process {target.name!r}"
    if isinstance(target, SimEvent):
        return f"event {target.name!r}"
    if isinstance(target, AllOf):
        return f"AllOf({len(target.children)} children)"
    if isinstance(target, AnyOf):
        return f"AnyOf({len(target.children)} children)"
    return "nothing (not yet waiting)" if target is None else repr(target)


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts untriggered; calling :meth:`succeed` fires it exactly
    once with an optional value, resuming every waiter.  Calling
    :meth:`fail` instead fires it with an exception, which is thrown into
    every waiting process.
    """

    __slots__ = ("sim", "name", "_value", "_triggered", "_failed", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._failed = False
        self._callbacks: List[Callable[["SimEvent"], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._triggered

    @property
    def failed(self) -> bool:
        """Whether the event fired with an exception instead of a value."""
        return self._failed

    @property
    def value(self) -> Any:
        """The value the event fired with (None before triggering).

        For failed events this is the exception instance.
        """
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event, resuming all waiters at the current time."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Fire the event with an exception, throwing it into every waiter.

        A failure with no registered waiter raises ``exc`` immediately at
        the fail site — failures must be handled, never dropped.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(
                f"event {self.name!r} failed with non-exception {exc!r}"
            )
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._failed = True
        self._value = exc
        callbacks, self._callbacks = self._callbacks, []
        if not callbacks:
            raise exc
        for callback in callbacks:
            callback(self)
        return self

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` when the event fires (now if already fired)."""
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)


class AllOf:
    """Condition satisfied when all child events/processes have fired.

    A failing child throws its exception into the waiting process (first
    failure wins; later results are discarded).
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]) -> None:
        self.children = list(children)


class AnyOf:
    """Condition satisfied when the *first* child event/process fires.

    The waiting process resumes with the first child's value (or has its
    exception thrown, if that child failed); later firings are ignored.
    Used for timeout patterns: ``yield AnyOf([ack, sim.timeout(t)])``.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]) -> None:
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf needs at least one child")


class Process:
    """A running simulation process wrapping a generator.

    The generator's return value becomes :attr:`value`, and :attr:`done`
    is a :class:`SimEvent` fired on completion.  If the generator raises,
    ``done`` fails (throwing into any waiter); with no waiter the
    exception propagates out of :meth:`Simulator.run`.

    Every suspension records a wait *epoch*; resume callbacks carry the
    epoch they were registered under and are ignored once stale.  That is
    what lets :meth:`interrupt` (and :class:`AnyOf` losers) cancel a
    pending wait without the resumed process being woken twice.
    """

    __slots__ = ("sim", "name", "done", "_gen", "_finished", "_epoch", "_blocked_on")

    # Resume paths are allocation-slim on purpose: a timer wait schedules a
    # bound method with the epoch as its argument (no closure), and an event
    # wait registers one closure that defers through the heap via
    # :meth:`_event_resume` (one tuple) — the deferral is what preserves
    # same-timestamp FIFO ordering, so it must stay.

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self.done = SimEvent(sim, name=f"{self.name}.done")
        self._gen = gen
        self._finished = False
        self._epoch = 0
        self._blocked_on: Any = None
        sim._live.add(self)
        sim._schedule_now(self._step, None)

    @property
    def finished(self) -> bool:
        """Whether the underlying generator has returned."""
        return self._finished

    @property
    def value(self) -> Any:
        """The generator's return value (None until finished)."""
        return self.done.value

    def waiting_on(self) -> str:
        """What the process is currently suspended on (diagnostics)."""
        if self._finished:
            return "finished"
        return _describe_wait(self._blocked_on)

    def interrupt(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at the current time.

        Cancels whatever the process is waiting on (timeout/cancellation
        support); a finished process ignores the interrupt.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(
                f"process {self.name!r} interrupted with non-exception {exc!r}"
            )
        self.sim._schedule_now(
            lambda _arg: None if self._finished else self._advance(True, exc), None
        )

    def _step(self, send_value: Any) -> None:
        self._advance(False, send_value)

    def _resume(self, epoch: int, throw: bool, value: Any) -> None:
        """Resume from a wait registered at ``epoch`` (ignored if stale)."""
        if self._finished or epoch != self._epoch:
            return
        self._advance(throw, value)

    def _timer_resume(self, epoch: int) -> None:
        """Heap callback for plain-delay waits (arg is the wait epoch)."""
        if self._finished or epoch != self._epoch:
            return
        self._advance(False, None)

    def _event_resume(self, pair: Tuple[int, "SimEvent"]) -> None:
        """Heap callback for event waits (arg is ``(epoch, event)``)."""
        epoch, event = pair
        if self._finished or epoch != self._epoch:
            return
        self._advance(event._failed, event._value)

    def _advance(self, throw: bool, value: Any) -> None:
        self._epoch += 1
        try:
            if throw:
                target = self._gen.throw(value)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finished = True
            self.sim._live.discard(self)
            self.done.succeed(stop.value)
            return
        except BaseException as exc:
            self._finished = True
            self.sim._live.discard(self)
            # deliver to a waiter if someone is listening, else surface
            # loudly out of the event loop
            if self.done._callbacks:
                self.done.fail(exc)
                return
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        epoch = self._epoch
        self._blocked_on = target
        if isinstance(target, int):
            if target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {target}"
                )
            self.sim.schedule(target, self._timer_resume, epoch)
        elif isinstance(target, (SimEvent, Process)):
            event = target.done if isinstance(target, Process) else target
            event.add_callback(
                lambda ev, _e=epoch: self.sim._schedule_now(
                    self._event_resume, (_e, ev)
                )
            )
        elif isinstance(target, AllOf):
            self._wait_all(target.children, epoch)
        elif isinstance(target, AnyOf):
            self._wait_any(target.children, epoch)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )

    def _wait_all(self, children: List[Any], epoch: int) -> None:
        pending = len(children)
        if pending == 0:
            self.sim._schedule_now(lambda _arg: self._resume(epoch, False, []), None)
            return
        results: List[Any] = [None] * pending
        remaining = [pending]

        def on_done(index: int, ev: SimEvent) -> None:
            if ev.failed:
                # first failure wins; stale-epoch guard drops the rest
                self.sim._schedule_now(
                    lambda _arg: self._resume(epoch, True, ev.value), None
                )
                return
            results[index] = ev.value
            remaining[0] -= 1
            if remaining[0] == 0:
                self.sim._schedule_now(
                    lambda _arg: self._resume(epoch, False, results), None
                )

        for index, child in enumerate(children):
            event = child.done if isinstance(child, Process) else child
            if not isinstance(event, SimEvent):
                raise SimulationError(f"AllOf child {child!r} is not waitable")
            event.add_callback(lambda ev, i=index: on_done(i, ev))

    def _wait_any(self, children: List[Any], epoch: int) -> None:
        delivered = [False]

        def on_fire(ev: SimEvent) -> None:
            if delivered[0]:
                return
            delivered[0] = True
            self.sim._schedule_now(
                lambda _arg: self._resume(epoch, ev.failed, ev.value), None
            )

        for child in children:
            event = child.done if isinstance(child, Process) else child
            if not isinstance(event, SimEvent):
                raise SimulationError(f"AnyOf child {child!r} is not waitable")
            event.add_callback(on_fire)


class LookaheadDomain:
    """A named source of conservative lookahead.

    A component registers the minimum delay between any event it executes
    and the earliest event it can schedule in response — a link's
    propagation latency, a DRAM access-time floor, a refresh interval.
    The epoch loop advances in batches of ``min`` over all registered
    lookaheads (floored at :data:`~repro.sim.time.EPOCH_FLOOR_PS`).

    The bound is a *performance hint*, not a safety requirement: arrivals
    that land inside the active epoch anyway are merged through the
    pending heap in exact ``(time, seq)`` order, so an optimistic (too
    large) lookahead can never reorder events — it only shifts work from
    the batched fast path to the per-event heap path.
    """

    __slots__ = ("sim", "name", "_lookahead_ps")

    def __init__(self, sim: "Simulator", name: str, lookahead_ps: int) -> None:
        if lookahead_ps <= 0:
            raise SimulationError(
                f"lookahead domain {name!r}: lookahead must be positive, "
                f"got {lookahead_ps}"
            )
        self.sim = sim
        self.name = name
        self._lookahead_ps = lookahead_ps

    @property
    def lookahead_ps(self) -> int:
        """The domain's current minimum outbound latency."""
        return self._lookahead_ps

    def update(self, lookahead_ps: int) -> None:
        """Change the lookahead (e.g. after reconfiguration)."""
        if lookahead_ps <= 0:
            raise SimulationError(
                f"lookahead domain {self.name!r}: lookahead must be positive, "
                f"got {lookahead_ps}"
            )
        self._lookahead_ps = lookahead_ps
        self.sim._min_lookahead = None  # invalidate the cached minimum


class TimerQueue:
    """A per-component countdown queue of monotone timers.

    Components whose completion times are non-decreasing (a serialising
    :class:`~repro.sim.resource.BandwidthResource`, a memory controller's
    in-order issue slots) arm timers here with
    :meth:`Simulator.at_monotone` instead of the global heap: arming is an
    O(1) list append, and the epoch loop bulk-expires every timer due
    within the horizon with one ``bisect`` + slice per queue instead of
    one heap pop per timer.  A timer that would violate monotonicity is
    transparently routed to the global heap, so the queue is always safe
    to use even when a component is only *mostly* in-order.
    """

    __slots__ = ("name", "_times", "_entries", "_head")

    #: consumed-prefix length that triggers compaction of the backing lists.
    _COMPACT_AT = 4096

    def __init__(self, name: str = "timers") -> None:
        self.name = name
        #: fire times, parallel to ``_entries`` (bisect runs on this).
        self._times: List[int] = []
        self._entries: List[Tuple[int, int, Callable[[Any], None], Any]] = []
        self._head = 0

    @property
    def pending(self) -> int:
        """Armed timers not yet expired."""
        return len(self._times) - self._head

    def head_key(self) -> Optional[Tuple[int, int]]:
        """``(time, seq)`` of the next timer to fire, or None when empty."""
        if self._head < len(self._times):
            entry = self._entries[self._head]
            return (entry[0], entry[1])
        return None

    def take_until(
        self, bound: int
    ) -> List[Tuple[int, int, Callable[[Any], None], Any]]:
        """Bulk-expire every timer with ``time <= bound`` (arrival order)."""
        head = self._head
        times = self._times
        cut = bisect_right(times, bound, head)
        if cut == head:
            return []
        if cut == len(times):
            if head:
                out = self._entries[head:]
            else:
                out = self._entries  # steal the backing list: zero copy
            self._entries = []
            self._times = []
            self._head = 0
            return out
        out = self._entries[head:cut]
        if cut >= self._COMPACT_AT:
            del times[:cut]
            del self._entries[:cut]
            self._head = 0
        else:
            self._head = cut
        return out

    def drain_all(self) -> List[Tuple[int, int, Callable[[Any], None], Any]]:
        """Remove and return every armed timer (legacy-loop flush)."""
        out = self._entries[self._head :]
        self._times.clear()
        self._entries.clear()
        self._head = 0
        return out

    def __repr__(self) -> str:
        return f"TimerQueue({self.name!r}, pending={self.pending})"


class Simulator:
    """The event loop: a heap of ``(time, seq, callback, arg)`` entries,
    plus per-component :class:`TimerQueue` countdown queues the epoch
    fast-forward loop expires in bulk."""

    __slots__ = (
        "_now",
        "_seq",
        "_queue",
        "_live",
        "trace",
        "_legacy",
        "_legacy_active",
        "_fifos",
        "_fifo_heap",
        "_pending",
        "_epoch_end",
        "_batch",
        "_batch_pos",
        "_lookaheads",
        "_min_lookahead",
    )

    def __init__(self, legacy: Optional[bool] = None) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[Any], None], Any]] = []
        #: unfinished processes (diagnostics: who is blocked, and on what).
        self._live: set = set()
        #: observability hook; the shared no-op recorder unless a
        #: :class:`~repro.trace.recorder.TraceRecorder` is installed.
        self.trace = NULL_RECORDER
        #: which run loop this simulator uses (None -> process default).
        self._legacy = _DEFAULT_LEGACY if legacy is None else bool(legacy)
        #: True while a legacy run drains (routes monotone timers to the
        #: heap so the reference loop stays one-heap-pop-per-event).
        self._legacy_active = self._legacy
        #: every registered countdown queue (legacy flush, depth accounting).
        self._fifos: List[TimerQueue] = []
        #: index heap of (head_time, head_seq, queue) over non-empty fifos.
        self._fifo_heap: List[Tuple[int, int, TimerQueue]] = []
        #: intra-epoch arrivals, merged with the sorted batch in seq order.
        self._pending: List[Tuple[int, int, Callable[[Any], None], Any]] = []
        #: horizon of the epoch currently executing (-1 outside one);
        #: schedule calls compare against it to route arrivals.
        self._epoch_end = -1
        #: batch being executed (diagnostics only; see ``_queued_events``).
        self._batch: Optional[List[Tuple[int, int, Callable[[Any], None], Any]]] = None
        self._batch_pos = 0
        self._lookaheads: List[LookaheadDomain] = []
        #: cached min over domain lookaheads (None -> recompute).
        self._min_lookahead: Optional[int] = None

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    def blocked_processes(self) -> List[Tuple[str, str]]:
        """``(name, waiting_on)`` for every unfinished process, sorted.

        Deterministic (name-sorted) so stall/deadlock diagnoses are
        stable across runs of the same simulation.
        """
        return sorted(
            (process.name, process.waiting_on()) for process in self._live
        )

    def _queued_events(self) -> int:
        """Every scheduled-but-unexecuted event across all structures."""
        depth = len(self._queue) + len(self._pending)
        for fifo in self._fifos:
            depth += fifo.pending
        if self._batch is not None:
            depth += len(self._batch) - self._batch_pos
        return depth

    def snapshot(self, events_processed: int = 0) -> Dict[str, Any]:
        """Diagnostic state dump used by stall/deadlock reports."""
        blocked = self.blocked_processes()
        return {
            "time_ps": self._now,
            "events_processed": events_processed,
            "queue_depth": self._queued_events(),
            "live_processes": len(blocked),
            "blocked": blocked[:16],
        }

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh untriggered event bound to this simulator."""
        return SimEvent(self, name=name)

    def schedule(self, delay: int, callback: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``callback(arg)`` after ``delay`` picoseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        time = self._now + delay
        if time <= self._epoch_end:
            heapq.heappush(self._pending, (time, self._seq, callback, arg))
        else:
            heapq.heappush(self._queue, (time, self._seq, callback, arg))

    def at(self, time: int, callback: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``callback(arg)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (delay={time - self._now})"
            )
        self._seq += 1
        if time <= self._epoch_end:
            heapq.heappush(self._pending, (time, self._seq, callback, arg))
        else:
            heapq.heappush(self._queue, (time, self._seq, callback, arg))

    def _schedule_now(self, callback: Callable[[Any], None], arg: Any) -> None:
        self._seq += 1
        if self._now <= self._epoch_end:
            heapq.heappush(self._pending, (self._now, self._seq, callback, arg))
        else:
            heapq.heappush(self._queue, (self._now, self._seq, callback, arg))

    # -- lookahead + countdown queues (epoch fast-forward) --------------------------

    def register_lookahead(self, name: str, lookahead_ps: int) -> LookaheadDomain:
        """Register a conservative-lookahead domain; returns its handle."""
        domain = LookaheadDomain(self, name, lookahead_ps)
        self._lookaheads.append(domain)
        self._min_lookahead = None
        return domain

    def timer_queue(self, name: str = "timers") -> TimerQueue:
        """Create a countdown queue for :meth:`at_monotone` timers."""
        fifo = TimerQueue(name)
        self._fifos.append(fifo)
        return fifo

    def at_monotone(
        self,
        fifo: TimerQueue,
        time: int,
        callback: Callable[[Any], None],
        arg: Any = None,
    ) -> None:
        """Run ``callback(arg)`` at ``time`` via a countdown queue.

        Semantically identical to :meth:`at` — same global ``(time, seq)``
        execution order — but O(1) when ``time`` does not precede the
        queue's newest timer.  Out-of-order timers, arrivals inside the
        epoch currently executing, and legacy-loop runs all fall back to
        the appropriate heap transparently.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past (delay={time - self._now})"
            )
        self._seq += 1
        if time <= self._epoch_end:
            heapq.heappush(self._pending, (time, self._seq, callback, arg))
            return
        times = fifo._times
        if self._legacy_active or (times and time < times[-1]):
            heapq.heappush(self._queue, (time, self._seq, callback, arg))
            return
        if fifo._head == len(times):
            heapq.heappush(self._fifo_heap, (time, self._seq, fifo))
        times.append(time)
        fifo._entries.append((time, self._seq, callback, arg))

    def _epoch_span(self) -> int:
        """Safe horizon length: min over domain lookaheads, floored."""
        span = self._min_lookahead
        if span is None:
            if self._lookaheads:
                span = min(d._lookahead_ps for d in self._lookaheads)
            else:
                span = DEFAULT_EPOCH_SPAN_PS
            if span < EPOCH_FLOOR_PS:
                span = EPOCH_FLOOR_PS
            self._min_lookahead = span
        return span

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        return Process(self, gen, name=name)

    def timeout(self, delay: int, value: Any = None) -> SimEvent:
        """An event that fires ``delay`` picoseconds from now."""
        event = SimEvent(self, name="timeout")
        self.schedule(delay, event.succeed, value)
        return event

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        watchdog: Optional[StallWatchdog] = None,
        legacy: Optional[bool] = None,
    ) -> int:
        """Drain the event queue; return the final simulation time.

        ``until`` bounds simulated time; ``max_events`` guards against
        runaway simulations: the run may complete in *exactly*
        ``max_events`` events, and :class:`SimulationError` is raised only
        when one more in-horizon event would exceed the budget.  Whether
        the queue empties before the horizon or not, the clock lands on
        ``until`` (never moving backwards), so time-based rate
        denominators are consistent across both cases.

        ``watchdog`` (default: the process-wide one armed via
        :func:`install_watchdog`, if any) adds no-progress detection: a
        wall-clock budget enforced every ``check_interval_events``
        events (:class:`~repro.errors.SimStallError` with a diagnostic
        snapshot), and — when ``detect_deadlock`` is set — a structured
        :class:`~repro.errors.DeadlockError` naming the waiting
        processes if the queue drains while some are still suspended.

        ``legacy`` selects the run loop for this call (default: the
        simulator's construction-time choice, which itself defaults to
        the process-wide :func:`set_default_loop` setting).  Both loops
        execute the identical global ``(time, seq)`` event order; the
        epoch loop just gets there with batched timer expiry.
        """
        if watchdog is None:
            watchdog = _ACTIVE_WATCHDOG
        use_legacy = self._legacy if legacy is None else legacy
        if use_legacy:
            processed = self._run_legacy(until, max_events, watchdog)
        else:
            processed = self._run_epoch(until, max_events, watchdog)
        if (
            watchdog is not None
            and watchdog.detect_deadlock
            and self._queued_events() == 0
        ):
            blocked = self.blocked_processes()
            if blocked:
                detail = "; ".join(f"{name} <- {wait}" for name, wait in blocked[:8])
                raise DeadlockError(
                    f"event queue drained at t={self._now}ps with "
                    f"{len(blocked)} blocked process(es): {detail}",
                    blocked=blocked,
                    time_ps=self._now,
                )
        if until is not None and until > self._now:
            self._now = until
            if self.trace.enabled:
                self.trace.on_time_advance(until)
        return self._now

    def _run_legacy(
        self,
        until: Optional[int],
        max_events: Optional[int],
        watchdog: Optional[StallWatchdog],
    ) -> int:
        """Reference loop: one heap pop per event (kept for differential
        verification of the epoch loop; ``legacy=True``)."""
        processed = 0
        trace = self.trace
        tracing = trace.enabled
        check_every = (
            watchdog.check_interval_events
            if watchdog is not None and watchdog.deadline is not None
            else 0
        )
        # hot loop: everything loop-invariant is hoisted into locals, the
        # horizon/budget guards become plain comparisons against +inf
        # sentinels, and watchdog polling is amortized onto a next-check
        # threshold instead of a modulo per event.  Semantics (event order,
        # clock movement, error behaviour) are identical to the plain loop.
        queue = self._queue
        pop = heapq.heappop
        # countdown queues may hold timers armed before this run (or by a
        # previous epoch-mode run): fold them into the heap once, then
        # route new arrivals straight to the heap for the drain.
        pending_extras = self._pending
        for fifo in self._fifos:
            pending_extras.extend(fifo.drain_all())
        if pending_extras:
            queue.extend(pending_extras)
            heapq.heapify(queue)
            self._pending = []
        self._fifo_heap.clear()
        self._legacy_active = True
        horizon = until if until is not None else _NO_BOUND
        budget = max_events if max_events is not None else _NO_BOUND
        next_check = check_every if check_every else _NO_BOUND
        try:
            while queue:
                entry = queue[0]
                time = entry[0]
                if time > horizon:
                    break
                if processed >= budget:
                    raise SimulationError(f"exceeded max_events={max_events}")
                pop(queue)
                if tracing and time != self._now:
                    self._now = time
                    trace.on_time_advance(time)
                else:
                    self._now = time
                entry[2](entry[3])
                processed += 1
                if processed >= next_check:
                    watchdog.check(self, processed)
                    next_check += check_every
        finally:
            self._legacy_active = self._legacy
        return processed

    def _run_epoch(
        self,
        until: Optional[int],
        max_events: Optional[int],
        watchdog: Optional[StallWatchdog],
    ) -> int:
        """Epoch-synchronized fast-forward loop (the default).

        Repeats: find the next event time ``t0``, open an epoch up to
        ``t0 + min(lookahead)``, bulk-expire every heap entry and every
        countdown-queue timer due inside it, sort the batch once, and
        execute it while merging intra-epoch arrivals through a small
        pending heap.  The merge makes the horizon safe by construction:
        every callback runs in the same global ``(time, seq)`` order the
        legacy loop would have used.
        """
        processed = 0
        trace = self.trace
        tracing = trace.enabled
        check_every = (
            watchdog.check_interval_events
            if watchdog is not None and watchdog.deadline is not None
            else 0
        )
        queue = self._queue
        fifo_heap = self._fifo_heap
        pending = self._pending
        pop = heapq.heappop
        push = heapq.heappush
        horizon = until if until is not None else _NO_BOUND
        budget = max_events if max_events is not None else _NO_BOUND
        next_check = check_every if check_every else _NO_BOUND
        while pending:  # leftovers from an interrupted previous run
            push(queue, pop(pending))
        while True:
            # --- next epoch start: earliest heap entry or countdown head
            t0 = queue[0][0] if queue else _NO_BOUND
            while fifo_heap:
                head_time, head_seq, fifo = fifo_heap[0]
                key = fifo.head_key()
                if key != (head_time, head_seq):
                    # stale index entry (queue emptied or head consumed)
                    pop(fifo_heap)
                    if key is not None:
                        push(fifo_heap, (key[0], key[1], fifo))
                    continue
                if head_time < t0:
                    t0 = head_time
                break
            if t0 is _NO_BOUND or t0 > horizon:
                break
            epoch_end = t0 + self._epoch_span()
            if epoch_end > horizon:
                epoch_end = until  # horizon is finite here iff until is
            # --- gather: bulk-expire everything due inside the epoch
            batch = []
            while queue and queue[0][0] <= epoch_end:
                batch.append(pop(queue))
            while fifo_heap and fifo_heap[0][0] <= epoch_end:
                _t, _s, fifo = pop(fifo_heap)
                batch.extend(fifo.take_until(epoch_end))
                key = fifo.head_key()
                if key is not None:
                    push(fifo_heap, (key[0], key[1], fifo))
            batch.sort()
            # --- execute, merging intra-epoch arrivals in (time, seq) order
            self._epoch_end = epoch_end
            self._batch = batch
            self._batch_pos = 0
            index = 0
            size = len(batch)
            try:
                while True:
                    if pending:
                        if index < size and batch[index] < pending[0]:
                            entry = batch[index]
                            index += 1
                        else:
                            entry = pop(pending)
                    elif index < size:
                        entry = batch[index]
                        index += 1
                    else:
                        break
                    if processed >= budget:
                        push(queue, entry)
                        raise SimulationError(f"exceeded max_events={max_events}")
                    time = entry[0]
                    if tracing and time != self._now:
                        self._now = time
                        trace.on_time_advance(time)
                    else:
                        self._now = time
                    entry[2](entry[3])
                    processed += 1
                    if processed >= next_check:
                        self._batch_pos = index
                        watchdog.check(self, processed)
                        next_check += check_every
            except BaseException:
                # restore unexecuted work so diagnostics (and any caller
                # that resumes after a stall) see a consistent queue
                for entry in batch[index:]:
                    push(queue, entry)
                while pending:
                    push(queue, pop(pending))
                raise
            finally:
                self._epoch_end = -1
                self._batch = None
                self._batch_pos = 0
        return processed

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Convenience: start a process, run to completion, return its value."""
        proc = self.process(gen, name=name)
        self.run()
        if not proc.finished:
            blocked = self.blocked_processes()
            detail = "; ".join(f"{name} <- {wait}" for name, wait in blocked[:8])
            raise DeadlockError(
                f"process {proc.name!r} deadlocked at t={self._now}ps"
                + (f" (blocked: {detail})" if detail else ""),
                blocked=blocked,
                time_ps=self._now,
            )
        return proc.value
