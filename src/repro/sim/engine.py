"""Discrete-event simulation engine.

A deliberately small SimPy-style kernel: a binary-heap event queue over
integer picosecond timestamps, plus generator-based *processes*.  A process
is a Python generator that yields one of:

* an ``int`` — sleep for that many picoseconds,
* a :class:`SimEvent` — suspend until the event succeeds; the event's value
  is sent back into the generator,
* a :class:`Process` — suspend until that process finishes,
* :class:`AllOf` — suspend until every listed event/process has finished.

The kernel is single-threaded and deterministic: events scheduled at the
same timestamp fire in scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

ProcessGen = Generator[Any, Any, Any]


class SimEvent:
    """A one-shot event that processes can wait on.

    An event starts untriggered; calling :meth:`succeed` fires it exactly
    once with an optional value, resuming every waiter.
    """

    __slots__ = ("sim", "name", "_value", "_triggered", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._value: Any = None
        self._triggered = False
        self._callbacks: List[Callable[["SimEvent"], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has already fired."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event fired with (None before triggering)."""
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event, resuming all waiters at the current time."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` when the event fires (now if already fired)."""
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)


class AllOf:
    """Condition satisfied when all child events/processes have fired."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]) -> None:
        self.children = list(children)


class Process:
    """A running simulation process wrapping a generator.

    The generator's return value becomes :attr:`value`, and :attr:`done`
    is a :class:`SimEvent` fired on completion.
    """

    __slots__ = ("sim", "name", "done", "_gen", "_finished")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self.done = SimEvent(sim, name=f"{self.name}.done")
        self._gen = gen
        self._finished = False
        sim._schedule_now(self._step, None)

    @property
    def finished(self) -> bool:
        """Whether the underlying generator has returned."""
        return self._finished

    @property
    def value(self) -> Any:
        """The generator's return value (None until finished)."""
        return self.done.value

    def _step(self, send_value: Any) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self._finished = True
            self.done.succeed(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, int):
            if target < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {target}"
                )
            self.sim.schedule(target, self._step, None)
        elif isinstance(target, SimEvent):
            target.add_callback(lambda ev: self.sim._schedule_now(self._step, ev.value))
        elif isinstance(target, Process):
            target.done.add_callback(
                lambda ev: self.sim._schedule_now(self._step, ev.value)
            )
        elif isinstance(target, AllOf):
            self._wait_all(target.children)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )

    def _wait_all(self, children: List[Any]) -> None:
        pending = len(children)
        if pending == 0:
            self.sim._schedule_now(self._step, [])
            return
        results: List[Any] = [None] * pending
        remaining = [pending]

        def on_done(index: int, ev: SimEvent) -> None:
            results[index] = ev.value
            remaining[0] -= 1
            if remaining[0] == 0:
                self.sim._schedule_now(self._step, results)

        for index, child in enumerate(children):
            event = child.done if isinstance(child, Process) else child
            if not isinstance(event, SimEvent):
                raise SimulationError(f"AllOf child {child!r} is not waitable")
            event.add_callback(lambda ev, i=index: on_done(i, ev))


class Simulator:
    """The event loop: a heap of ``(time, seq, callback, arg)`` entries."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[[Any], None], Any]] = []

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh untriggered event bound to this simulator."""
        return SimEvent(self, name=name)

    def schedule(self, delay: int, callback: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``callback(arg)`` after ``delay`` picoseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback, arg))

    def at(self, time: int, callback: Callable[[Any], None], arg: Any = None) -> None:
        """Run ``callback(arg)`` at absolute time ``time``."""
        self.schedule(time - self._now, callback, arg)

    def _schedule_now(self, callback: Callable[[Any], None], arg: Any) -> None:
        self.schedule(0, callback, arg)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        return Process(self, gen, name=name)

    def timeout(self, delay: int, value: Any = None) -> SimEvent:
        """An event that fires ``delay`` picoseconds from now."""
        event = self.event(name="timeout")
        self.schedule(delay, lambda _arg: event.succeed(value), None)
        return event

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue; return the final simulation time.

        ``until`` bounds simulated time; ``max_events`` guards against
        runaway simulations (raises :class:`SimulationError` when hit).
        """
        processed = 0
        while self._queue:
            time, _seq, callback, arg = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = time
            callback(arg)
            processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        return self._now

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Convenience: start a process, run to completion, return its value."""
        proc = self.process(gen, name=name)
        self.run()
        if not proc.finished:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        return proc.value
