"""DIMM-Link (HPCA 2023) reproduction.

A discrete-event model of DIMM-based near-memory processing systems with
four inter-DIMM communication mechanisms — CPU forwarding (MCN/UPMEM), a
dedicated bus (AIM), intra-channel broadcast (ABC-DIMM), and the paper's
DIMM-Link interconnect — plus the workloads, task-mapping optimizer,
energy model, and experiment harnesses that regenerate every table and
figure of the paper's evaluation.

Quickstart::

    from repro import SystemConfig, NMPSystem, build_workload

    config = SystemConfig.named("16D-8C")
    system = NMPSystem(config, idc="dimm_link")
    workload = build_workload("pagerank", "tiny")
    result = system.run(workload.thread_factories(64, 16))
    print(result.time_us, result.traffic_breakdown)
"""

from repro.config import (
    ChannelConfig,
    HostConfig,
    LinkConfig,
    NMPConfig,
    PAPER_CONFIG_NAMES,
    SystemConfig,
)
from repro.energy import EnergyParams, energy_report
from repro.errors import (
    ConfigError,
    FaultError,
    LinkFailure,
    MappingError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
    WorkloadError,
)
from repro.experiments.common import (
    build_workload,
    run_cpu,
    run_nmp,
    run_optimized,
    threads_for,
)
from repro.faults import (
    BridgeFault,
    DimmFault,
    FaultSchedule,
    LinkDegrade,
    LinkDown,
    LinkOutage,
)
from repro.host.cpu import HostCPUSystem
from repro.idc import make_mechanism, mechanism_names
from repro.mapping import distance_aware_placement, profile_traffic
from repro.nmp.results import RunResult
from repro.nmp.system import NMPSystem

__version__ = "1.0.0"

__all__ = [
    "ChannelConfig",
    "HostConfig",
    "LinkConfig",
    "NMPConfig",
    "PAPER_CONFIG_NAMES",
    "SystemConfig",
    "EnergyParams",
    "energy_report",
    "ConfigError",
    "FaultError",
    "LinkFailure",
    "MappingError",
    "ProtocolError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "WorkloadError",
    "BridgeFault",
    "DimmFault",
    "FaultSchedule",
    "LinkDegrade",
    "LinkDown",
    "LinkOutage",
    "build_workload",
    "run_cpu",
    "run_nmp",
    "run_optimized",
    "threads_for",
    "HostCPUSystem",
    "make_mechanism",
    "mechanism_names",
    "distance_aware_placement",
    "profile_traffic",
    "RunResult",
    "NMPSystem",
]
