"""``dimmlink-repro serve``: the asyncio front door of the sweep fabric.

The server owns **no durable truth of its own**.  Every submit, claim,
heartbeat, and outcome it handles is applied to a
:class:`~repro.fabric.broker.WorkBroker` — the crash-safe journal/lease
directory — through a single executor thread (the "journal owner"), so
the server can die at any instruction and a restart replays a consistent
queue.  What *is* in memory (per-grid progress logs, per-request
deadlines) is either reconstructible from the journal or explicitly
best-effort, and the graceful-drain path persists it to a
``service.json`` resume manifest.

Robustness mechanisms, in the order a request meets them:

* **Admission control** — submits are rejected with a structured
  :data:`~repro.service.protocol.BUSY` reply when the bounded waiting
  line is full or the live queue would exceed ``max_live_specs``.
  Nothing is buffered beyond those bounds, so a submit storm cannot grow
  memory; a rejected submit journaled nothing and is safe to retry.
* **Per-request deadlines** — a submit's ``deadline_s`` is remembered
  per spec key and propagated into the fabric's lease TTLs at claim and
  renew time (a lease never outlives its deadline), and pending specs
  whose deadline lapses are quarantined instead of executed for a
  client that already gave up.
* **Idempotency** — submits dedup through the journal's exclusive
  enqueue, outcomes through the broker's idempotent
  ``complete``/``fail``; a client that retries after a lost reply never
  double-enqueues or double-counts.
* **Graceful drain** — on SIGTERM (or :meth:`ReproService.request_drain`)
  the listener closes, in-flight progress streams run until their grids
  drain (bounded by ``drain_timeout_s``), the resume manifest is
  written, and the process exits without holding a single lease.
* **Streams resume** — progress events carry a per-grid sequence
  number; a reconnecting subscriber replays from its last acked seq, or
  receives an explicit ``reset`` snapshot when the log predates this
  server's lifetime.

The ``net.*`` fault points of :mod:`repro.fabric.faultpoints` are
tripped here (and in the protocol layer) so the chaos suite can kill
the server at its nastiest instructions — mid-reply after journaling an
outcome, mid-frame, or into a half-open silence — and prove recovery.

Run standalone::

    python -m repro.service.server /path/to/broker --port 7741
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import hashlib
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.runner import RunSpec
from repro.fabric import faultpoints
from repro.fabric.broker import BrokerConfig, WorkBroker
from repro.fabric.faultpoints import InjectedFaultError
from repro.fsio import atomic_write_text
from repro.nmp.results import RunResult
from repro.service import protocol
from repro.trace.progress import RateWindow

MANIFEST_FILENAME = "service.json"

#: how long an armed ``net.outcome.delayed`` reply stalls — chosen to
#: overrun the chaos clients' RPC timeout so the retry path really runs.
OUTCOME_DELAY_S = 0.6

#: floor on a deadline-shortened lease TTL, so a claim in the last
#: milliseconds of a deadline still journals coherently.
MIN_LEASE_TTL_S = 0.05


def grid_id_for(keys: Sequence[str]) -> str:
    """Stable identity of a submitted grid: hash of its sorted keys."""
    digest = hashlib.sha256("\n".join(sorted(keys)).encode()).hexdigest()
    return digest[:16]


class _GridStream:
    """The append-only progress event log of one submitted grid.

    Events are numbered ``base_seq, base_seq+1, ...``; everything below
    ``base_seq`` predates this server process (lost to a restart) and
    resumes via an explicit ``reset``.  The log is the *only* state a
    stream needs, so any number of subscribers — including ones that
    reconnect mid-grid — replay the same bytes in the same order.
    """

    #: events kept per grid; older ones age out and resume via reset.
    MAX_EVENTS = 100_000

    def __init__(self, grid_id: str, keys: List[str], base_seq: int = 0) -> None:
        self.grid_id = grid_id
        self.keys = keys
        self.base_seq = base_seq
        self.events: List[Dict[str, object]] = []
        self.states: Dict[str, str] = {}
        self.drained = False
        self.lock = asyncio.Lock()

    @property
    def next_seq(self) -> int:
        return self.base_seq + len(self.events)

    def append(self, event: Dict[str, object]) -> None:
        self.events.append(event)
        if len(self.events) > self.MAX_EVENTS:
            overflow = len(self.events) - self.MAX_EVENTS
            del self.events[:overflow]
            self.base_seq += overflow

    def event_at(self, seq: int) -> Optional[Dict[str, object]]:
        index = seq - self.base_seq
        if 0 <= index < len(self.events):
            return self.events[index]
        return None


class _CloseConnection(Exception):
    """Handler verdict: send nothing further and drop this connection."""


class _NoReply(Exception):
    """Handler verdict: send nothing but keep the connection open
    (the half-open failure mode)."""


class ReproService:
    """The asyncio sweep service over one broker directory."""

    def __init__(
        self,
        root: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[BrokerConfig] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        durable: bool = True,
        max_live_specs: int = 1024,
        max_submit_waiters: int = 8,
        poll_interval_s: float = 0.2,
        drain_timeout_s: float = 30.0,
        stream_keepalive_s: float = 1.0,
    ) -> None:
        self.root = Path(root)
        self.host = host
        self.port = port  # 0 = ephemeral; updated once bound
        self.broker = WorkBroker(
            self.root, config=config, cache_dir=cache_dir, durable=durable
        )
        self.durable = durable
        self.max_live_specs = max_live_specs
        self.max_submit_waiters = max_submit_waiters
        self.poll_interval_s = poll_interval_s
        self.drain_timeout_s = drain_timeout_s
        #: idle streams emit a keepalive frame this often so a healthy
        #: but quiet grid (slow specs) never trips client read timeouts.
        self.stream_keepalive_s = stream_keepalive_s
        #: completions per second over a trailing window (status/streams).
        self.throughput = RateWindow(window_s=10.0)
        self._grids: Dict[str, _GridStream] = {}
        #: spec key -> absolute epoch deadline (best-effort, manifested).
        self._deadlines: Dict[str, float] = {}
        self._draining = False
        self._drain_requested: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conn_tasks: set = set()
        #: connection tasks currently pushing a progress stream — the
        #: only ones graceful drain waits for (idle readers just close).
        self._active_streams: set = set()
        self._submit_waiters = 0
        self._submit_lock: Optional[asyncio.Lock] = None
        # one thread = one journal owner: every broker mutation and read
        # funnels through it in arrival order
        self._journal_owner = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="svc-journal"
        )
        self._restore_manifest()

    # -- lifecycle -------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and restore resumable state."""
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        self._submit_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_drain`, then drain gracefully."""
        if self._server is None:
            await self.start()
        assert self._drain_requested is not None
        await self._drain_requested.wait()
        await self.drain()

    def request_drain(self) -> None:
        """Begin graceful shutdown (signal-handler and thread safe)."""
        self._draining = True
        loop, event = self._loop, self._drain_requested
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already gone: the drain it would start is done

    async def drain(self) -> None:
        """Stop accepting, let streams finish, persist the manifest."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # in-flight progress streams get the full drain budget; idle
        # connections (parked between requests) are simply cancelled —
        # their clients reconnect-and-resume against the successor
        if self._active_streams:
            _, stragglers = await asyncio.wait(
                set(self._active_streams), timeout=self.drain_timeout_s
            )
            for task in stragglers:
                task.cancel()
        for task in set(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *set(self._conn_tasks), return_exceptions=True
            )
        await self._fs(self._write_manifest)
        self._journal_owner.shutdown(wait=True)

    # -- manifest --------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_FILENAME

    def _write_manifest(self) -> None:
        manifest = {
            "version": 1,
            "host": self.host,
            "port": self.port,
            "drained": True,
            "grids": {
                grid.grid_id: {"keys": grid.keys, "next_seq": grid.next_seq}
                for grid in self._grids.values()
            },
            "deadlines": dict(self._deadlines),
            "counts": self.broker.counts(),
        }
        atomic_write_text(
            self.manifest_path,
            json.dumps(manifest, indent=2, sort_keys=True),
            durable=self.durable,
        )

    def _restore_manifest(self) -> None:
        """Resume grids/deadlines a drained predecessor left behind."""
        try:
            manifest = json.loads(self.manifest_path.read_text())
            grids = manifest.get("grids", {})
            deadlines = manifest.get("deadlines", {})
        except (OSError, ValueError, AttributeError):
            return
        if not isinstance(grids, dict) or not isinstance(deadlines, dict):
            return
        for grid_id, entry in grids.items():
            try:
                keys = [str(k) for k in entry["keys"]]
                next_seq = int(entry.get("next_seq", 0))
            except (TypeError, KeyError, ValueError):
                continue
            # the event log is gone: future events continue the numbering,
            # and a subscriber behind next_seq gets an explicit reset
            self._grids[str(grid_id)] = _GridStream(
                str(grid_id), keys, base_seq=next_seq
            )
        for key, stamp in deadlines.items():
            try:
                self._deadlines[str(key)] = float(stamp)
            except (TypeError, ValueError):
                continue

    # -- plumbing --------------------------------------------------------------------

    async def _fs(self, fn, *args):
        """Run one broker/filesystem operation on the journal owner."""
        assert self._loop is not None
        return await self._loop.run_in_executor(
            self._journal_owner, lambda: fn(*args)
        )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    request = await protocol.read_frame(reader)
                except (protocol.ConnectionTorn, protocol.ProtocolError,
                        ConnectionError, OSError):
                    break  # torn frame == dropped peer: never act on half
                except asyncio.CancelledError:
                    break  # drain cancelled an idle reader: close quietly
                if request is None:
                    break
                try:
                    reply = await self._dispatch(request, writer)
                except _NoReply:
                    if self._draining:
                        break  # a stream just finished during drain: close
                    continue  # half-open: swallow the request silently
                except (_CloseConnection, InjectedFaultError):
                    break
                except (ConnectionError, OSError):
                    break
                except asyncio.CancelledError:
                    break  # drain gave up on this stream: close quietly
                except Exception as exc:  # a handler bug must not kill the server
                    reply = protocol.error(
                        protocol.BAD_REQUEST, f"{type(exc).__name__}: {exc}"
                    )
                try:
                    await protocol.write_frame(writer, reply)
                except (InjectedFaultError, ConnectionError, OSError):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: Dict[str, object], writer: asyncio.StreamWriter
    ) -> Dict[str, object]:
        try:
            faultpoints.trip("net.conn.half_open")
        except InjectedFaultError:
            raise _NoReply() from None
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return protocol.error(protocol.BAD_REQUEST, f"unknown op {op!r}")
        return await handler(request, writer)

    # -- deadline plumbing -----------------------------------------------------------

    def _deadline_ttl(self, key: str) -> Optional[float]:
        """Lease TTL bound for ``key``: never outlive its deadline."""
        deadline = self._deadlines.get(key)
        if deadline is None:
            return None
        remaining = deadline - time.time()
        return max(MIN_LEASE_TTL_S, min(self.broker.config.lease_ttl_s, remaining))

    async def _expire_overdue(self) -> None:
        """Quarantine pending specs whose request deadline lapsed."""
        now = time.time()
        overdue = [k for k, d in self._deadlines.items() if d < now]
        for key in overdue:
            record = await self._fs(self.broker.journal.read, key)
            if record is not None and record.state == "pending":
                await self._fs(
                    self.broker.expire, key,
                    "request deadline exceeded before execution started",
                )
                record = await self._fs(self.broker.journal.read, key)
            if record is None or record.state in ("done", "dead"):
                # terminal (or never journaled): stop tracking; leased
                # specs keep their TTL bound until they reach an outcome
                self._deadlines.pop(key, None)

    # -- ops: clients ----------------------------------------------------------------

    async def _op_hello(self, request, writer):
        return protocol.ok(
            server="dimmlink-repro",
            proto=protocol.PROTOCOL_VERSION,
            draining=self._draining,
            config=dataclasses.asdict(self.broker.config),
        )

    async def _op_submit(self, request, writer):
        if self._draining:
            return protocol.error(
                protocol.DRAINING, "server is draining; submit elsewhere",
                retry_after_s=1.0,
            )
        raw_specs = request.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            return protocol.error(
                protocol.BAD_REQUEST, "submit needs a non-empty 'specs' list"
            )
        try:
            grid = [RunSpec(**spec) for spec in raw_specs]
        except Exception as exc:
            return protocol.error(
                protocol.BAD_REQUEST, f"malformed spec: {exc}"
            )
        # bounded waiting line: beyond it, shed load instead of buffering
        if self._submit_waiters >= self.max_submit_waiters:
            return protocol.error(
                protocol.BUSY,
                f"submit queue full ({self._submit_waiters} waiting)",
                retry_after_s=0.25,
            )
        self._submit_waiters += 1
        try:
            assert self._submit_lock is not None
            async with self._submit_lock:
                counts = await self._fs(self.broker.counts)
                live = counts["pending"] + counts["leased"]
                if live and live + len(grid) > self.max_live_specs:
                    return protocol.error(
                        protocol.BUSY,
                        f"{live} live specs + {len(grid)} submitted exceeds "
                        f"admission bound {self.max_live_specs}",
                        retry_after_s=1.0,
                        live=live,
                        limit=self.max_live_specs,
                    )
                retry_dead = bool(request.get("retry_dead", False))
                report = await self._fs(
                    self.broker.submit, grid, retry_dead
                )
        finally:
            self._submit_waiters -= 1
        deadline_s = request.get("deadline_s")
        if isinstance(deadline_s, (int, float)) and deadline_s > 0:
            stamp = time.time() + float(deadline_s)
            for key in report.keys:
                self._deadlines[key] = stamp
        grid_stream = self._register_grid(report.keys)
        payload = dataclasses.asdict(report)
        return protocol.ok(report=payload, grid_id=grid_stream.grid_id)

    def _register_grid(self, keys: List[str]) -> _GridStream:
        grid_id = grid_id_for(keys)
        grid = self._grids.get(grid_id)
        if grid is None:
            grid = _GridStream(grid_id, list(keys))
            self._grids[grid_id] = grid
        return grid

    async def _op_status(self, request, writer):
        keys = request.get("keys")
        counts = await self._fs(
            self.broker.counts, keys if isinstance(keys, list) else None
        )
        live_leases = await self._fs(self.broker.leases.live_count)
        return protocol.ok(
            counts=counts,
            live_leases=live_leases,
            draining=self._draining,
            throughput_per_s=self.throughput.rate(),
            grids=len(self._grids),
        )

    async def _op_subscribe(self, request, writer):
        """Stream a grid's progress events until it drains.

        Takes over the connection: after the acknowledging reply, every
        frame pushed is ``{"stream": grid_id, "seq": n, "event": ...}``
        until a final ``{"stream_end": grid_id}``.  ``from_seq`` resumes
        an interrupted stream; a ``reset`` frame (with a fresh counts
        snapshot) replaces history that no longer exists.
        """
        grid_id = request.get("grid_id")
        keys = request.get("keys")
        grid: Optional[_GridStream] = None
        if isinstance(grid_id, str):
            grid = self._grids.get(grid_id)
        if grid is None and isinstance(keys, list) and keys:
            grid = self._register_grid([str(k) for k in keys])
        if grid is None:
            return protocol.error(
                protocol.BAD_REQUEST,
                "subscribe needs 'keys' or a known 'grid_id'",
            )
        cursor = request.get("from_seq", 0)
        cursor = int(cursor) if isinstance(cursor, (int, float)) else 0
        task = asyncio.current_task()
        if task is not None:
            # mark this connection as an in-flight stream: graceful drain
            # waits for it (bounded) instead of cancelling it outright
            self._active_streams.add(task)
        try:
            await protocol.write_frame(
                writer,
                protocol.ok(grid_id=grid.grid_id, next_seq=grid.next_seq),
            )
            if cursor < grid.base_seq or cursor > grid.next_seq:
                # the client's cursor falls outside this server's event
                # history — either the events it wants predate us, or its
                # numbering came from a previous incarnation that died
                # without a manifest (cursor ahead of next_seq): resync
                counts = await self._fs(self.broker.counts, grid.keys)
                await protocol.write_frame(writer, {
                    "stream": grid.grid_id,
                    "reset": True,
                    "next_seq": grid.base_seq,
                    "counts": counts,
                })
                cursor = grid.base_seq
            last_write = time.monotonic()
            while True:
                await self._advance_grid(grid)
                while cursor < grid.next_seq:
                    event = grid.event_at(cursor)
                    if event is None:  # aged out mid-stream: resync
                        counts = await self._fs(self.broker.counts, grid.keys)
                        await protocol.write_frame(writer, {
                            "stream": grid.grid_id,
                            "reset": True,
                            "next_seq": grid.base_seq,
                            "counts": counts,
                        })
                        cursor = grid.base_seq
                        continue
                    await protocol.write_frame(writer, {
                        "stream": grid.grid_id, "seq": cursor, "event": event,
                    })
                    cursor += 1
                    last_write = time.monotonic()
                if grid.drained:
                    break
                if time.monotonic() - last_write >= self.stream_keepalive_s:
                    # a quiet grid is not a dead one: keep the pipe warm
                    # so subscribers never mistake idleness for loss
                    await protocol.write_frame(
                        writer, {"stream": grid.grid_id, "keepalive": True}
                    )
                    last_write = time.monotonic()
                await asyncio.sleep(self.poll_interval_s)
            await protocol.write_frame(writer, {"stream_end": grid.grid_id})
        finally:
            if task is not None:
                self._active_streams.discard(task)
        raise _NoReply()  # frames already written; resume the read loop

    async def _advance_grid(self, grid: _GridStream) -> None:
        """Poll the journal and append any new progress events."""
        async with grid.lock:
            if grid.drained:
                return
            await self._expire_overdue()
            records = await self._fs(self.broker.records)
            if not grid.events and not grid.base_seq:
                counts = self._tally(grid, records)
                grid.append({"type": "snapshot", "counts": counts})
            for key in grid.keys:
                record = records.get(key)
                state = record.state if record is not None else "pending"
                if grid.states.get(key, "pending") == state:
                    continue
                grid.states[key] = state
                event: Dict[str, object] = {
                    "type": "spec", "key": key, "state": state,
                }
                if record is not None:
                    if record.worker:
                        event["worker"] = record.worker
                    if state in ("pending", "dead") and record.error:
                        event["error"] = record.error
                if state == "done":
                    self.throughput.record()
                grid.append(event)
            counts = self._tally(grid, records)
            if counts["pending"] == 0 and counts["leased"] == 0:
                grid.drained = True
                grid.append({"type": "drained", "counts": counts})

    @staticmethod
    def _tally(grid: _GridStream, records) -> Dict[str, int]:
        tally = {"pending": 0, "leased": 0, "done": 0, "dead": 0, "total": 0}
        for key in grid.keys:
            record = records.get(key)
            tally[record.state if record is not None else "pending"] += 1
            tally["total"] += 1
        return tally

    # -- ops: netbroker workers ------------------------------------------------------

    async def _op_claim(self, request, writer):
        worker = str(request.get("worker", ""))
        if not worker:
            return protocol.error(protocol.BAD_REQUEST, "claim needs 'worker'")
        if self._draining:
            # drain = stop handing out new work; in-flight outcomes and
            # heartbeats keep flowing so nothing is orphaned
            return protocol.ok(record=None, draining=True)
        await self._expire_overdue()
        record = await self._fs(self.broker.claim, worker)
        if record is None:
            return protocol.ok(record=None)
        ttl = self._deadline_ttl(record.key)
        if ttl is not None:
            # the lease must not outlive the request deadline
            await self._fs(self.broker.leases.renew, record.key, worker, ttl)
        payload = dataclasses.asdict(record)
        return protocol.ok(record=payload, lease_ttl_s=ttl)

    async def _op_renew(self, request, writer):
        key = str(request.get("key", ""))
        worker = str(request.get("worker", ""))
        ttl = self._deadline_ttl(key)
        try:
            renewed = await self._fs(self.broker.leases.renew, key, worker, ttl)
        except OSError:
            renewed = False  # surfaced to the worker as lease loss
        faultpoints.trip("net.heartbeat.drop_ack")
        return protocol.ok(renewed=bool(renewed))

    async def _op_complete(self, request, writer):
        key = str(request.get("key", ""))
        worker = str(request.get("worker", ""))
        if faultpoints.armed("net.outcome.delayed"):
            await asyncio.sleep(OUTCOME_DELAY_S)
            faultpoints.trip("net.outcome.delayed")
        completed = await self._fs(self.broker.complete, key, worker)
        if completed:
            self.throughput.record()
        self._deadlines.pop(key, None)
        # the transition is journaled; dying before the reply leaves the
        # wire is exactly-once's worst case — chaos proves it recovers
        faultpoints.trip("net.server.exit_mid_reply")
        return protocol.ok(completed=bool(completed))

    async def _op_fail(self, request, writer):
        key = str(request.get("key", ""))
        worker = str(request.get("worker", ""))
        error = str(request.get("error", ""))
        diagnosis = str(request.get("diagnosis", ""))
        failed = await self._fs(self.broker.fail, key, worker, error, diagnosis)
        faultpoints.trip("net.server.exit_mid_reply")
        return protocol.ok(failed=bool(failed))

    async def _op_relinquish(self, request, writer):
        key = str(request.get("key", ""))
        worker = str(request.get("worker", ""))
        reason = str(request.get("reason", "worker drained"))
        relinquished = await self._fs(
            self.broker.relinquish, key, worker, reason
        )
        return protocol.ok(relinquished=bool(relinquished))

    async def _op_cache_get(self, request, writer):
        key = str(request.get("key", ""))
        result = await self._fs(self.broker.cache.get, key)
        if result is None:
            return protocol.ok(result=None)
        return protocol.ok(result=result.to_json_dict())

    async def _op_cache_put(self, request, writer):
        key = str(request.get("key", ""))
        payload = request.get("result")
        if not isinstance(payload, dict):
            return protocol.error(
                protocol.BAD_REQUEST, "cache_put needs a 'result' object"
            )
        try:
            result = RunResult.from_json_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            return protocol.error(
                protocol.BAD_REQUEST, f"unparsable result payload: {exc}"
            )
        spec = request.get("spec")
        await self._fs(
            self.broker.cache.put, key, result,
            spec if isinstance(spec, dict) else None,
        )
        return protocol.ok(stored=True)

    async def _op_counts(self, request, writer):
        keys = request.get("keys")
        counts = await self._fs(
            self.broker.counts, keys if isinstance(keys, list) else None
        )
        return protocol.ok(counts=counts)

    async def _op_drained(self, request, writer):
        keys = request.get("keys")
        drained = await self._fs(
            self.broker.drained, keys if isinstance(keys, list) else None
        )
        return protocol.ok(drained=bool(drained))


class ServiceThread:
    """Run a :class:`ReproService` on a background thread (tests, CLI
    helpers, and the smoke examples).  ``start()`` blocks until the
    port is bound; ``drain()`` performs the graceful shutdown."""

    def __init__(self, service: ReproService) -> None:
        self.service = service
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._failure: Optional[BaseException] = None

    def start(self, timeout_s: float = 10.0) -> "ServiceThread":
        def run() -> None:
            try:
                asyncio.run(self._main())
            except BaseException as exc:  # surfaced on join
                self._failure = exc
                self._started.set()

        self._thread = threading.Thread(
            target=run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("service failed to start in time")
        if self._failure is not None:
            raise RuntimeError(f"service failed to start: {self._failure}")
        return self

    async def _main(self) -> None:
        await self.service.start()
        self._started.set()
        await self.service.serve_forever()

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def address(self) -> str:
        return f"tcp://{self.service.host}:{self.service.port}"

    def drain(self, timeout_s: float = 60.0) -> None:
        self.service.request_drain()
        if self._thread is not None:
            self._thread.join(timeout_s)


def main(argv=None) -> int:
    """``python -m repro.service.server``: serve one broker directory."""
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Serve a DIMM-Link sweep broker over a socket.",
    )
    parser.add_argument("root", help="broker directory (the durable state store)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--max-live-specs", type=int, default=1024,
        help="admission bound: reject submits that would exceed this many "
        "live (pending+leased) specs (default: 1024)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="lease TTL when creating the broker (existing policy wins)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="graceful-drain bound for in-flight progress streams",
    )
    args = parser.parse_args(argv)
    config = (
        BrokerConfig(lease_ttl_s=args.lease_ttl) if args.lease_ttl else None
    )
    service = ReproService(
        args.root,
        host=args.host,
        port=args.port,
        config=config,
        max_live_specs=args.max_live_specs,
        drain_timeout_s=args.drain_timeout,
    )

    async def run() -> None:
        await service.start()
        print(f"[serve] listening on tcp://{service.host}:{service.port} "
              f"(broker: {service.root})", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, service.request_drain)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX loop: rely on KeyboardInterrupt
        await service.serve_forever()
        print(f"[serve] drained; resume manifest at {service.manifest_path}",
              flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
