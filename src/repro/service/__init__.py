"""Asynchronous sweep service: ``dimmlink-repro serve`` and its clients.

The service layer is the network front door of the distributed fabric
(:mod:`repro.fabric`):

* :mod:`repro.service.protocol` — the length-prefixed JSON framing both
  sides speak, torn-frame tolerant by construction.
* :mod:`repro.service.server` — the asyncio server.  Concurrent clients
  submit :class:`~repro.experiments.runner.RunSpec` grids and stream
  progress; netbroker workers proxy claim/heartbeat/outcome RPCs through
  it.  All durable state lives in the fabric's journal/lease directory —
  the server owns no truth of its own and can die at any instruction.
* :mod:`repro.service.client` — the reconnecting client: jittered capped
  exponential backoff, idempotent submits, and stream resume from the
  last acked progress sequence number.

See DESIGN.md §16 for the failure model: which faults the service
absorbs, which it surfaces, and what drain/resume guarantee it makes.
"""

from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.protocol import parse_endpoint
from repro.service.server import ReproService

__all__ = [
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "parse_endpoint",
]
