"""Wire protocol of the sweep service: length-prefixed JSON frames.

One frame = a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON encoding a single object.  Both the blocking client and the
asyncio server speak exactly this; there is no handshake state beyond
the optional ``hello`` op.

Failure discipline mirrors :mod:`repro.fsio`'s torn-tail rule: a frame
that arrives *partially* (sender died mid-write, connection cut between
segments) is indistinguishable from a dropped connection and is treated
as one — :class:`ConnectionTorn` — never as data.  Receivers therefore
can't act on half a request, and every RPC the fabric routes through
this protocol is idempotent, so "did my last frame land?" is always
answered by re-sending it.

Requests are ``{"op": <name>, ...}``; replies are ``{"ok": true, ...}``
or ``{"ok": false, "error": <CODE>, "message": ...}``.  Structured error
codes (:data:`BUSY`, :data:`DRAINING`, :data:`DEADLINE`,
:data:`BAD_REQUEST`) let clients distinguish back-off-and-retry from
give-up.

The ``net.frame.torn_write`` fault point lives here: armed, a sender
writes exactly half the frame bytes and then dies — the chaos suite's
way of proving the torn-frame rule holds on both sides.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.fabric import faultpoints

#: protocol revision, exchanged in ``hello``.
PROTOCOL_VERSION = 1

#: hard bound on one frame's payload: a grid of a few thousand specs
#: fits comfortably; anything larger is a malformed or hostile peer.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

# -- structured error codes ----------------------------------------------------------

#: admission queue full: retry later (``retry_after_s`` says when).
BUSY = "BUSY"
#: server is drain-stopping: finish reads elsewhere, submit nowhere.
DRAINING = "DRAINING"
#: the request's deadline passed before the work could finish.
DEADLINE = "DEADLINE"
#: the peer sent something the protocol cannot honor.
BAD_REQUEST = "BAD_REQUEST"


class ProtocolError(ReproError):
    """The peer spoke something that is not this protocol."""


class ConnectionTorn(ConnectionError):
    """The connection died mid-frame (torn write or cut link).

    Subclasses :class:`ConnectionError` so reconnect loops that already
    catch connection failures handle torn frames for free.
    """


def parse_endpoint(value: str) -> Tuple[str, int]:
    """``"tcp://host:port"`` (or bare ``host:port``) -> ``(host, port)``."""
    text = value.strip()
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ProtocolError(
            f"malformed service endpoint {value!r}: expected tcp://host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ProtocolError(f"malformed service port in {value!r}") from None


def is_endpoint(value: object) -> bool:
    """Does a ``--broker`` argument name a socket endpoint (vs a dir)?"""
    return isinstance(value, str) and value.startswith("tcp://")


def encode_frame(message: Dict[str, object]) -> bytes:
    """One message -> its full on-wire bytes (length prefix included)."""
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds protocol bound")
    return _LEN.pack(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, object]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame body must encode a JSON object")
    return message


def _torn_prefix(data: bytes) -> bytes:
    """The bytes a torn write puts on the wire before the sender dies."""
    return data[: max(1, len(data) // 2)]


# -- blocking (client-side) framing --------------------------------------------------


def send_frame(sock: socket.socket, message: Dict[str, object]) -> None:
    """Write one frame to a connected socket (with the torn-write hook)."""
    data = encode_frame(message)
    if faultpoints.armed("net.frame.torn_write"):
        sock.sendall(_torn_prefix(data))
        faultpoints.trip("net.frame.torn_write")
    sock.sendall(data)


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """``count`` bytes, ``None`` on clean EOF *before* the first byte."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if remaining == count and not chunks:
                return None  # clean EOF at a frame boundary
            raise ConnectionTorn(
                f"peer died mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on orderly EOF between frames.

    A mid-frame EOF raises :class:`ConnectionTorn`; ``socket.timeout``
    propagates to the caller's retry logic untouched.
    """
    header = _recv_exactly(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced an oversized {length}-byte frame")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ConnectionTorn("peer died between frame header and body")
    return _decode_body(body)


# -- asyncio (server-side) framing ---------------------------------------------------


async def write_frame(
    writer: asyncio.StreamWriter, message: Dict[str, object]
) -> None:
    """Async twin of :func:`send_frame`, same torn-write fault hook."""
    data = encode_frame(message)
    if faultpoints.armed("net.frame.torn_write"):
        writer.write(_torn_prefix(data))
        await writer.drain()
        faultpoints.trip("net.frame.torn_write")
    writer.write(data)
    await writer.drain()


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, object]]:
    """Async twin of :func:`recv_frame` (``None`` on orderly EOF)."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ConnectionTorn("peer died mid-frame header") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"peer announced an oversized {length}-byte frame")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionTorn(
            f"peer died mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return _decode_body(body)


# -- reply helpers -------------------------------------------------------------------


def ok(**fields: object) -> Dict[str, object]:
    reply: Dict[str, object] = {"ok": True}
    reply.update(fields)
    return reply


def error(code: str, message: str, **fields: object) -> Dict[str, object]:
    reply: Dict[str, object] = {"ok": False, "error": code, "message": message}
    reply.update(fields)
    return reply
