"""``python -m repro.service``: run the sweep server on a broker dir.

Thin alias for :func:`repro.service.server.main` that avoids runpy's
found-in-sys.modules warning (the package ``__init__`` imports the
server module, so ``-m repro.service.server`` would execute it twice).
"""

import sys

from repro.service.server import main

if __name__ == "__main__":
    sys.exit(main())
