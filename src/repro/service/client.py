"""The reconnecting sweep-service client.

One :class:`ServiceClient` wraps one TCP endpoint with the retry
discipline every RPC of the service protocol is designed for:

* **Jittered capped exponential backoff** — connection failures, torn
  frames, and timeouts back off ``backoff_s * 2^attempt`` (capped),
  multiplied by a seeded jitter factor so a thousand workers losing one
  server do not reconnect in lockstep (the thundering-herd half of the
  ``net.client.reconnect_storm`` fault point).
* **Idempotent retries** — every op the client re-sends after an
  ambiguous failure (reply lost, connection cut mid-RPC) is idempotent
  on the server: submits dedup through the journal's exclusive enqueue,
  outcomes through the broker's idempotent transitions.  A retry can
  waste work; it can never double-enqueue or double-count.
* **Structured flow control** — a :data:`~repro.service.protocol.BUSY`
  or ``DRAINING`` reply is not an error but an instruction: honor
  ``retry_after_s`` (bounded by ``busy_budget_s``) or surface
  :class:`ServiceBusy` so the caller can shed load.
* **Stream resume** — :meth:`stream` tracks the last acked event
  sequence number and resubscribes with ``from_seq`` after a reconnect;
  a server-side ``reset`` (history lost to a restart) is surfaced as an
  event so callers reconcile idempotently by key.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.errors import ReproError
from repro.fabric import faultpoints
from repro.fabric.faultpoints import InjectedFaultError
from repro.service import protocol


class ServiceError(ReproError):
    """The server answered with a structured error reply."""

    def __init__(self, code: str, message: str, reply: Dict[str, object]):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.reply = reply


class ServiceBusy(ServiceError):
    """Admission control rejected the request (``BUSY``/``DRAINING``)."""


class ServiceUnavailable(ReproError):
    """The endpoint stayed unreachable through the whole retry budget."""


class ServiceClient:
    """Blocking client for one ``tcp://host:port`` sweep service."""

    def __init__(
        self,
        address: str,
        timeout_s: float = 5.0,
        retries: int = 5,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        busy_budget_s: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        self.address = address
        self.host, self.port = protocol.parse_endpoint(address)
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        #: total seconds :meth:`call` waits out BUSY replies before
        #: surfacing :class:`ServiceBusy` (0 = surface immediately).
        self.busy_budget_s = busy_budget_s
        self._rng = random.Random(seed)
        self._sock: Optional[socket.socket] = None
        #: reconnects performed since construction (observability).
        self.reconnects = 0

    # -- connection plumbing ---------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        return sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _backoff(self, attempt: int) -> float:
        """Capped exponential with jitter in ``[0.5, 1.0)`` of nominal."""
        nominal = min(self.backoff_cap_s, self.backoff_s * (2 ** attempt))
        return nominal * (0.5 + 0.5 * self._rng.random())

    # -- the RPC funnel --------------------------------------------------------------

    def call(self, op: str, **fields: object) -> Dict[str, object]:
        """One idempotent RPC with the full retry discipline applied."""
        attempt = 0
        busy_spent = 0.0
        last_failure: Optional[BaseException] = None
        while attempt <= self.retries:
            try:
                reply = self._exchange({"op": op, **fields})
            except (ConnectionError, socket.timeout, OSError,
                    protocol.ProtocolError) as exc:
                # covers torn frames (ConnectionTorn is a ConnectionError),
                # refused/reset connections, and half-open timeouts alike
                last_failure = exc
                self.close()
                self.reconnects += 1
                time.sleep(self._backoff(attempt))
                attempt += 1
                continue
            if reply.get("ok"):
                return reply
            code = str(reply.get("error", "UNKNOWN"))
            message = str(reply.get("message", ""))
            if code in (protocol.BUSY, protocol.DRAINING):
                retry_after = float(reply.get("retry_after_s", 0.5) or 0.5)
                if busy_spent + retry_after > self.busy_budget_s:
                    raise ServiceBusy(code, message, reply)
                busy_spent += retry_after
                time.sleep(retry_after)
                continue  # flow control does not consume failure budget
            raise ServiceError(code, message, reply)
        raise ServiceUnavailable(
            f"{self.address} unreachable after {self.retries + 1} attempts "
            f"({type(last_failure).__name__ if last_failure else 'timeout'}: "
            f"{last_failure})"
        )

    def _exchange(self, request: Dict[str, object]) -> Dict[str, object]:
        sock = self._connect()
        protocol.send_frame(sock, request)
        reply = protocol.recv_frame(sock)
        if reply is None:
            raise protocol.ConnectionTorn("server closed before replying")
        if faultpoints.armed("net.client.reconnect_storm"):
            # flapping link: tear the connection down right after a
            # successful exchange; the next call reconnects from scratch
            try:
                faultpoints.trip("net.client.reconnect_storm")
            except InjectedFaultError:
                self.close()
                self.reconnects += 1
        return reply

    # -- client surface --------------------------------------------------------------

    def hello(self) -> Dict[str, object]:
        return self.call("hello")

    def submit(
        self,
        specs: Sequence,
        deadline_s: Optional[float] = None,
        retry_dead: bool = False,
    ) -> Dict[str, object]:
        """Submit a RunSpec grid; returns the submit report reply.

        ``specs`` may be RunSpec-shaped objects (``to_json_dict()``) or
        pre-serialized dicts.  Retrying after an ambiguous failure is
        safe: the journal's exclusive enqueue makes resubmission a
        no-op, which the report reflects as ``inflight``/``done``
        instead of ``enqueued``.
        """
        payload = [
            spec if isinstance(spec, dict) else spec.to_json_dict()
            for spec in specs
        ]
        fields: Dict[str, object] = {"specs": payload, "retry_dead": retry_dead}
        if deadline_s is not None:
            fields["deadline_s"] = deadline_s
        return self.call("submit", **fields)

    def status(self, keys: Optional[Sequence[str]] = None) -> Dict[str, object]:
        fields = {"keys": list(keys)} if keys is not None else {}
        return self.call("status", **fields)

    def counts(self, keys: Optional[Sequence[str]] = None) -> Dict[str, int]:
        fields = {"keys": list(keys)} if keys is not None else {}
        return self.call("counts", **fields)["counts"]  # type: ignore[return-value]

    def drained(self, keys: Optional[Sequence[str]] = None) -> bool:
        fields = {"keys": list(keys)} if keys is not None else {}
        return bool(self.call("drained", **fields)["drained"])

    # -- progress streaming ----------------------------------------------------------

    def stream(
        self,
        keys: Optional[Sequence[str]] = None,
        grid_id: Optional[str] = None,
        from_seq: int = 0,
        reconnect_attempts: int = 8,
    ) -> Iterator[Dict[str, object]]:
        """Yield a grid's progress events until it drains.

        Auto-reconnects: a cut stream resubscribes with ``from_seq`` =
        last acked sequence number + 1, so no event is yielded twice and
        none is skipped.  When the server's event log no longer reaches
        back that far (restart), a ``{"type": "reset", ...}`` event is
        yielded first and numbering restarts where the server says.
        """
        last_seq = from_seq - 1
        known_grid = grid_id
        failures = 0
        while True:
            try:
                sub_fields: Dict[str, object] = {"from_seq": last_seq + 1}
                if known_grid is not None:
                    sub_fields["grid_id"] = known_grid
                if keys is not None:
                    sub_fields["keys"] = list(keys)
                sock = self._connect()
                protocol.send_frame(sock, {"op": "subscribe", **sub_fields})
                ack = protocol.recv_frame(sock)
                if ack is None:
                    raise protocol.ConnectionTorn("no subscribe ack")
                if not ack.get("ok"):
                    raise ServiceError(
                        str(ack.get("error", "UNKNOWN")),
                        str(ack.get("message", "")), ack,
                    )
                known_grid = str(ack.get("grid_id", known_grid or ""))
                failures = 0  # a fresh ack proves the server is healthy
                while True:
                    frame = protocol.recv_frame(sock)
                    if frame is None:
                        raise protocol.ConnectionTorn("stream cut")
                    if frame.get("stream_end"):
                        return
                    if frame.get("reset"):
                        last_seq = int(frame.get("next_seq", 0)) - 1
                        yield {
                            "type": "reset",
                            "counts": frame.get("counts"),
                        }
                        continue
                    event = frame.get("event")
                    seq = frame.get("seq")
                    if not isinstance(event, dict) or not isinstance(seq, int):
                        continue  # not a stream frame for us
                    if seq <= last_seq:
                        continue  # replayed overlap: already acked
                    last_seq = seq
                    failures = 0
                    yield event
            except (ConnectionError, socket.timeout, OSError,
                    protocol.ProtocolError) as exc:
                self.close()
                self.reconnects += 1
                failures += 1
                if failures > reconnect_attempts:
                    raise ServiceUnavailable(
                        f"stream to {self.address} kept dying: {exc}"
                    ) from exc
                time.sleep(self._backoff(failures - 1))

    def watch(
        self,
        keys: Sequence[str],
        on_event: Optional[Callable[[Dict[str, object]], None]] = None,
        **stream_kwargs,
    ) -> Dict[str, int]:
        """Stream until drained; returns the final counts tally."""
        final: Dict[str, int] = {}
        for event in self.stream(keys=keys, **stream_kwargs):
            if on_event is not None:
                on_event(event)
            if event.get("type") == "drained":
                counts = event.get("counts")
                if isinstance(counts, dict):
                    final = counts  # type: ignore[assignment]
        return final or self.counts(keys)

    def __repr__(self) -> str:
        return (
            f"ServiceClient({self.address!r}, reconnects={self.reconnects})"
        )
