"""CLI entry point: ``python -m repro.perf``.

Runs the hot-path microbenchmarks, prints a summary table, and writes
``BENCH_hotpath.json``.  ``--check`` additionally asserts the
machine-independent speedup floors that CI's perf-smoke job relies on.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.perf.benches import BENCHES, run_benches
from repro.perf.calibrate import calibrate

#: machine-independent floors for --check: the indexed/cached paths must
#: beat their in-process legacy counterparts by at least this ratio.
#: Deliberately far below the typical 2-4x so CI noise cannot trip them.
CHECK_FLOORS = {"epoch_fastforward": 1.5, "frfcfs": 1.3, "route_lookup": 1.3}

SCHEMA = "repro.perf/1"


def build_report(quick: bool, only: List[str]) -> Dict[str, object]:
    """Run calibration + benchmarks and assemble the JSON report."""
    calibration = calibrate()
    benches = run_benches(quick=quick, only=only or None)
    cal_ops = calibration["ops_per_sec"]
    for bench in benches:
        bench["normalized"] = bench["ops_per_sec"] / cal_ops if cal_ops else 0.0
    speedups = {
        bench["name"]: bench["speedup"] for bench in benches if "speedup" in bench
    }
    return {
        "schema": SCHEMA,
        "quick": quick,
        "calibration": calibration,
        "benches": benches,
        "speedups": speedups,
    }


def check_floors(report: Dict[str, object]) -> List[str]:
    """Return failure messages for any speedup floor not met."""
    failures = []
    speedups = report["speedups"]
    for name, floor in CHECK_FLOORS.items():
        got = speedups.get(name)
        if got is None:
            failures.append(f"{name}: no speedup measured (bench not run?)")
        elif got < floor:
            failures.append(f"{name}: speedup {got:.2f}x below floor {floor}x")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description="hot-path microbenchmarks"
    )
    parser.add_argument(
        "--quick", action="store_true", help="small sizes (CI smoke / laptops)"
    )
    parser.add_argument(
        "--out", default="BENCH_hotpath.json", help="report path (default: %(default)s)"
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(BENCHES),
        help="run only this benchmark (repeatable)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the recorded speedup floors are met",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick, only=args.bench or [])
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"calibration: {report['calibration']['ops_per_sec'] / 1e6:.2f} Mops/s")
    for bench in report["benches"]:
        line = (
            f"{bench['name']:>18}: {bench['ops_per_sec']:>12,.0f} ops/s"
            f"  ({bench['wall_s']:.3f}s)"
        )
        if "speedup" in bench:
            line += f"  speedup {bench['speedup']:.2f}x"
        print(line)
    print(f"wrote {args.out}")

    if args.check:
        failures = check_floors(report)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(f"checks passed: {CHECK_FLOORS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
