"""The individual hot-path microbenchmarks.

Each benchmark returns ``{"name", "ops", "wall_s", "ops_per_sec"}`` plus
benchmark-specific extras.  The FR-FCFS and route-lookup benches also run
the *pre-refactor* implementation — the controller's ``legacy_scan`` flag
and a faithful re-implementation of the old per-call route computation —
so the report carries in-PR speedup ratios that CI can assert without a
recorded machine-specific baseline.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional

from repro.dram import DDR4_2400_LRDIMM, DRAMModule, FRFCFSController
from repro.interconnect.network import PacketNetwork
from repro.interconnect.topology import Topology
from repro.sim import BandwidthResource, Simulator, StatRegistry

Bench = Callable[[bool], Dict[str, object]]


def _result(name: str, ops: int, wall_s: float, **extra: object) -> Dict[str, object]:
    out: Dict[str, object] = {
        "name": name,
        "ops": ops,
        "wall_s": wall_s,
        "ops_per_sec": ops / wall_s if wall_s > 0 else 0.0,
    }
    out.update(extra)
    return out


# -- engine ------------------------------------------------------------------------


def bench_engine_churn(quick: bool) -> Dict[str, object]:
    """Raw event-loop throughput: timeout-driven ping-pong processes."""
    n = 30_000 if quick else 300_000
    sim = Simulator()

    def churn(delay: int, count: int):
        for _ in range(count):
            yield delay

    for lane, delay in enumerate((7, 11, 13, 17)):
        sim.process(churn(delay, n // 4), name=f"churn{lane}")
    start = time.perf_counter()
    sim.run()
    return _result("engine_churn", n, time.perf_counter() - start)


# -- FR-FCFS -----------------------------------------------------------------------


def _frfcfs_run(legacy: bool, n: int, window: int) -> float:
    """Wall time for one deep-queue FR-FCFS drain (fixed seed)."""
    sim = Simulator()
    module = DRAMModule(sim, DDR4_2400_LRDIMM, 4, StatRegistry())
    controller = FRFCFSController(
        sim, module, reorder_window=window, legacy_scan=legacy
    )
    rng = random.Random(11)
    timing = DDR4_2400_LRDIMM
    hot_stride = timing.row_bytes * timing.banks_per_rank
    span = 4 * timing.banks_per_rank * 256 * timing.row_bytes // 64
    # deep queue, miss-heavy: the shape where scheduling cost dominates
    for _ in range(n):
        if rng.random() < 0.2:
            offset = rng.choice((0, 3, 11)) * hot_stride + rng.randrange(
                0, timing.row_bytes // 64
            ) * 64
        else:
            offset = rng.randrange(0, span) * 64
        controller.submit(offset, 64, rng.random() < 0.3)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def bench_frfcfs(quick: bool) -> Dict[str, object]:
    """Indexed FR-FCFS drain rate, with the legacy window scan for scale."""
    n = 4_000 if quick else 20_000
    window = 256
    legacy_s = _frfcfs_run(legacy=True, n=n, window=window)
    indexed_s = _frfcfs_run(legacy=False, n=n, window=window)
    return _result(
        "frfcfs",
        n,
        indexed_s,
        window=window,
        legacy_wall_s=legacy_s,
        legacy_ops_per_sec=n / legacy_s if legacy_s > 0 else 0.0,
        speedup=legacy_s / indexed_s if indexed_s > 0 else 0.0,
    )


# -- epoch fast-forward ------------------------------------------------------------


def _grant_storm_drain(legacy: bool, links: int, per_link: int) -> float:
    """Wall time to drain a deep grant storm under the selected run loop.

    ``links`` serialising bandwidth resources each carry ``per_link``
    queued transfers whose completion timers are all armed up front: the
    legacy loop pays one pop from a ``links * per_link``-deep heap per
    grant, while the epoch loop bulk-expires whole countdown-queue slices
    per horizon.  Only the drain is timed — submission cost is common to
    both modes and would dilute the ratio being measured.
    """
    sim = Simulator(legacy=legacy)
    resources = [
        BandwidthResource(sim, 25.0, latency_ps=2_000_000, name=f"link{i}")
        for i in range(links)
    ]
    for _ in range(per_link):
        for resource in resources:
            resource.transfer(64)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


def bench_epoch_fastforward(quick: bool) -> Dict[str, object]:
    """Epoch-synchronized drain rate vs the legacy one-pop-per-event loop.

    Best of five interleaved repeats per mode: drain wall times are small
    enough that one scheduler hiccup would otherwise swing the ratio, and
    the minimum is the standard low-noise estimator for microbenchmarks.
    """
    links = 64 if quick else 192
    per_link = 500 if quick else 400
    n = links * per_link
    epoch_times: List[float] = []
    legacy_times: List[float] = []
    for _ in range(5):
        epoch_times.append(_grant_storm_drain(False, links, per_link))
        legacy_times.append(_grant_storm_drain(True, links, per_link))
    epoch_s = min(epoch_times)
    legacy_s = min(legacy_times)
    return _result(
        "epoch_fastforward",
        n,
        epoch_s,
        links=links,
        per_link=per_link,
        legacy_wall_s=legacy_s,
        legacy_ops_per_sec=n / legacy_s if legacy_s > 0 else 0.0,
        speedup=legacy_s / epoch_s if epoch_s > 0 else 0.0,
    )


# -- routing -----------------------------------------------------------------------


def _legacy_route_lookup(topo: Topology, src: int, dst: int) -> int:
    """The pre-refactor lookup: per-call chain walk + per-call edge set."""
    path = [src]
    node = src
    while node != dst:
        node = topo.next_hop(node, dst)
        path.append(node)
    hops = 0
    for a, b in zip(path, path[1:]):
        key = (a, b) if a < b else (b, a)
        if key in set(topo.edges):  # the old _edge_set() built this per call
            hops += 1
    return hops


def bench_route_lookup(quick: bool) -> Dict[str, object]:
    """Cached path/hops/edge_key lookups vs the pre-refactor computation."""
    rounds = 30 if quick else 300
    topo = Topology("mesh", 16)
    pairs = [(a, b) for a in range(topo.n) for b in range(topo.n) if a != b]
    n = rounds * len(pairs)

    start = time.perf_counter()
    total = 0
    for _ in range(rounds):
        for a, b in pairs:
            path = topo.path(a, b)
            total += topo.hops(a, b)
            total += len(topo.edge_key(path[0], path[1]))
    cached_s = time.perf_counter() - start

    start = time.perf_counter()
    legacy_total = 0
    for _ in range(rounds):
        for a, b in pairs:
            legacy_total += _legacy_route_lookup(topo, a, b)
    legacy_s = time.perf_counter() - start

    return _result(
        "route_lookup",
        n,
        cached_s,
        checksum=total,
        legacy_wall_s=legacy_s,
        legacy_ops_per_sec=n / legacy_s if legacy_s > 0 else 0.0,
        speedup=legacy_s / cached_s if cached_s > 0 else 0.0,
    )


# -- network -----------------------------------------------------------------------


def _make_network(sim: Simulator, topo: Topology) -> PacketNetwork:
    return PacketNetwork(
        sim,
        topo,
        bandwidth_gbps=25.0,
        hop_latency_ps=10_000,
        wire_latency_ps=5_000,
        stats=StatRegistry(),
        name="bench",
    )


def bench_network_p2p(quick: bool) -> Dict[str, object]:
    """Store-and-forward point-to-point packets over a 4x4 mesh."""
    n = 1_500 if quick else 10_000
    sim = Simulator()
    topo = Topology("mesh", 16)
    net = _make_network(sim, topo)
    rng = random.Random(7)
    pairs = [(a, b) for a in range(topo.n) for b in range(topo.n) if a != b]

    def driver():
        for i in range(n):
            src, dst = pairs[rng.randrange(len(pairs))]
            yield net.send(src, dst, 256)

    sim.process(driver(), name="p2p")
    start = time.perf_counter()
    sim.run()
    return _result("network_p2p", n, time.perf_counter() - start)


def bench_network_broadcast(quick: bool) -> Dict[str, object]:
    """Pipelined whole-group floods from rotating roots."""
    n = 300 if quick else 2_000
    sim = Simulator()
    topo = Topology("mesh", 16)
    net = _make_network(sim, topo)

    def driver():
        for i in range(n):
            yield net.broadcast(i % topo.n, 1024)

    sim.process(driver(), name="bc")
    start = time.perf_counter()
    sim.run()
    return _result("network_broadcast", n, time.perf_counter() - start)


# -- end to end --------------------------------------------------------------------


def bench_headline_tiny(quick: bool) -> Dict[str, object]:
    """One full tiny-size DIMM-Link experiment through the runner."""
    # imported here: the experiments layer pulls in the whole stack
    from repro.experiments.runner import RunSpec, execute_spec

    spec = RunSpec(
        config="4D-2C", workload="pagerank", size="tiny", mechanism="dimm_link"
    )
    start = time.perf_counter()
    result = execute_spec(spec)
    wall = time.perf_counter() - start
    return _result("headline_tiny", 1, wall, simulated_ps=result.time_ps)


BENCHES: Dict[str, Bench] = {
    "engine_churn": bench_engine_churn,
    "epoch_fastforward": bench_epoch_fastforward,
    "frfcfs": bench_frfcfs,
    "route_lookup": bench_route_lookup,
    "network_p2p": bench_network_p2p,
    "network_broadcast": bench_network_broadcast,
    "headline_tiny": bench_headline_tiny,
}


def run_benches(
    quick: bool = False, only: Optional[List[str]] = None
) -> List[Dict[str, object]]:
    """Run the selected benchmarks in declaration order."""
    names = list(BENCHES) if not only else list(only)
    results = []
    for name in names:
        results.append(BENCHES[name](quick))
    return results
