"""Hot-path microbenchmark harness (``python -m repro.perf``).

Measures the simulator's performance-critical inner loops — event-queue
churn, FR-FCFS scheduling, route lookups, packet delivery, and one
end-to-end tiny experiment — and writes ``BENCH_hotpath.json``.  Raw
ops/sec are machine-dependent, so every report also carries a
calibration score (a fixed pure-Python loop timed on the same machine)
and *normalized* throughput; the indexed-vs-legacy speedup ratios are
machine-independent and are what CI's perf-smoke job asserts against.
"""

from repro.perf.benches import BENCHES, run_benches
from repro.perf.calibrate import calibrate

__all__ = ["BENCHES", "run_benches", "calibrate"]
