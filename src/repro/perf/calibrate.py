"""Machine-speed calibration for the perf harness.

Benchmark numbers from different machines (or the same machine under
load) are not directly comparable.  The harness therefore times a fixed
pure-Python workload — dict/heap/arithmetic operations shaped like the
simulator's own inner loops — and reports every benchmark's throughput
both raw and divided by this calibration score.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict

#: operations per calibration round (kept fixed forever: changing it
#: invalidates cross-run normalized comparisons).
ROUND_OPS = 50_000


def _calibration_round() -> int:
    """One fixed unit of simulator-shaped work; returns a checksum."""
    heap: list = []
    push = heapq.heappush
    pop = heapq.heappop
    table: Dict[int, int] = {}
    acc = 0
    for i in range(ROUND_OPS):
        push(heap, ((i * 2654435761) & 0xFFFF, i))
        table[i & 1023] = acc
        acc += table.get((i * 7) & 1023, 0) & 0xFFFF
        if i & 1:
            acc ^= pop(heap)[0]
    return acc


def calibrate(min_seconds: float = 0.2) -> Dict[str, float]:
    """Time calibration rounds for at least ``min_seconds``.

    Returns ``{"ops_per_sec": ..., "wall_s": ..., "rounds": ...}``.
    """
    _calibration_round()  # warm-up (bytecode caches, allocator)
    rounds = 0
    start = time.perf_counter()
    while True:
        _calibration_round()
        rounds += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            break
    return {
        "ops_per_sec": rounds * ROUND_OPS / elapsed,
        "wall_s": elapsed,
        "rounds": rounds,
    }
