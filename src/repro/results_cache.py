"""Persistent on-disk cache of finished simulation results.

The sweep runner (:mod:`repro.experiments.runner`) memoises every
simulation it executes: a :class:`~repro.experiments.runner.RunSpec`
hashes to a stable content key, and the :class:`ResultsCache` maps that
key to the serialized :class:`~repro.nmp.results.RunResult` on disk.

Soundness rests on three properties, each enforced by tests:

* **Determinism** — the simulator is bit-deterministic, so re-running a
  spec always reproduces the cached result (``tests/test_determinism.py``).
* **Content keying** — the key covers every field of the spec *and* a
  code version (:data:`CODE_VERSION`); bump the version whenever a change
  alters simulation semantics, and every stale entry becomes a miss.
* **Crash safety** — entries are written to a temp file, fsync'd, and
  atomically renamed into place (:func:`repro.fsio.atomic_write_text`),
  so a killed run never leaves a truncated entry that would later be
  served; corrupt entries degrade to misses and are **quarantined** into
  ``<cache_dir>/corrupt/`` so the bad bytes are kept for post-mortem but
  never re-parsed on every lookup.

The atomic same-content overwrite is also what makes ``put`` idempotent,
which the distributed fabric (:mod:`repro.fabric`) leans on: two workers
publishing the same key race to identical content, so at-least-once
execution still yields exactly-once results.

Layout: one ``<key>.json`` file per entry under the cache directory,
where ``<key>`` is the spec's SHA-256 content hash.  Each file carries
the spec it answers for (debuggability) next to the result payload.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.fsio import atomic_write_text
from repro.nmp.results import RunResult

#: bump whenever a change alters simulation semantics (timing models,
#: stat names, workload generation, ...): every existing cache entry
#: then misses and is transparently recomputed.
#: v2: ``link_down_schedule`` kills at least one link per group whenever
#: ``fault_fraction`` is nonzero (previously rounded down to none on
#: tiny topologies).
CODE_VERSION = 2


class ResultsCache:
    """Maps content keys to :class:`RunResult` JSON files on disk."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: entries served from disk since construction.
        self.hits = 0
        #: lookups that found no (readable) entry.
        self.misses = 0
        #: corrupt entries moved to ``corrupt/`` since construction.
        self.corrupt = 0

    def path_for(self, key: str) -> Path:
        """The entry file a key maps to."""
        return self.cache_dir / f"{key}.json"

    @property
    def corrupt_dir(self) -> Path:
        """Where quarantined (unparsable/mismatched) entries end up."""
        return self.cache_dir / "corrupt"

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        Any unreadable entry — truncated, corrupt JSON, or a payload
        that no longer matches the schema — counts as a miss; the entry
        file is moved to ``corrupt/`` (kept for post-mortem, never
        re-parsed on later lookups) and the caller re-simulates.  So is
        any entry whose *stored* ``key`` or ``code_version`` disagrees
        with the key it was looked up under and the current
        :data:`CODE_VERSION`: a hand-renamed, copied, or edited entry
        would otherwise answer for a spec it never simulated.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1  # plain miss: nothing on disk to blame
            return None
        try:
            payload = json.loads(text)
            if payload["key"] != key or payload["code_version"] != CODE_VERSION:
                raise ValueError("cache entry does not match its filename key")
            result = RunResult.from_json_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is never parsed again."""
        try:
            self.corrupt_dir.mkdir(exist_ok=True)
            os.replace(path, self.corrupt_dir / path.name)
            self.corrupt += 1
        except OSError:
            pass  # e.g. raced with a concurrent writer replacing the entry

    def put(self, key: str, result: RunResult, spec: Optional[Dict[str, object]] = None) -> Path:
        """Persist a result under ``key`` (atomic fsync'd write-then-rename)."""
        payload = {
            "key": key,
            "code_version": CODE_VERSION,
            "spec": spec,
            "result": result.to_json_dict(),
        }
        return atomic_write_text(
            self.path_for(key), json.dumps(payload, sort_keys=True)
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.cache_dir.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def __repr__(self) -> str:
        return (
            f"ResultsCache({str(self.cache_dir)!r}, {len(self)} entries, "
            f"hits={self.hits}, misses={self.misses}, corrupt={self.corrupt})"
        )
