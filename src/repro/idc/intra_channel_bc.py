"""Intra-channel broadcast IDC (ABC-DIMM [76], Table I column 3).

ABC-DIMM exploits the multi-drop structure of a memory channel: a single
host-issued broadcast-read delivers data to every DIMM on the source
channel simultaneously, and a broadcast-write per destination channel
reaches all of that channel's DIMMs at once.  Point-to-point transfers and
inter-channel hops still use CPU forwarding, so this mechanism subclasses
:class:`~repro.idc.cpu_forwarding.CPUForwardingIDC` and overrides only
the broadcast path.
"""

from __future__ import annotations

from repro.idc.cpu_forwarding import CPUForwardingIDC
from repro.protocol.packet import wire_bytes_for_transfer
from repro.sim.engine import AllOf, SimEvent
from repro.sim.time import ns


class IntraChannelBroadcastIDC(CPUForwardingIDC):
    """ABC-DIMM-style channel-wise broadcast over CPU forwarding."""

    name = "abc"

    def broadcast(self, src_dimm, offset, nbytes) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="abc.bc")
        config = system.config
        wire = wire_bytes_for_transfer(nbytes)
        src_channel_id = config.channel_of(src_dimm)

        def proc():
            # the host issues the customized broadcast-read command
            yield system.polling.notice(src_dimm)
            src_channel = system.channels[src_channel_id]
            # one broadcast-read: host AND the source channel's other DIMMs
            # all receive the data simultaneously
            yield src_channel.transfer(wire, kind="fwd")
            yield ns(config.host.forward_latency_ns)

            def same_channel_store(dst):
                yield system.dimms[dst].mc.local_access(offset, nbytes, True)
                self.stats.add("idc.channel_bc_bytes", nbytes)

            def other_channel(channel_id):
                # the host copies the payload once per destination channel
                yield system.forwarder.engine.transfer(wire)
                channel = system.channels[channel_id]
                # one broadcast-write serves every DIMM of the channel
                yield channel.transfer(wire, kind="fwd")
                stores = [
                    system.dimms[dst].mc.local_access(offset, nbytes, True)
                    for dst in config.dimms_on_channel(channel_id)
                ]
                self.stats.add(
                    "idc.forwarded_bytes", nbytes * len(config.dimms_on_channel(channel_id))
                )
                yield AllOf(stores)

            branches = [
                self.sim.process(same_channel_store(dst), name="abc.bc.local")
                for dst in config.dimms_on_channel(src_channel_id)
                if dst != src_dimm
            ]
            branches.extend(
                self.sim.process(other_channel(ch), name="abc.bc.fwd")
                for ch in range(config.num_channels)
                if ch != src_channel_id
            )
            yield AllOf(branches)
            self.stats.add("idc.broadcast_ops")
            done.succeed(nbytes)

        self.sim.process(proc(), name="abc.bc")
        return done
