"""Common interface for inter-DIMM communication (IDC) mechanisms.

The four mechanisms the paper compares (Table I) — CPU-forwarding (MCN),
dedicated bus (AIM), intra-channel broadcast (ABC-DIMM), and DIMM-Link —
all implement :class:`IDCMechanism`.  An NMP system is built around exactly
one mechanism; NMP cores issue remote reads/writes/broadcasts/messages
through it, and the mechanism decides which media (DL links, memory
channels, dedicated bus, host forwarding) the transaction crosses.

Traffic classification counters (used by Fig. 11):

* ``idc.local_bytes`` — served by the local DRAM (counted by the local MC),
* ``idc.link_bytes`` — moved over DIMM-Link / dedicated media,
* ``idc.forwarded_bytes`` — moved through the host CPU.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.sim.engine import SimEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nmp.system import NMPSystem


class IDCMechanism(abc.ABC):
    """Abstract inter-DIMM transport used by one NMP system."""

    #: short mechanism name used in reports ("mcn", "aim", "abc", "dimm_link").
    name: str = "abstract"

    def __init__(self) -> None:
        self.system: "NMPSystem | None" = None

    def attach(self, system: "NMPSystem") -> None:
        """Bind the mechanism to a built system (wires media and stats)."""
        self.system = system

    def _require_system(self) -> "NMPSystem":
        if self.system is None:
            raise RuntimeError(f"{self.name}: mechanism not attached to a system")
        return self.system

    def trace_op(self, done: SimEvent, op: str, **args) -> None:
        """Record an ``idc``-category span from now until ``done`` fires.

        A no-op unless the system's simulator carries an enabled trace
        recorder, so mechanisms can call this unconditionally.
        """
        trace = self._require_system().sim.trace
        if not trace.enabled:
            return
        span = trace.begin("idc", op, f"idc.{self.name}", **args)
        done.add_callback(lambda ev: trace.end(span, failed=ev.failed))

    @abc.abstractmethod
    def remote_read(
        self, src_dimm: int, dst_dimm: int, offset: int, nbytes: int
    ) -> SimEvent:
        """Read ``nbytes`` at ``offset`` of ``dst_dimm`` into ``src_dimm``.

        The returned event fires when the data has arrived at the source
        DIMM (including the destination DRAM access).
        """

    @abc.abstractmethod
    def remote_write(
        self, src_dimm: int, dst_dimm: int, offset: int, nbytes: int
    ) -> SimEvent:
        """Write ``nbytes`` from ``src_dimm`` into ``dst_dimm``'s DRAM."""

    @abc.abstractmethod
    def broadcast(self, src_dimm: int, offset: int, nbytes: int) -> SimEvent:
        """Broadcast ``nbytes`` from ``src_dimm`` to every other DIMM.

        Fires when the last DIMM has received the data.
        """

    @abc.abstractmethod
    def message(
        self, src_dimm: int, dst_dimm: int, nbytes: int, expected: bool = False
    ) -> SimEvent:
        """Deliver a small control message (no DRAM access at either end).

        ``expected=True`` marks a message the host is already waiting for
        (e.g. a barrier release right after it forwarded the matching
        arrival), skipping the polling-notice delay on forwarded paths.
        """

    def hop_distance(self, src_dimm: int, dst_dimm: int) -> float:
        """Relative communication distance used by distance-aware mapping.

        Mechanisms without a locality notion return a flat metric.
        """
        return 0.0 if src_dimm == dst_dimm else 1.0

    def finalize_stats(self) -> None:
        """Flush end-of-run statistics (called once after the event loop).

        Mechanisms with degradable media (DIMM-Link's bridge links) record
        per-link availability here; others have nothing to flush.
        """
