"""Dedicated-bus IDC (AIM [11], Table I column 4).

All DIMMs share one extra multi-drop bus; NMP cores transfer data on it
without host involvement.  The bus's bandwidth matches a memory channel
(Sec. V-B), so per-DIMM bandwidth shrinks as β / #DIMM under contention —
the unscalability the paper highlights.  Broadcast is a single bus
transfer that every DIMM snoops (AIM-BC in Fig. 12).
"""

from __future__ import annotations

from repro.idc.base import IDCMechanism
from repro.protocol.packet import FLIT_BYTES, wire_bytes_for_transfer
from repro.sim.engine import AllOf, SimEvent
from repro.sim.resource import BandwidthResource
from repro.sim.time import ns

#: wire size of a snooped command packet.
CONTROL_WIRE_BYTES = FLIT_BYTES


class DedicatedBusIDC(IDCMechanism):
    """AIM-style dedicated inter-DIMM bus."""

    name = "aim"

    def attach(self, system) -> None:
        super().attach(system)
        self.sim = system.sim
        self.stats = system.stats
        channel = system.config.channel
        self.bus = BandwidthResource(
            system.sim,
            bytes_per_ns=channel.bandwidth_gbps,
            latency_ps=ns(channel.bus_latency_ns),
            name="aim.bus",
        )

    def _bus_transfer(self, wire_bytes: int) -> SimEvent:
        self.stats.add("idc.dedicated_bus_bytes", wire_bytes)
        return self.bus.transfer(wire_bytes)

    def remote_read(self, src_dimm, dst_dimm, offset, nbytes) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="aim.read")

        def proc():
            # the read command is broadcast; the owner snoops and replies
            yield self._bus_transfer(CONTROL_WIRE_BYTES)
            yield system.dimms[dst_dimm].mc.local_access(offset, nbytes, False)
            yield self._bus_transfer(wire_bytes_for_transfer(nbytes))
            self.stats.add("idc.bus_payload_bytes", nbytes)
            done.succeed(nbytes)

        self.sim.process(proc(), name="aim.read")
        return done

    def remote_write(self, src_dimm, dst_dimm, offset, nbytes) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="aim.write")

        def proc():
            yield self._bus_transfer(wire_bytes_for_transfer(nbytes))
            yield system.dimms[dst_dimm].mc.local_access(offset, nbytes, True)
            self.stats.add("idc.bus_payload_bytes", nbytes)
            done.succeed(nbytes)

        self.sim.process(proc(), name="aim.write")
        return done

    def broadcast(self, src_dimm, offset, nbytes) -> SimEvent:
        """AIM-BC: one bus transfer reaches every snooping DIMM."""
        system = self._require_system()
        done = self.sim.event(name="aim.bc")

        def proc():
            yield self._bus_transfer(wire_bytes_for_transfer(nbytes))
            writes = [
                system.dimms[dst].mc.local_access(offset, nbytes, True)
                for dst in range(system.config.num_dimms)
                if dst != src_dimm
            ]
            self.stats.add(
                "idc.bus_payload_bytes", nbytes * (system.config.num_dimms - 1)
            )
            yield AllOf(writes)
            self.stats.add("idc.broadcast_ops")
            done.succeed(nbytes)

        self.sim.process(proc(), name="aim.bc")
        return done

    def message(self, src_dimm, dst_dimm, nbytes, expected: bool = False) -> SimEvent:
        done = self.sim.event(name="aim.msg")

        def proc():
            yield self._bus_transfer(CONTROL_WIRE_BYTES)
            self.stats.add("idc.messages")
            done.succeed(nbytes)

        self.sim.process(proc(), name="aim.msg")
        return done
