"""IDC mechanisms: the four inter-DIMM transports of Table I."""

from typing import Dict, Type

from repro.errors import ConfigError
from repro.idc.analytic import BandwidthModel, num_links, peak_bandwidth, per_dimm_bandwidth
from repro.idc.base import IDCMechanism
from repro.idc.cpu_forwarding import CPUForwardingIDC
from repro.idc.dedicated_bus import DedicatedBusIDC
from repro.idc.intra_channel_bc import IntraChannelBroadcastIDC


def _dimm_link_cls() -> Type[IDCMechanism]:
    from repro.core.dimmlink import DIMMLinkIDC

    return DIMMLinkIDC


def mechanism_names() -> tuple:
    """Registered mechanism names."""
    return ("mcn", "aim", "abc", "dimm_link")


def make_mechanism(name: str) -> IDCMechanism:
    """Instantiate an IDC mechanism by name."""
    table: Dict[str, Type[IDCMechanism]] = {
        "mcn": CPUForwardingIDC,
        "aim": DedicatedBusIDC,
        "abc": IntraChannelBroadcastIDC,
    }
    if name == "dimm_link":
        return _dimm_link_cls()()
    try:
        return table[name]()
    except KeyError:
        raise ConfigError(
            f"unknown IDC mechanism {name!r}; choose from {mechanism_names()}"
        ) from None


__all__ = [
    "BandwidthModel",
    "IDCMechanism",
    "CPUForwardingIDC",
    "DedicatedBusIDC",
    "IntraChannelBroadcastIDC",
    "make_mechanism",
    "mechanism_names",
    "num_links",
    "peak_bandwidth",
    "per_dimm_bandwidth",
]
