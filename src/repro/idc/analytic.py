"""Analytic peak-bandwidth model of IDC methods (Table I).

The paper's Table I states the theoretical maximum IDC bandwidth of each
method in terms of the per-channel bandwidth β:

* CPU-forwarding: ``#Channel x β / 2`` (every byte crosses two channels),
* intra-channel broadcast: ``#DIMM x β`` (each channel's bus delivers β to
  all of its DIMMs simultaneously),
* dedicated bus: ``β`` (one shared multi-drop bus),
* DIMM-Link: ``#Link x β_link`` (adjacent links carry traffic concurrently).

These closed forms are used by the Table I experiment and as sanity
oracles for the event-driven models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import SystemConfig


@dataclass(frozen=True)
class BandwidthModel:
    """Peak aggregate IDC bandwidth (GB/s) per mechanism for one config."""

    cpu_forwarding: float
    intra_channel_broadcast: float
    dedicated_bus: float
    dimm_link: float

    def as_dict(self) -> Dict[str, float]:
        """Mechanism name -> GB/s."""
        return {
            "cpu_forwarding": self.cpu_forwarding,
            "intra_channel_broadcast": self.intra_channel_broadcast,
            "dedicated_bus": self.dedicated_bus,
            "dimm_link": self.dimm_link,
        }


def num_links(config: SystemConfig) -> int:
    """Bidirectional DL links in the system (chain edges per group)."""
    return sum(max(0, len(group) - 1) for group in config.groups)


def peak_bandwidth(config: SystemConfig) -> BandwidthModel:
    """Evaluate Table I's formulas for a system configuration."""
    beta = config.channel.bandwidth_gbps
    return BandwidthModel(
        cpu_forwarding=config.num_channels * beta / 2,
        intra_channel_broadcast=config.num_dimms * beta,
        dedicated_bus=beta,
        dimm_link=num_links(config) * config.link.bandwidth_gbps,
    )


def per_dimm_bandwidth(config: SystemConfig) -> Dict[str, float]:
    """Per-DIMM share of each method's peak bandwidth (GB/s)."""
    peak = peak_bandwidth(config)
    n = config.num_dimms
    return {
        "cpu_forwarding": peak.cpu_forwarding / n,
        "intra_channel_broadcast": peak.intra_channel_broadcast / n,
        "dedicated_bus": peak.dedicated_bus / n,
        "dimm_link": peak.dimm_link / n,
    }
