"""CPU-forwarding IDC (MCN [3] / UPMEM [32], Table I column 2).

Every inter-DIMM transfer goes through the host: the requesting DIMM
registers a request in a memory-mapped register, the host's polling loop
notices it, reads the packet over the source channel, and writes it over
the destination channel.  Reads additionally pay the return trip for the
data.  ``MCN-BC`` (Fig. 12's baseline) emulates broadcast with one host
read plus a per-destination write.
"""

from __future__ import annotations

from repro.idc.base import IDCMechanism
from repro.protocol.packet import FLIT_BYTES, wire_bytes_for_transfer
from repro.sim.engine import AllOf, SimEvent
from repro.sim.time import ns

#: wire size of a request/notification packet.
CONTROL_WIRE_BYTES = FLIT_BYTES


class CPUForwardingIDC(IDCMechanism):
    """MCN-style host-forwarded inter-DIMM communication."""

    name = "mcn"

    def attach(self, system) -> None:
        super().attach(system)
        self.sim = system.sim
        self.stats = system.stats

    def remote_read(self, src_dimm, dst_dimm, offset, nbytes) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="mcn.read")

        def proc():
            yield system.forwarder.forward(src_dimm, dst_dimm, CONTROL_WIRE_BYTES)
            yield system.dimms[dst_dimm].mc.local_access(offset, nbytes, False)
            wire = wire_bytes_for_transfer(nbytes)
            yield system.forwarder.forward(dst_dimm, src_dimm, wire, notice_dimm=-1)
            self.stats.add("idc.forwarded_bytes", nbytes)
            done.succeed(nbytes)

        self.sim.process(proc(), name="mcn.read")
        return done

    def remote_write(self, src_dimm, dst_dimm, offset, nbytes) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="mcn.write")

        def proc():
            wire = wire_bytes_for_transfer(nbytes)
            yield system.forwarder.forward(src_dimm, dst_dimm, wire)
            yield system.dimms[dst_dimm].mc.local_access(offset, nbytes, True)
            self.stats.add("idc.forwarded_bytes", nbytes)
            done.succeed(nbytes)

        self.sim.process(proc(), name="mcn.write")
        return done

    def broadcast(self, src_dimm, offset, nbytes) -> SimEvent:
        """MCN-BC: one host read, then one write per destination DIMM."""
        system = self._require_system()
        done = self.sim.event(name="mcn.bc")
        config = system.config
        wire = wire_bytes_for_transfer(nbytes)

        def proc():
            yield system.polling.notice(src_dimm)
            src_channel = system.channels[config.channel_of(src_dimm)]
            yield src_channel.transfer(wire, kind="fwd")
            yield ns(config.host.forward_latency_ns)

            def deliver(dst):
                # every per-DIMM copy consumes the host forwarding engine
                yield system.forwarder.engine.transfer(wire)
                channel = system.channels[config.channel_of(dst)]
                yield channel.transfer(wire, kind="fwd")
                yield system.dimms[dst].mc.local_access(offset, nbytes, True)
                self.stats.add("idc.forwarded_bytes", nbytes)

            deliveries = [
                self.sim.process(deliver(dst), name="mcn.bc.deliver")
                for dst in range(config.num_dimms)
                if dst != src_dimm
            ]
            yield AllOf(deliveries)
            self.stats.add("idc.broadcast_ops")
            done.succeed(nbytes)

        self.sim.process(proc(), name="mcn.bc")
        return done

    def message(self, src_dimm, dst_dimm, nbytes, expected: bool = False) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="mcn.msg")

        def proc():
            yield system.forwarder.forward(
                src_dimm,
                dst_dimm,
                CONTROL_WIRE_BYTES,
                notice_dimm=-1 if expected else None,
            )
            self.stats.add("idc.messages")
            done.succeed(nbytes)

        self.sim.process(proc(), name="mcn.msg")
        return done
