"""Distance-aware task mapping (profiling, cost model, MCMF placement)."""

from repro.mapping.mcmf import MinCostMaxFlow
from repro.mapping.pagetable import (
    DATA_PLACEMENTS,
    FirstTouchPolicy,
    NextTouchPolicy,
    PageTable,
    PlacementPolicy,
    ProfiledPolicy,
    StaticPolicy,
    make_policy,
)
from repro.mapping.placement import (
    co_optimized_placement,
    cost_table,
    distance_aware_placement,
    distance_matrix,
    placement_cost,
    solve_placement,
)
from repro.mapping.profile import (
    DEFAULT_PROFILE_FRACTION,
    majority_assignment,
    profile_page_traffic,
    profile_traffic,
    profiled_page_assignment,
)

__all__ = [
    "MinCostMaxFlow",
    "DATA_PLACEMENTS",
    "FirstTouchPolicy",
    "NextTouchPolicy",
    "PageTable",
    "PlacementPolicy",
    "ProfiledPolicy",
    "StaticPolicy",
    "make_policy",
    "co_optimized_placement",
    "cost_table",
    "distance_aware_placement",
    "distance_matrix",
    "placement_cost",
    "solve_placement",
    "DEFAULT_PROFILE_FRACTION",
    "majority_assignment",
    "profile_page_traffic",
    "profile_traffic",
    "profiled_page_assignment",
]
