"""Distance-aware task mapping (profiling, cost model, MCMF placement)."""

from repro.mapping.mcmf import MinCostMaxFlow
from repro.mapping.placement import (
    cost_table,
    distance_aware_placement,
    distance_matrix,
    placement_cost,
    solve_placement,
)
from repro.mapping.profile import DEFAULT_PROFILE_FRACTION, profile_traffic

__all__ = [
    "MinCostMaxFlow",
    "cost_table",
    "distance_aware_placement",
    "distance_matrix",
    "placement_cost",
    "solve_placement",
    "DEFAULT_PROFILE_FRACTION",
    "profile_traffic",
]
