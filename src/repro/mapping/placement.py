"""Distance-aware thread placement (Algorithm 1, Sec. IV-B).

Step 1 weights each thread's profiled traffic by the DIMM-to-DIMM distance
function to build the cost table ``C[T][N]``; Step 2 solves a min-cost
max-flow over Source -> threads -> DIMMs -> Sink; Step 3 reads the chosen
edges off the flow.  The distance function comes from the DL topology
(DL hops within a group, a large constant for host-forwarded pairs), as
the paper derives it from profiled inter-DIMM latencies.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import numpy as np

from repro.config import SystemConfig
from repro.core.routing import distance
from repro.errors import MappingError
from repro.mapping.mcmf import MinCostMaxFlow


def distance_matrix(config: SystemConfig) -> np.ndarray:
    """N x N matrix of the Algorithm 1 distance function ``dist(j, k)``."""
    n = config.num_dimms
    matrix = np.zeros((n, n), dtype=np.float64)
    for j in range(n):
        for k in range(n):
            if j != k:
                matrix[j, k] = distance(config, j, k)
    return matrix


def cost_table(traffic: np.ndarray, distances: np.ndarray) -> np.ndarray:
    """Step 1: ``C[i][j] = sum_k dist(j, k) * M[i][k]``."""
    if traffic.ndim != 2 or distances.ndim != 2:
        raise MappingError("traffic and distance tables must be 2-D")
    if traffic.shape[1] != distances.shape[0] or distances.shape[0] != distances.shape[1]:
        raise MappingError(
            f"shape mismatch: M is {traffic.shape}, dist is {distances.shape}"
        )
    return traffic @ distances.T


def solve_placement(costs: np.ndarray, threads_per_dimm: int) -> List[int]:
    """Steps 2-3: min-cost max-flow assignment of threads to DIMMs."""
    num_threads, num_dimms = costs.shape
    if threads_per_dimm <= 0:
        raise MappingError("threads_per_dimm must be positive")
    if num_threads > num_dimms * threads_per_dimm:
        raise MappingError(
            f"{num_threads} threads exceed capacity "
            f"{num_dimms} x {threads_per_dimm}"
        )
    source = 0
    thread_node = lambda t: 1 + t  # noqa: E731 - tiny index helpers
    dimm_node = lambda d: 1 + num_threads + d  # noqa: E731
    sink = 1 + num_threads + num_dimms
    network = MinCostMaxFlow(sink + 1)
    for t in range(num_threads):
        network.add_edge(source, thread_node(t), capacity=1, cost=0.0)
    assignment_edges = {}
    for t in range(num_threads):
        for d in range(num_dimms):
            assignment_edges[(t, d)] = network.add_edge(
                thread_node(t), dimm_node(d), capacity=1, cost=float(costs[t, d])
            )
    for d in range(num_dimms):
        network.add_edge(dimm_node(d), sink, capacity=threads_per_dimm, cost=0.0)
    flow, _cost = network.solve(source, sink)
    if flow != num_threads:
        raise MappingError(f"placement infeasible: flowed {flow}/{num_threads}")
    placement = [-1] * num_threads
    for (t, d), edge_id in assignment_edges.items():
        if network.flow_on(edge_id) > 0:
            placement[t] = d
    if any(p < 0 for p in placement):
        raise MappingError("flow solution left a thread unplaced")
    return placement


def placement_cost(placement: List[int], costs: np.ndarray) -> float:
    """Total Algorithm-1 cost of a given placement (for comparisons)."""
    return float(sum(costs[t, d] for t, d in enumerate(placement)))


def distance_aware_placement(
    traffic: np.ndarray,
    config: SystemConfig,
    threads_per_dimm: Optional[int] = None,
) -> List[int]:
    """Algorithm 1 end-to-end: traffic table -> optimized placement."""
    per_dimm = threads_per_dimm or config.nmp.cores_per_dimm
    costs = cost_table(traffic, distance_matrix(config))
    return solve_placement(costs, per_dimm)


def random_placement(
    num_threads: int, num_dimms: int, per_dimm: int, seed: int = 7
) -> List[int]:
    """A seeded random feasible placement (<= per_dimm threads per DIMM)."""
    rng = random.Random(seed)
    slots = [d for d in range(num_dimms) for _ in range(per_dimm)]
    rng.shuffle(slots)
    return slots[:num_threads]


def co_optimized_placement(
    thread_factories: List,
    config: SystemConfig,
    threads_per_dimm: Optional[int] = None,
    max_rounds: int = 4,
) -> "Tuple[List[int], dict, int]":
    """Co-optimize thread placement and page placement to a fixed point.

    Alternates the two layers the paper and CODA optimise separately:
    profile the op streams under the current (thread placement, page
    assignment), solve Algorithm 1's MCMF for a new thread placement,
    re-place every profiled page on its majority toucher, and repeat
    until neither layer changes (or ``max_rounds``).  Returns
    ``(placement, page_assignment, rounds)``; the assignment seeds a
    profiled-policy page table so the run starts co-located.
    """
    from repro.mapping.profile import majority_assignment, profile_page_traffic

    per_dimm = threads_per_dimm or config.nmp.cores_per_dimm
    if max_rounds < 1:
        raise MappingError(f"max_rounds {max_rounds} must be >= 1")
    num_threads = len(thread_factories)
    num_dimms = config.num_dimms
    # start from the natural block placement with pages at their homes
    placement = [min(i // per_dimm, num_dimms - 1) for i in range(num_threads)]
    assignment: dict = {}
    distances = distance_matrix(config)
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        traffic, touches = profile_page_traffic(
            thread_factories, num_dimms, placement, assignment
        )
        new_placement = solve_placement(cost_table(traffic, distances), per_dimm)
        new_assignment = majority_assignment(touches)
        if new_placement == placement and new_assignment == assignment:
            break
        placement, assignment = new_placement, new_assignment
    return placement, assignment, rounds
