"""Traffic profiling for distance-aware task mapping (Sec. IV-B).

The paper profiles a short prefix of execution, exploiting the observation
that multithreaded kernels have repeatable access patterns; the host then
accumulates per-(thread, DIMM) traffic counters into the table **M**.
Here we dry-run the workloads' op streams (no simulated time) and count
Read/Write bytes per target DIMM — the same table, produced the same way a
DIMM-side counter bank would produce it.

The profiling *phase* costs real execution time on the machine; runs that
use the optimized placement are charged ``profile_fraction`` of their
kernel time (the paper reports 2%-9%).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import MappingError
from repro.workloads.base import ThreadFactory
from repro.workloads.ops import Read, Write

#: fraction of kernel time charged for the profiling phase (Fig. 10 note).
DEFAULT_PROFILE_FRACTION = 0.05


def profile_traffic(
    thread_factories: List[ThreadFactory],
    num_dimms: int,
    max_ops_per_thread: Optional[int] = None,
) -> np.ndarray:
    """Build the M[T][N] traffic table by dry-running the op streams.

    ``max_ops_per_thread`` truncates the profile (the paper samples ~1% of
    execution; our batched streams are short enough to scan fully, which is
    the exact-limit of that sampling).
    """
    if not thread_factories:
        raise MappingError("profiling needs at least one thread")
    if num_dimms <= 0:
        raise MappingError("profiling needs at least one DIMM")
    table = np.zeros((len(thread_factories), num_dimms), dtype=np.float64)
    for thread_id, factory in enumerate(thread_factories):
        for op_index, op in enumerate(factory()):
            if max_ops_per_thread is not None and op_index >= max_ops_per_thread:
                break
            if isinstance(op, (Read, Write)):
                if not 0 <= op.dimm < num_dimms:
                    raise MappingError(
                        f"thread {thread_id} accesses unknown DIMM {op.dimm}"
                    )
                table[thread_id, op.dimm] += op.nbytes
    return table
