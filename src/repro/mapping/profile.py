"""Traffic profiling for distance-aware task mapping (Sec. IV-B).

The paper profiles a short prefix of execution, exploiting the observation
that multithreaded kernels have repeatable access patterns; the host then
accumulates per-(thread, DIMM) traffic counters into the table **M**.
Here we dry-run the workloads' op streams (no simulated time) and count
Read/Write bytes per target DIMM — the same table, produced the same way a
DIMM-side counter bank would produce it.

The profiling *phase* costs real execution time on the machine; runs that
use the optimized placement are charged ``profile_fraction`` of their
kernel time (the paper reports 2%-9%).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.dram.address import page_home
from repro.errors import MappingError
from repro.workloads.base import ThreadFactory
from repro.workloads.ops import Read, Write

#: fraction of kernel time charged for the profiling phase (Fig. 10 note).
DEFAULT_PROFILE_FRACTION = 0.05


def profile_traffic(
    thread_factories: List[ThreadFactory],
    num_dimms: int,
    max_ops_per_thread: Optional[int] = None,
) -> np.ndarray:
    """Build the M[T][N] traffic table by dry-running the op streams.

    ``max_ops_per_thread`` truncates the profile (the paper samples ~1% of
    execution; our batched streams are short enough to scan fully, which is
    the exact-limit of that sampling).
    """
    if not thread_factories:
        raise MappingError("profiling needs at least one thread")
    if num_dimms <= 0:
        raise MappingError("profiling needs at least one DIMM")
    table = np.zeros((len(thread_factories), num_dimms), dtype=np.float64)
    for thread_id, factory in enumerate(thread_factories):
        for op_index, op in enumerate(factory()):
            if max_ops_per_thread is not None and op_index >= max_ops_per_thread:
                break
            if isinstance(op, (Read, Write)):
                if not 0 <= op.dimm < num_dimms:
                    raise MappingError(
                        f"thread {thread_id} accesses unknown DIMM {op.dimm}"
                    )
                table[thread_id, op.dimm] += op.nbytes
    return table


def profile_page_traffic(
    thread_factories: List[ThreadFactory],
    num_dimms: int,
    placement: List[int],
    assignment: Optional[Mapping[int, int]] = None,
    max_ops_per_thread: Optional[int] = None,
) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
    """Placement-aware profile: the M table plus per-page touch counters.

    Like :func:`profile_traffic`, but page-carrying ops are attributed to
    the DIMM the page would currently live on (``assignment``, falling
    back to the static home) instead of the op's hard-coded shard, and a
    per-page histogram of toucher bytes is collected — ``placement[t]``
    is thread ``t``'s DIMM, the identity a DIMM-side counter bank would
    see.  The touch histograms are what profile-driven page placement
    (and the co-optimization loop) aggregate into an assignment.
    """
    if not thread_factories:
        raise MappingError("profiling needs at least one thread")
    if num_dimms <= 0:
        raise MappingError("profiling needs at least one DIMM")
    if len(placement) != len(thread_factories):
        raise MappingError(
            f"{len(placement)} placements for {len(thread_factories)} threads"
        )
    page_owner: Dict[int, int] = dict(assignment or {})
    table = np.zeros((len(thread_factories), num_dimms), dtype=np.float64)
    touches: Dict[int, np.ndarray] = {}
    for thread_id, factory in enumerate(thread_factories):
        toucher = placement[thread_id]
        if not 0 <= toucher < num_dimms:
            raise MappingError(f"thread {thread_id} placed on unknown DIMM {toucher}")
        for op_index, op in enumerate(factory()):
            if max_ops_per_thread is not None and op_index >= max_ops_per_thread:
                break
            if not isinstance(op, (Read, Write)):
                continue
            page = op.page
            if page is None:
                target = op.dimm
            else:
                target = page_owner.get(page)
                if target is None:
                    target = page_home(page)
                row = touches.get(page)
                if row is None:
                    row = touches[page] = np.zeros(num_dimms, dtype=np.float64)
                row[toucher] += op.nbytes
            if not 0 <= target < num_dimms:
                raise MappingError(
                    f"thread {thread_id} accesses unknown DIMM {target}"
                )
            table[thread_id, target] += op.nbytes
    return table, touches


def majority_assignment(touches: Mapping[int, np.ndarray]) -> Dict[int, int]:
    """Place each profiled page on its majority toucher (ties: lowest DIMM)."""
    return {page: int(np.argmax(row)) for page, row in touches.items()}


def profiled_page_assignment(
    thread_factories: List[ThreadFactory],
    num_dimms: int,
    placement: List[int],
    max_ops_per_thread: Optional[int] = None,
) -> Dict[int, int]:
    """One profiling pass -> majority-toucher page assignment."""
    _table, touches = profile_page_traffic(
        thread_factories, num_dimms, placement, max_ops_per_thread=max_ops_per_thread
    )
    return majority_assignment(touches)
