"""Minimum-cost maximum-flow, implemented from scratch.

Successive shortest augmenting paths with SPFA (queue-based Bellman-Ford),
as the paper suggests ("using algorithms such as Bellman-Ford", Sec. IV-B).
Supports float edge costs; complexity is O(F * V * E) which is ample for
thread-placement instances (T+N+2 nodes).
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

from repro.errors import MappingError


class MinCostMaxFlow:
    """A flow network with addable edges and an SSP solver."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise MappingError("flow network needs at least one node")
        self.num_nodes = num_nodes
        # edge arrays: to, capacity, cost; edges stored in pairs (fwd, rev)
        self._to: List[int] = []
        self._cap: List[int] = []
        self._cost: List[float] = []
        self._head: List[List[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: int, cost: float) -> int:
        """Add a directed edge; returns its id (for flow inspection)."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise MappingError(f"edge ({u}, {v}) references unknown nodes")
        if capacity < 0:
            raise MappingError("edge capacity must be non-negative")
        edge_id = len(self._to)
        self._to.extend([v, u])
        self._cap.extend([capacity, 0])
        self._cost.extend([cost, -cost])
        self._head[u].append(edge_id)
        self._head[v].append(edge_id + 1)
        return edge_id

    def flow_on(self, edge_id: int) -> int:
        """Flow currently routed through edge ``edge_id``."""
        return self._cap[edge_id ^ 1]

    def solve(self, source: int, sink: int) -> Tuple[int, float]:
        """Push max flow from ``source`` to ``sink``; returns (flow, cost)."""
        if source == sink:
            raise MappingError("source and sink must differ")
        total_flow, total_cost = 0, 0.0
        while True:
            dist, in_queue = self._spfa(source)
            if dist[sink] == float("inf"):
                return total_flow, total_cost
            # walk parents to find bottleneck
            bottleneck = self._bottleneck(source, sink)
            path_flow, path_cost = bottleneck
            total_flow += path_flow
            total_cost += path_cost
            _ = in_queue  # SPFA bookkeeping only

    def _spfa(self, source: int):
        inf = float("inf")
        dist = [inf] * self.num_nodes
        self._parent_edge = [-1] * self.num_nodes
        dist[source] = 0.0
        in_queue = [False] * self.num_nodes
        queue = deque([source])
        in_queue[source] = True
        while queue:
            u = queue.popleft()
            in_queue[u] = False
            for edge_id in self._head[u]:
                if self._cap[edge_id] <= 0:
                    continue
                v = self._to[edge_id]
                candidate = dist[u] + self._cost[edge_id]
                if candidate < dist[v] - 1e-12:
                    dist[v] = candidate
                    self._parent_edge[v] = edge_id
                    if not in_queue[v]:
                        queue.append(v)
                        in_queue[v] = True
        self._dist = dist
        return dist, in_queue

    def _bottleneck(self, source: int, sink: int) -> Tuple[int, float]:
        # find min residual capacity along the shortest path
        flow = float("inf")
        node = sink
        while node != source:
            edge_id = self._parent_edge[node]
            flow = min(flow, self._cap[edge_id])
            node = self._to[edge_id ^ 1]
        flow = int(flow)
        cost = 0.0
        node = sink
        while node != source:
            edge_id = self._parent_edge[node]
            self._cap[edge_id] -= flow
            self._cap[edge_id ^ 1] += flow
            cost += self._cost[edge_id] * flow
            node = self._to[edge_id ^ 1]
        return flow, cost
