"""Page-granularity data placement and migration.

The MCMF mapper (Sec. IV-B) places *threads*; this module places *data*.
A :class:`PageTable` maps page ids (see ``repro.dram.address``) to their
current owner DIMM under a pluggable :class:`PlacementPolicy`:

- ``static``       — pages live at their loader shard (``page_home``);
  byte-identical to the pre-pagetable behaviour.
- ``first_touch``  — a page is owned by the DIMM of the first core that
  touches it (classic NUMA first-touch).
- ``next_touch``   — pages start at their static home and migrate to a
  remote toucher after ``threshold`` consecutive remote touches, up to
  ``max_migrations`` moves per page (MultiPIM-style next-touch).
- ``profiled``     — an offline profiling pass (see
  ``repro.mapping.profile.profiled_page_assignment``) pre-computes the
  majority toucher of every page; CODA-style compute/data co-location.

The table only *decides*; charging the page copy over the inter-DIMM
fabric is done by the executors (``nmp/core.py``, ``host/cpu.py``),
which see the decision as a ``(src, dst)`` migration tuple and issue a
``PAGE_BYTES`` transfer through the active IDC mechanism before the
triggering access proceeds.  Resolution is pure bookkeeping — no
simulated time passes here — so installing a table with the static
policy leaves event order, and therefore results, untouched.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Optional, Tuple

from repro.dram.address import PAGE_BYTES, page_home
from repro.errors import ConfigError

#: Placement policy names accepted by :func:`make_policy` and RunSpec.
DATA_PLACEMENTS = ("static", "first_touch", "next_touch", "profiled")

#: Consecutive remote touches (by one DIMM) before next-touch migrates.
NEXT_TOUCH_THRESHOLD = 2
#: Per-page migration cap — bounds ping-pong on genuinely shared pages.
MAX_MIGRATIONS_PER_PAGE = 4


class PlacementPolicy(abc.ABC):
    """Decides a page's initial owner and when a touch triggers a move."""

    name = "abstract"
    #: upper bound on moves per page (0 = the policy never migrates).
    max_migrations = 0

    @abc.abstractmethod
    def initial_owner(self, page: int, toucher: int) -> int:
        """Owner assigned when ``page`` is seen for the first time."""

    def migrate_on_touch(self, page: int, owner: int, toucher: int, streak: int) -> bool:
        """Should this remote touch move the page to ``toucher``?

        ``streak`` counts consecutive touches of ``page`` by ``toucher``
        with no intervening touch by the current owner or another DIMM.
        """
        return False


class StaticPolicy(PlacementPolicy):
    """Loader shard: every page lives at its static home, forever."""

    name = "static"

    def initial_owner(self, page: int, toucher: int) -> int:
        return page_home(page)


class FirstTouchPolicy(PlacementPolicy):
    """NUMA first-touch: the first toucher's DIMM owns the page."""

    name = "first_touch"

    def initial_owner(self, page: int, toucher: int) -> int:
        return toucher


class NextTouchPolicy(PlacementPolicy):
    """Start at the static home, chase the toucher after a streak."""

    name = "next_touch"

    def __init__(
        self,
        threshold: int = NEXT_TOUCH_THRESHOLD,
        max_migrations: int = MAX_MIGRATIONS_PER_PAGE,
    ) -> None:
        if threshold < 1:
            raise ConfigError(f"next-touch threshold {threshold} must be >= 1")
        if max_migrations < 1:
            raise ConfigError(f"max_migrations {max_migrations} must be >= 1")
        self.threshold = threshold
        self.max_migrations = max_migrations

    def initial_owner(self, page: int, toucher: int) -> int:
        return page_home(page)

    def migrate_on_touch(self, page: int, owner: int, toucher: int, streak: int) -> bool:
        return streak >= self.threshold


class ProfiledPolicy(PlacementPolicy):
    """Offline assignment (majority toucher) with static-home fallback."""

    name = "profiled"

    def __init__(self, assignment: Mapping[int, int]) -> None:
        self.assignment = dict(assignment)

    def initial_owner(self, page: int, toucher: int) -> int:
        return self.assignment.get(page, page_home(page))


def make_policy(
    name: str, assignment: Optional[Mapping[int, int]] = None
) -> PlacementPolicy:
    """Build a policy by RunSpec name (``assignment`` only for profiled)."""
    if name == "static":
        return StaticPolicy()
    if name == "first_touch":
        return FirstTouchPolicy()
    if name == "next_touch":
        return NextTouchPolicy()
    if name == "profiled":
        if assignment is None:
            raise ConfigError("profiled placement needs a page assignment")
        return ProfiledPolicy(assignment)
    raise ConfigError(
        f"unknown data placement {name!r}; expected one of {DATA_PLACEMENTS}"
    )


class PageTable:
    """Current page → owner-DIMM map, shared by every core of a system.

    :meth:`resolve` is the single entry point: given the page a memory
    op touches and the DIMM of the touching core, it returns the DIMM
    that must serve the access plus an optional ``(src, dst)`` pair when
    the policy decided to migrate the page first.  The caller charges
    the ``PAGE_BYTES`` copy; the table has already switched ownership.
    """

    def __init__(self, policy: PlacementPolicy, num_dimms: int) -> None:
        if num_dimms <= 0:
            raise ConfigError(f"num_dimms {num_dimms} must be positive")
        self.policy = policy
        self.num_dimms = num_dimms
        self._owners: Dict[int, int] = {}
        # page -> (last remote toucher, consecutive touches by it)
        self._streaks: Dict[int, Tuple[int, int]] = {}
        self._moves: Dict[int, int] = {}
        self.touches = 0
        self.remote_touches = 0
        self.migrations = 0

    @property
    def migrated_bytes(self) -> int:
        return self.migrations * PAGE_BYTES

    def owner(self, page: int) -> Optional[int]:
        """Current owner, or None if the page was never touched/placed."""
        return self._owners.get(page)

    def resolve(self, page: int, toucher: int) -> Tuple[int, Optional[Tuple[int, int]]]:
        """Return ``(serving_dimm, migration)`` for one touch.

        ``migration`` is ``None`` for a plain access, or ``(src, dst)``
        when the page just moved — the access is then served by ``dst``
        (== the returned owner) after the caller charges the copy.
        """
        if not 0 <= toucher < self.num_dimms:
            raise ConfigError(f"toucher DIMM {toucher} outside 0..{self.num_dimms - 1}")
        owner = self._owners.get(page)
        if owner is None:
            owner = self.policy.initial_owner(page, toucher)
            if not 0 <= owner < self.num_dimms:
                raise ConfigError(
                    f"policy {self.policy.name!r} placed page {page} on DIMM "
                    f"{owner}, outside 0..{self.num_dimms - 1}"
                )
            self._owners[page] = owner
        self.touches += 1
        if toucher == owner:
            self._streaks.pop(page, None)
            return owner, None
        self.remote_touches += 1
        last, count = self._streaks.get(page, (toucher, 0))
        count = count + 1 if last == toucher else 1
        self._streaks[page] = (toucher, count)
        moves = self._moves.get(page, 0)
        if moves < self.policy.max_migrations and self.policy.migrate_on_touch(
            page, owner, toucher, count
        ):
            self._owners[page] = toucher
            self._moves[page] = moves + 1
            self._streaks.pop(page, None)
            self.migrations += 1
            return toucher, (owner, toucher)
        return owner, None
