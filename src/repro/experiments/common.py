"""Shared experiment plumbing: workload registry, system runners.

Every figure/table module builds on these helpers:

* :func:`build_workload` — Table IV workloads at three size presets
  (``tiny`` for unit tests/benches, ``small`` for examples, ``large`` for
  longer runs),
* :func:`run_nmp` / :func:`run_cpu` — execute a workload on a configured
  system,
* :func:`run_optimized` — the DL-opt flow: profile traffic, solve the
  distance-aware placement, run, and charge the profiling overhead.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.host.cpu import HostCPUSystem
from repro.mapping.placement import distance_aware_placement
from repro.mapping.profile import DEFAULT_PROFILE_FRACTION, profile_traffic
from repro.nmp.results import RunResult
from repro.nmp.system import NMPSystem
from repro.workloads.apsp import BlockedFloydWarshall
from repro.workloads.base import Workload
from repro.workloads.bfs import BFS
from repro.workloads.dlrm import DLRMEmbedding
from repro.workloads.hotpage import HotPage
from repro.workloads.hotspot import Hotspot
from repro.workloads.kmeans import KMeans
from repro.workloads.nw import NeedlemanWunsch
from repro.workloads.pagerank import PageRank, PageRankBC
from repro.workloads.spmv import SpMV, SpMVBC
from repro.workloads.sssp import SSSP, SSSPBC
from repro.workloads.tspow import TSPow

#: the Fig. 10 point-to-point benchmark suite (Table IV).
P2P_WORKLOADS = ("bfs", "hotspot", "kmeans", "nw", "pagerank", "sssp")
#: the Fig. 12 broadcast suite.
BC_WORKLOADS = ("pagerank_bc", "sssp_bc", "spmv_bc")

_SIZES = ("tiny", "small", "large")

_GRAPH_SCALE = {"tiny": 9, "small": 11, "large": 12}
#: traffic multiplier bridging scaled graphs to LiveJournal-size volumes.
_BYTE_SCALE = {"tiny": 4, "small": 24, "large": 48}
_ITERS = {"tiny": 2, "small": 4, "large": 8}

#: DLRM embedding-serving shapes per size preset (overridable via
#: ``overrides`` — the sweep experiments vary ``batch_size``).
_DLRM_PRESETS = {
    "tiny": dict(
        tables=4, rows=128, dim=8, pooling=4, batches_per_thread=2, batch_size=8
    ),
    "small": dict(
        tables=8, rows=512, dim=16, pooling=8, batches_per_thread=4, batch_size=32
    ),
    "large": dict(
        tables=16, rows=2048, dim=32, pooling=16, batches_per_thread=8, batch_size=64
    ),
}

#: blocked Floyd–Warshall shapes per size preset (``n``/``block``
#: overridable — the APSP experiment sweeps graph size).
_APSP_PRESETS = {
    "tiny": dict(n=48, block=12, density=0.25),
    "small": dict(n=96, block=12, density=0.25),
    "large": dict(n=192, block=16, density=0.25),
}

#: workloads accepting parameter overrides, with their preset tables.
_PARAMETERIZED = {"dlrm": _DLRM_PRESETS, "apsp": _APSP_PRESETS}

#: hotpage (hot-shard) shapes per size preset.
_HOTPAGE_PRESETS = {
    "tiny": dict(rounds=6, private_pages=8, shared_pages=2),
    "small": dict(rounds=12, private_pages=16, shared_pages=2),
    "large": dict(rounds=24, private_pages=32, shared_pages=4),
}

#: streaming R-MAT scales (``pagerank_stream``): tiny stays test-fast,
#: large crosses 1M vertices — the LiveJournal-scale paging regime the
#: in-RAM generator cannot reach.
_STREAM_SCALE = {"tiny": 12, "small": 16, "large": 20}

#: workloads whose op streams can carry page ids (dynamic placement).
PAGED_WORKLOADS = frozenset(
    {
        "bfs",
        "sssp",
        "pagerank",
        "spmv",
        "pagerank_bc",
        "sssp_bc",
        "spmv_bc",
        "hotspot",
        "hotpage",
        "pagerank_stream",
    }
)


def build_workload(
    name: str,
    size: str = "small",
    seed: int = 42,
    overrides: Optional[Dict[str, object]] = None,
    paged: bool = False,
) -> Workload:
    """Instantiate a Table IV workload at a size preset.

    ``overrides`` tunes individual shape parameters of the parameterized
    workloads (``dlrm``, ``apsp``) on top of their size preset — unknown
    keys, and any override on a non-parameterized workload, raise
    :class:`~repro.errors.ConfigError` so a typo can't silently run the
    preset shape.

    ``paged=True`` makes the op streams carry page ids so a page table
    can resolve (and migrate) their data; only the workloads in
    :data:`PAGED_WORKLOADS` support it.  Off by default — unpaged ops
    are byte-identical to the pre-placement-refactor streams.
    """
    if size not in _SIZES:
        raise ConfigError(f"unknown size {size!r}; choose from {_SIZES}")
    if paged and name not in PAGED_WORKLOADS:
        raise ConfigError(
            f"workload {name!r} does not support page-granularity placement; "
            f"choose from {sorted(PAGED_WORKLOADS)}"
        )
    if name in _PARAMETERIZED:
        kwargs = dict(_PARAMETERIZED[name][size])
        for key, value in sorted((overrides or {}).items()):
            if key not in kwargs:
                raise ConfigError(
                    f"unknown {name} parameter {key!r}; "
                    f"choose from {sorted(kwargs)}"
                )
            kwargs[key] = value
        if name == "dlrm":
            return DLRMEmbedding(seed=seed, **kwargs)
        return BlockedFloydWarshall(seed=seed, **kwargs)
    if overrides:
        raise ConfigError(
            f"workload {name!r} does not accept parameter overrides "
            f"(got {sorted(overrides)})"
        )
    scale = _GRAPH_SCALE[size]
    bscale = _BYTE_SCALE[size]
    iters = _ITERS[size]
    grid = {"tiny": 128, "small": 256, "large": 512}[size]
    seq = {"tiny": 1024, "small": 2048, "large": 4096}[size]
    points = {"tiny": 8192, "small": 32768, "large": 131072}[size]
    samples = {"tiny": 2048, "small": 8192, "large": 32768}[size]
    factories = {
        "bfs": lambda: BFS(scale=scale, seed=seed, byte_scale=bscale),
        "sssp": lambda: SSSP(scale=scale, seed=seed, rounds=iters, byte_scale=bscale),
        "pagerank": lambda: PageRank(scale=scale, seed=seed, iterations=iters, byte_scale=bscale),
        "spmv": lambda: SpMV(scale=scale, seed=seed, iterations=max(1, iters // 2), byte_scale=bscale),
        "pagerank_bc": lambda: PageRankBC(scale=scale, seed=seed, iterations=iters, byte_scale=bscale),
        "sssp_bc": lambda: SSSPBC(scale=scale, seed=seed, rounds=iters, byte_scale=bscale),
        "spmv_bc": lambda: SpMVBC(scale=scale, seed=seed, iterations=max(1, iters // 2), byte_scale=bscale),
        "hotspot": lambda: Hotspot(rows=grid, cols=grid, iterations=iters),
        "hotpage": lambda: HotPage(**_HOTPAGE_PRESETS[size]),
        "pagerank_stream": lambda: PageRank(
            scale=_STREAM_SCALE[size],
            seed=seed,
            iterations=max(2, iters // 2),
            byte_scale=1,
            streaming=True,
        ),
        "kmeans": lambda: KMeans(points=points, iterations=max(2, iters // 2)),
        "nw": lambda: NeedlemanWunsch(sequence_length=seq, block=128),
        "ts_pow": lambda: TSPow(samples_per_thread=samples, chunks=3 * iters),
    }
    try:
        workload = factories[name]()
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {sorted(factories)}"
        ) from None
    if name == "pagerank_stream":
        workload.name = "pagerank_stream"
    if paged:
        workload.paged = True
    return workload


def threads_for(config: SystemConfig) -> int:
    """The paper runs four threads per DIMM."""
    return config.num_dimms * config.nmp.cores_per_dimm


def run_cpu(
    config: SystemConfig, workload: Workload, num_threads: Optional[int] = None
) -> RunResult:
    """Run a workload on the 16-core host-CPU baseline."""
    threads = num_threads or threads_for(config)
    system = HostCPUSystem(config)
    factories = workload.thread_factories(threads, config.num_dimms)
    return system.run(factories, workload_name=workload.name)


def run_nmp(
    config: SystemConfig,
    workload: Workload,
    mechanism: str = "dimm_link",
    polling: Optional[str] = None,
    sync_mode: str = "hierarchical",
    num_threads: Optional[int] = None,
) -> RunResult:
    """Run a workload on an NMP system with the natural placement."""
    threads = num_threads or threads_for(config)
    system = NMPSystem(config, idc=mechanism, polling=polling, sync_mode=sync_mode)
    factories = workload.thread_factories(threads, config.num_dimms)
    return system.run(factories, workload_name=workload.name)


def run_optimized(
    config: SystemConfig,
    workload: Workload,
    polling: Optional[str] = "proxy",
    sync_mode: str = "hierarchical",
    num_threads: Optional[int] = None,
    profile_fraction: float = DEFAULT_PROFILE_FRACTION,
) -> RunResult:
    """DIMM-Link-opt: profile, solve Algorithm 1, run, charge profiling."""
    threads = num_threads or threads_for(config)
    factories_for_profile = workload.thread_factories(threads, config.num_dimms)
    traffic = profile_traffic(factories_for_profile, config.num_dimms)
    placement = distance_aware_placement(traffic, config)
    system = NMPSystem(config, idc="dimm_link", polling=polling, sync_mode=sync_mode)
    factories = workload.thread_factories(threads, config.num_dimms)
    result = system.run(factories, placement=placement, workload_name=workload.name)
    result.profile_ps = int(result.time_ps * profile_fraction)
    return result


def mechanism_results(
    config: SystemConfig,
    workload: Workload,
    mechanisms: tuple = ("mcn", "aim", "dimm_link"),
) -> Dict[str, RunResult]:
    """Run one workload across several mechanisms (fresh system each)."""
    return {
        mech: run_nmp(config, workload, mechanism=mech) for mech in mechanisms
    }
