"""DLRM embedding serving — batched QPS and tail latency vs mechanism.

Sweeps serving batch size x IDC mechanism for the DLRM embedding
workload (:mod:`repro.workloads.dlrm`) on the 16D-8C system.  Top-line
metrics are batched queries/second and p50/p99 per-batch latency (read
from the ``dlrm.batch_ps`` histograms every core records), plus energy
per query from the Fig. 13 accounting.

Expected shape: CPU-forwarding pays the host round-trip on every
partial-vector gather, so DIMM-Link's advantage grows with the pooling
factor (more shard partials per query); DL-opt adds the distance-aware
placement on top.  Larger batches amortize per-batch overheads for every
mechanism but widen the p99/p50 gap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table, geomean, histogram_percentile
from repro.energy.accounting import energy_report
from repro.experiments.common import build_workload, threads_for
from repro.experiments.runner import RunSpec, SweepRunner, build_spec_config, run_specs
from repro.sim.time import to_s, to_us
from repro.workloads.dlrm import BATCH_STAMP

DEFAULT_CONFIG = "16D-8C"

#: serving mechanisms compared: the host baseline, the MCN NMP baseline,
#: DIMM-Link, and the DL-opt placement flow.
MECHANISMS: Tuple[Tuple[str, str, str], ...] = (
    # (label, spec kind, spec mechanism)
    ("cpu", "cpu", "cpu"),
    ("mcn", "nmp", "mcn"),
    ("dimm_link", "nmp", "dimm_link"),
    ("dl_opt", "optimized", "dimm_link"),
)

#: batch sizes swept, per size preset.
BATCH_SIZES = {
    "tiny": (4, 8),
    "small": (16, 32, 64),
    "large": (32, 64, 128),
}


def specs(
    size: str = "small",
    config_name: str = DEFAULT_CONFIG,
    batch_sizes: Optional[Sequence[int]] = None,
) -> List[RunSpec]:
    """The sweep as a flat spec list: one run per (batch size, mechanism)."""
    sizes = batch_sizes if batch_sizes is not None else BATCH_SIZES[size]
    return [
        RunSpec(
            config=config_name,
            workload="dlrm",
            size=size,
            kind=kind,
            mechanism=mechanism,
            params=f"batch_size={batch}",
        )
        for batch in sizes
        for _label, kind, mechanism in MECHANISMS
    ]


def run(
    size: str = "small",
    config_name: str = DEFAULT_CONFIG,
    batch_sizes: Optional[Sequence[int]] = None,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (batch size, mechanism): QPS, p50/p99, energy/query."""
    sizes = batch_sizes if batch_sizes is not None else BATCH_SIZES[size]
    grid = specs(size, config_name, sizes)
    results = iter(run_specs(grid, runner))
    config = build_spec_config(grid[0])
    threads = threads_for(config)
    rows = []
    for batch in sizes:
        workload = build_workload(
            "dlrm", size, overrides={"batch_size": batch}
        )
        queries = threads * workload.batches_per_thread * batch
        cpu_ps: Optional[int] = None
        for label, _kind, _mechanism in MECHANISMS:
            result = next(results)
            if label == "cpu":
                cpu_ps = result.total_ps
            latencies = list(
                result.stats.histograms_suffix(BATCH_STAMP).values()
            )
            energy = energy_report(result, config, polling=result.polling)
            rows.append(
                {
                    "batch_size": batch,
                    "mechanism": label,
                    "qps": queries / to_s(result.total_ps),
                    "p50_us": to_us(histogram_percentile(latencies, 0.50)),
                    "p99_us": to_us(histogram_percentile(latencies, 0.99)),
                    "uj_per_query": energy.total_j * 1e6 / queries,
                    "speedup": cpu_ps / result.total_ps,
                }
            )
    return rows


def summary(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Geomean speedup over the CPU baseline per mechanism."""
    return {
        f"{label}_geomean": geomean(
            [float(r["speedup"]) for r in rows if r["mechanism"] == label]
        )
        for label, _kind, _mechanism in MECHANISMS
    }


def main(size: str = "small") -> None:
    """Print the DLRM serving sweep."""
    rows = run(size=size)
    print("DLRM embedding serving: QPS and tail latency by mechanism")
    print(
        format_table(
            ["batch", "mechanism", "QPS", "p50 us", "p99 us", "uJ/query", "speedup"],
            [
                (
                    r["batch_size"],
                    r["mechanism"],
                    f"{float(r['qps']):.0f}",
                    r["p50_us"],
                    r["p99_us"],
                    r["uj_per_query"],
                    r["speedup"],
                )
                for r in rows
            ],
            precision=2,
        )
    )
    print("\ngeomean speedup over CPU-forwarding:")
    for label, value in summary(rows).items():
        print(f"  {label}: {value:.2f}x")


if __name__ == "__main__":
    main()
