"""Fig. 12 — broadcast performance comparison.

Runs the broadcast-formulated workloads (PR, SSSP, SpMV) on MCN-BC
(host read + per-DIMM writes), ABC-DIMM (channel-wise broadcast),
AIM-BC (single dedicated-bus transfer), and DIMM-Link (group floods +
one host forward per remote group), at 2 and 3 DIMMs-per-channel.
Speedups are over MCN-BC.  Expected shape: AIM-BC >= DIMM-Link >
ABC-DIMM > MCN-BC, with ABC-DIMM's edge over MCN-BC modest at low DPC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table, geomean
from repro.experiments.common import BC_WORKLOADS
from repro.experiments.runner import RunSpec, SweepRunner, run_specs

#: mechanisms compared (column order of the figure).
SYSTEMS = ("mcn", "abc", "aim", "dimm_link")

#: paper's 2DPC and 3DPC systems, as (name, config) pairs.
DPC_CONFIGS = (("2DPC", "16D-8C"), ("3DPC", "12D-4C"))


def specs(
    size: str = "small",
    dpc_configs: Sequence = DPC_CONFIGS,
    workload_names: Sequence[str] = BC_WORKLOADS,
) -> List[RunSpec]:
    """The grid as a flat spec list: one run per (dpc, workload, system)."""
    return [
        RunSpec(config=config_name, workload=workload_name, size=size, mechanism=system)
        for _dpc_name, config_name in dpc_configs
        for workload_name in workload_names
        for system in SYSTEMS
    ]


def run(
    size: str = "small",
    dpc_configs: Sequence = DPC_CONFIGS,
    workload_names: Sequence[str] = BC_WORKLOADS,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (dpc, workload) with speedups over MCN-BC."""
    batch = iter(run_specs(specs(size, dpc_configs, workload_names), runner))
    rows = []
    for dpc_name, config_name in dpc_configs:
        for workload_name in workload_names:
            results = {system: next(batch) for system in SYSTEMS}
            mcn_time = results["mcn"].total_ps
            rows.append(
                {
                    "dpc": dpc_name,
                    "config": config_name,
                    "workload": workload_name,
                    **{
                        system: mcn_time / results[system].total_ps
                        for system in SYSTEMS
                    },
                }
            )
    return rows


def summary(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Geomean speedups over MCN-BC (paper: DL 2.58x over MCN-BC,
    1.77x over ABC-DIMM; AIM-BC above DL)."""
    means = {s: geomean([float(r[s]) for r in rows]) for s in SYSTEMS}
    return {
        **{f"{s}_geomean": v for s, v in means.items()},
        "dl_over_mcn_bc": means["dimm_link"] / means["mcn"],
        "dl_over_abc": means["dimm_link"] / means["abc"],
        "aim_over_dl": means["aim"] / means["dimm_link"],
    }


def main(size: str = "small") -> None:
    """Print the Fig. 12 grid."""
    rows = run(size=size)
    print("Fig. 12: broadcast speedup over MCN-BC")
    print(
        format_table(
            ["DPC", "workload", "MCN-BC", "ABC-DIMM", "AIM-BC", "DIMM-Link"],
            [
                (r["dpc"], r["workload"], r["mcn"], r["abc"], r["aim"], r["dimm_link"])
                for r in rows
            ],
            precision=2,
        )
    )
    stats = summary(rows)
    print("\ngeomeans (paper: DL=2.58x over MCN-BC, 1.77x over ABC-DIMM):")
    for key, value in stats.items():
        print(f"  {key}: {value:.2f}")


if __name__ == "__main__":
    main()
