"""Discussion experiment — DIMM-Link on disaggregated memory (Sec. VI).

Quantifies the organisation the paper sketches: intra-blade transfers run
over DIMM-Link; inter-blade transfers cross a CXL / RDMA / Ethernet
fabric.  The table shows achieved bandwidth and the intra/inter gap per
fabric technology, which is the case for pairing DL with a fast fabric.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.core.disaggregated import FABRICS, DisaggregatedMemory


def run(nbytes: int = 1 << 20, blade_config: str = "8D-4C") -> List[Dict[str, object]]:
    """One row per fabric: intra- vs inter-blade bandwidth."""
    rows = []
    for name in sorted(FABRICS):
        cluster = DisaggregatedMemory(
            num_blades=2, blade_config=blade_config, fabric_name=name
        )
        intra = cluster.measure_bandwidth(0, 1, nbytes)
        cluster = DisaggregatedMemory(
            num_blades=2, blade_config=blade_config, fabric_name=name
        )
        dimms = cluster.dimms_per_blade
        inter = cluster.measure_bandwidth(0, dimms, nbytes)
        rows.append(
            {
                "fabric": name,
                "intra_blade_gbps": intra,
                "inter_blade_gbps": inter,
                "gap_x": intra / inter,
            }
        )
    return rows


def main(nbytes: int = 1 << 20) -> None:
    """Print the disaggregated-memory exploration."""
    rows = run(nbytes=nbytes)
    print("Sec. VI: DIMM-Link on disaggregated memory (1 MB transfers)")
    print(
        format_table(
            ["fabric", "intra-blade (GB/s)", "inter-blade (GB/s)", "gap"],
            [
                (r["fabric"], r["intra_blade_gbps"], r["inter_blade_gbps"],
                 f'{r["gap_x"]:.1f}x')
                for r in rows
            ],
            precision=2,
        )
    )


if __name__ == "__main__":
    main()
