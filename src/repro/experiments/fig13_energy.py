"""Fig. 13 — energy comparison on 16D-8C.

Computes the per-category energy (DRAM, DL links, buses, NMP static, host
polling/forwarding) for MCN, AIM, and DIMM-Link-opt on every workload.
The paper reports DIMM-Link saving 1.76x vs MCN (mostly IDC energy) and
1.07x vs AIM (via end-to-end time), with AIM having the lowest pure-IDC
energy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table, geomean
from repro.config import SystemConfig
from repro.energy.accounting import energy_report
from repro.experiments.common import P2P_WORKLOADS
from repro.experiments.runner import RunSpec, SweepRunner, run_specs

SYSTEMS = ("mcn", "aim", "dl_opt")


def specs(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = P2P_WORKLOADS,
) -> List[RunSpec]:
    """The grid as a flat spec list: (mcn, aim, dl_opt) per workload."""
    grid: List[RunSpec] = []
    for workload_name in workload_names:
        grid.append(
            RunSpec(config=config_name, workload=workload_name, size=size, mechanism="mcn")
        )
        grid.append(
            RunSpec(config=config_name, workload=workload_name, size=size, mechanism="aim")
        )
        grid.append(
            RunSpec(config=config_name, workload=workload_name, size=size, kind="optimized")
        )
    return grid


def run(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = P2P_WORKLOADS,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """One row per workload with per-system total and IDC energy (J)."""
    config = SystemConfig.named(config_name)
    batch = iter(run_specs(specs(size, config_name, workload_names), runner))
    rows = []
    for workload_name in workload_names:
        results = {"mcn": next(batch), "aim": next(batch), "dl_opt": next(batch)}
        row: Dict[str, object] = {"workload": workload_name}
        for system, result in results.items():
            report = energy_report(config=config, result=result, polling=result.polling)
            row[f"{system}_total_j"] = report.total_j
            row[f"{system}_idc_j"] = report.idc_j
            row[f"{system}_dram_j"] = report.dram_j
        rows.append(row)
    return rows


def summary(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Geomean energy ratios (paper: MCN/DL = 1.76x, AIM/DL = 1.07x)."""
    mcn_over_dl = geomean(
        [float(r["mcn_total_j"]) / float(r["dl_opt_total_j"]) for r in rows]
    )
    aim_over_dl = geomean(
        [float(r["aim_total_j"]) / float(r["dl_opt_total_j"]) for r in rows]
    )
    aim_idc_lowest = all(
        float(r["aim_idc_j"]) <= float(r["mcn_idc_j"]) for r in rows
    )
    return {
        "mcn_over_dl_energy": mcn_over_dl,
        "aim_over_dl_energy": aim_over_dl,
        "aim_has_lowest_idc_energy": float(aim_idc_lowest),
    }


def main(size: str = "small") -> None:
    """Print the Fig. 13 energy table."""
    rows = run(size=size)
    print("Fig. 13: energy (J) on 16D-8C")
    print(
        format_table(
            ["workload", "MCN total", "AIM total", "DL-opt total",
             "MCN idc", "AIM idc", "DL idc"],
            [
                (
                    r["workload"],
                    r["mcn_total_j"],
                    r["aim_total_j"],
                    r["dl_opt_total_j"],
                    r["mcn_idc_j"],
                    r["aim_idc_j"],
                    r["dl_opt_idc_j"],
                )
                for r in rows
            ],
            precision=6,
        )
    )
    stats = summary(rows)
    print("\nratios (paper: MCN/DL = 1.76x, AIM/DL = 1.07x):")
    for key, value in stats.items():
        print(f"  {key}: {value:.2f}")


if __name__ == "__main__":
    main()
