"""Blocked Floyd–Warshall APSP — graph-size x mechanism sweep.

Sweeps graph size x IDC mechanism for the blocked all-pairs shortest
paths kernel (:mod:`repro.workloads.apsp`) on the 16D-8C system.  Every
round of the kernel broadcasts the pivot tile and pivot row/column tiles
to all DIMMs, so the broadcast mechanism dominates: ABC-DIMM and
DIMM-Link pull ahead of MCN (which emulates each flood as a host read +
per-DIMM writes) and the gap widens with graph size as rounds multiply.

``run`` also re-derives the kernel's *numerics* per graph size and
asserts the blocked schedule equals the triple-loop reference exactly —
the simulated traffic of a wrong answer is not worth reporting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table, geomean
from repro.errors import WorkloadError
from repro.experiments.runner import RunSpec, SweepRunner, run_specs
from repro.workloads.apsp import BlockedFloydWarshall

DEFAULT_CONFIG = "16D-8C"

#: mechanisms compared: host baseline, NMP broadcast baselines, DIMM-Link
#: group floods, and the DL-opt placement flow.
MECHANISMS: Tuple[Tuple[str, str, str], ...] = (
    # (label, spec kind, spec mechanism)
    ("cpu", "cpu", "cpu"),
    ("mcn", "nmp", "mcn"),
    ("abc", "nmp", "abc"),
    ("dimm_link", "nmp", "dimm_link"),
    ("dl_opt", "optimized", "dimm_link"),
)

#: (n, block) graph sizes swept, per size preset.
GRAPH_SIZES = {
    "tiny": ((48, 12), (60, 12)),
    "small": ((96, 12), (120, 12)),
    "large": ((192, 16), (256, 16)),
}


def specs(
    size: str = "small",
    config_name: str = DEFAULT_CONFIG,
    graph_sizes: Optional[Sequence[Tuple[int, int]]] = None,
) -> List[RunSpec]:
    """The sweep as a flat spec list: one run per (graph size, mechanism)."""
    sizes = graph_sizes if graph_sizes is not None else GRAPH_SIZES[size]
    return [
        RunSpec(
            config=config_name,
            workload="apsp",
            size=size,
            kind=kind,
            mechanism=mechanism,
            params=f"block={block},n={n}",
        )
        for n, block in sizes
        for _label, kind, mechanism in MECHANISMS
    ]


def verify_exact(n: int, block: int, seed: int = 42) -> None:
    """Assert the blocked schedules equal the reference, or raise."""
    workload = BlockedFloydWarshall(n=n, block=block, seed=seed)
    reference = workload.reference_distances()
    for mechanism in ("cpu", "dimm_link", "dl_opt"):
        if workload.distances_via(mechanism) != reference:
            raise WorkloadError(
                f"apsp: {mechanism} schedule diverged from the reference "
                f"at n={n}, block={block}"
            )


def run(
    size: str = "small",
    config_name: str = DEFAULT_CONFIG,
    graph_sizes: Optional[Sequence[Tuple[int, int]]] = None,
    runner: Optional[SweepRunner] = None,
    verify: bool = True,
) -> List[Dict[str, object]]:
    """One row per (graph size, mechanism): speedup over the CPU baseline.

    With ``verify`` (the default), each graph size's blocked numerics are
    checked against the triple-loop reference before its timings are
    reported.
    """
    sizes = graph_sizes if graph_sizes is not None else GRAPH_SIZES[size]
    results = iter(run_specs(specs(size, config_name, sizes), runner))
    rows = []
    for n, block in sizes:
        if verify:
            verify_exact(n, block)
        cpu_ps: Optional[int] = None
        for label, _kind, _mechanism in MECHANISMS:
            result = next(results)
            if label == "cpu":
                cpu_ps = result.total_ps
            rows.append(
                {
                    "n": n,
                    "block": block,
                    "mechanism": label,
                    "time_us": result.time_us,
                    "broadcasts": result.counter("core.broadcasts"),
                    "speedup": cpu_ps / result.total_ps,
                    "exact": verify,
                }
            )
    return rows


def summary(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Geomean speedup over the CPU baseline per mechanism."""
    return {
        f"{label}_geomean": geomean(
            [float(r["speedup"]) for r in rows if r["mechanism"] == label]
        )
        for label, _kind, _mechanism in MECHANISMS
    }


def main(size: str = "small") -> None:
    """Print the APSP sweep."""
    rows = run(size=size)
    print("Blocked Floyd-Warshall APSP: speedup over CPU by mechanism")
    print(
        format_table(
            ["n", "block", "mechanism", "time us", "broadcasts", "speedup", "exact"],
            [
                (
                    r["n"],
                    r["block"],
                    r["mechanism"],
                    r["time_us"],
                    int(float(r["broadcasts"])),
                    r["speedup"],
                    "yes" if r["exact"] else "-",
                )
                for r in rows
            ],
            precision=2,
        )
    )
    print("\ngeomean speedup over CPU-forwarding:")
    for label, value in summary(rows).items():
        print(f"  {label}: {value:.2f}x")


if __name__ == "__main__":
    main()
