"""Table II — SerDes technology comparison (rate, reach, energy)."""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.core.serdes import table2


def run() -> List[Dict[str, object]]:
    """One row per SerDes technology, plus the pins a 25 GB/s link needs."""
    rows = []
    for tech in table2().values():
        rows.append(
            {
                "name": tech.name,
                "media": tech.media,
                "rate_gbps_per_pin": tech.signal_rate_gbps_per_pin,
                "reach_mm": tech.reach_mm,
                "energy_pj_per_bit": tech.energy_pj_per_bit,
                "pins_for_25GBps": tech.pins_for_bandwidth(25.0),
            }
        )
    return rows


def main() -> None:
    """Print Table II."""
    rows = run()
    print("Table II: SerDes techniques")
    print(
        format_table(
            ["tech", "media", "Gb/s/pin", "reach (mm)", "pJ/b", "pins for 25 GB/s"],
            [
                (
                    r["name"],
                    r["media"],
                    r["rate_gbps_per_pin"],
                    r["reach_mm"],
                    r["energy_pj_per_bit"],
                    r["pins_for_25GBps"],
                )
                for r in rows
            ],
            precision=2,
        )
    )


if __name__ == "__main__":
    main()
