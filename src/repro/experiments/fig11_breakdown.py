"""Fig. 11 — data-transfer breakdown of DIMM-Link-opt.

For each workload at 16D-8C, splits the bytes moved into local DRAM
traffic, DL-link (intra-group) traffic, and host-CPU-forwarded traffic.
The paper's takeaway: with the thread-placement optimization only ~29%
of IDC traffic still crosses the host.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.common import P2P_WORKLOADS
from repro.experiments.runner import RunSpec, SweepRunner, run_specs


def specs(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = P2P_WORKLOADS,
) -> List[RunSpec]:
    """One DL-opt run per workload."""
    return [
        RunSpec(config=config_name, workload=name, size=size, kind="optimized")
        for name in workload_names
    ]


def run(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = P2P_WORKLOADS,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """One row per workload with byte shares by path."""
    results = run_specs(specs(size, config_name, workload_names), runner)
    rows = []
    for name, result in zip(workload_names, results):
        breakdown = result.traffic_breakdown
        total = sum(breakdown.values()) or 1.0
        rows.append(
            {
                "workload": name,
                "local_share": breakdown["local"] / total,
                "intra_group_share": breakdown["intra_group"] / total,
                "forwarded_share": breakdown["forwarded"] / total,
                "idc_forwarded_fraction": result.forwarded_fraction,
            }
        )
    return rows


def mean_forwarded_fraction(rows: List[Dict[str, float]]) -> float:
    """Average share of IDC traffic crossing the host (paper: ~0.29)."""
    values = [r["idc_forwarded_fraction"] for r in rows if r["idc_forwarded_fraction"] > 0]
    return sum(values) / len(values) if values else 0.0


def main(size: str = "small") -> None:
    """Print the Fig. 11 breakdown."""
    rows = run(size=size)
    print("Fig. 11: DIMM-Link-opt data transfer breakdown (16D-8C)")
    print(
        format_table(
            ["workload", "local", "DL intra-group", "CPU-forwarded", "fwd share of IDC"],
            [
                (
                    r["workload"],
                    r["local_share"],
                    r["intra_group_share"],
                    r["forwarded_share"],
                    r["idc_forwarded_fraction"],
                )
                for r in rows
            ],
        )
    )
    print(
        f"\nmean forwarded fraction of IDC traffic: "
        f"{mean_forwarded_fraction(rows):.2f} (paper: ~0.29)"
    )


if __name__ == "__main__":
    main()
