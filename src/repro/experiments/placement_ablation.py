"""Placement ablation — when does page migration beat routing?

The paper's answer to remote traffic is a faster interconnect (DIMM-Link)
and smarter *thread* placement (Algorithm 1).  CODA's answer is to move
the *data*.  This ablation runs both levers against each other over a
policy x workload x mechanism grid:

* ``static``       — the loader shard; remote traffic is paid every round
  and only routing (the mechanism) can help.
* ``first_touch``  — pages land on their first toucher; no steady-state
  remote traffic, no migration cost (the offline-ideal bound).
* ``next_touch``   — pages start on the static shard and chase touchers
  after repeated remote access; pays one ``PAGE_BYTES`` copy per page.
* ``profiled``     — CODA-style: a profiling pass pre-places each page on
  its majority toucher.

``hotpage`` (every page on one hot DIMM) is the skew designed to make
migration win; ``pagerank_stream`` is the realistic LiveJournal-scale
graph pattern.  On a slow mechanism (``mcn`` host forwarding) migration
pays off fast; on ``dimm_link`` the crossover needs more re-touches —
exactly the routing-vs-migration trade the ROADMAP item asks to show.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.runner import RunSpec, SweepRunner, run_specs

#: data-placement policies compared, in row order.
POLICIES = ("static", "first_touch", "next_touch", "profiled")
#: skewed microbenchmark + realistic streamed graph.
WORKLOADS = ("hotpage", "pagerank_stream")
#: slowest (host-forwarded) and fastest (DL) IDC mechanisms.
MECHANISMS = ("mcn", "dimm_link")


def specs(
    size: str = "small",
    config_name: str = "8D-4C",
    workload_names: Sequence[str] = WORKLOADS,
    mechanisms: Sequence[str] = MECHANISMS,
) -> List[RunSpec]:
    """The grid as a flat spec list (workload-major, policy-minor)."""
    return [
        RunSpec(
            config=config_name,
            workload=workload_name,
            size=size,
            mechanism=mechanism,
            data_placement=policy,
        )
        for workload_name in workload_names
        for mechanism in mechanisms
        for policy in POLICIES
    ]


def run(
    size: str = "small",
    config_name: str = "8D-4C",
    workload_names: Sequence[str] = WORKLOADS,
    mechanisms: Sequence[str] = MECHANISMS,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, float]]:
    """Per (workload, mechanism): time and migration volume per policy.

    Keys are ``"workload/mechanism"``; each row carries ``{policy}_us``
    and ``{policy}_migrations`` plus the two headline ratios:
    ``migration_speedup`` (static vs next-touch — the online policy) and
    ``best_speedup`` (static vs the best dynamic policy).
    """
    grid = specs(size, config_name, workload_names, mechanisms)
    results = iter(run_specs(grid, runner))
    out: Dict[str, Dict[str, float]] = {}
    for workload_name in workload_names:
        for mechanism in mechanisms:
            row: Dict[str, float] = {}
            for policy in POLICIES:
                result = next(results)
                row[f"{policy}_us"] = result.time_us
                row[f"{policy}_migrations"] = result.stats.sum_suffix(
                    "placement.migrations"
                )
            row["migration_speedup"] = row["static_us"] / row["next_touch_us"]
            row["best_speedup"] = row["static_us"] / min(
                row[f"{p}_us"] for p in POLICIES[1:]
            )
            out[f"{workload_name}/{mechanism}"] = row
    return out


def main(size: str = "small") -> None:
    """Print the ablation."""
    results = run(size=size)
    print("Placement ablation: static shard vs page migration policies")
    print(
        format_table(
            ["workload/mechanism", "static (us)", "first (us)", "next (us)",
             "profiled (us)", "next migs", "mig speedup", "best speedup"],
            [
                (
                    key,
                    row["static_us"],
                    row["first_touch_us"],
                    row["next_touch_us"],
                    row["profiled_us"],
                    row["next_touch_migrations"],
                    row["migration_speedup"],
                    row["best_speedup"],
                )
                for key, row in results.items()
            ],
            precision=2,
        )
    )
    winners = sum(1 for row in results.values() if row["migration_speedup"] > 1.0)
    print(
        f"\nnext-touch beats static on {winners}/{len(results)} grid points "
        "(migration beats routing where re-touch volume amortizes the copy)"
    )


if __name__ == "__main__":
    main()
