"""Mapping ablation — what distance-aware task mapping buys.

The Fig. 10 workload model co-locates each thread with its data block
under the natural placement, so Algorithm 1's headline gain there is
small (the paper reports 1.12x).  This ablation exposes the mechanism
directly, as the paper describes it (Sec. IV-B): threads start in a
*random* placement, the profiler builds the traffic table M, and the
min-cost max-flow solver derives the optimized placement.  Reported:
random vs optimized vs natural, plus the Algorithm-1 cost of each.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table, geomean
from repro.config import SystemConfig
from repro.experiments.common import build_workload, threads_for
from repro.workloads.base import Workload
from repro.experiments.runner import RunSpec, SweepRunner, run_specs
from repro.mapping.placement import (
    cost_table,
    distance_aware_placement,
    distance_matrix,
    placement_cost,
    random_placement,
)
from repro.mapping.profile import profile_traffic

#: placement policies compared, in row order.
POLICIES = ("random", "optimized", "natural")


def specs(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = ("pagerank", "hotspot"),
    seed: int = 7,
) -> List[RunSpec]:
    """The ablation as a flat spec list: one run per (workload, policy)."""
    return [
        RunSpec(
            config=config_name,
            workload=workload_name,
            size=size,
            placement=policy,
            placement_seed=seed,
        )
        for workload_name in workload_names
        for policy in POLICIES
    ]


def run(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = ("pagerank", "hotspot"),
    seed: int = 7,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[str, float]]:
    """Per workload: run time and Algorithm-1 cost per placement policy."""
    results = iter(run_specs(specs(size, config_name, workload_names, seed), runner))
    out: Dict[str, Dict[str, float]] = {}
    for workload_name in workload_names:
        # recompute the (cheap, deterministic) Algorithm-1 inputs so the
        # rows can report the cost each policy's placement incurs
        workload = build_workload(workload_name, size)
        config = SystemConfig.named(config_name)
        threads = threads_for(config)
        traffic = profile_traffic(
            workload.thread_factories(threads, config.num_dimms), config.num_dimms
        )
        costs = cost_table(traffic, distance_matrix(config))
        placements = {
            "random": random_placement(
                threads, config.num_dimms, config.nmp.cores_per_dimm, seed
            ),
            "optimized": distance_aware_placement(traffic, config),
            "natural": Workload.block_placement(
                threads, config.num_dimms, config.nmp.cores_per_dimm
            ),
        }
        row: Dict[str, float] = {}
        for policy in POLICIES:
            result = next(results)
            row[f"{policy}_us"] = result.time_us
            row[f"{policy}_cost"] = placement_cost(placements[policy], costs)
        row["speedup"] = row["random_us"] / row["optimized_us"]
        out[workload_name] = row
    return out


def main(size: str = "small") -> None:
    """Print the ablation."""
    results = run(size=size)
    print("Mapping ablation: random initial placement vs Algorithm 1 vs natural")
    print(
        format_table(
            ["workload", "random (us)", "optimized (us)", "natural (us)",
             "speedup", "random cost", "optimized cost", "natural cost"],
            [
                (
                    name,
                    row["random_us"],
                    row["optimized_us"],
                    row["natural_us"],
                    row["speedup"],
                    row["random_cost"],
                    row["optimized_cost"],
                    row["natural_cost"],
                )
                for name, row in results.items()
            ],
            precision=2,
        )
    )
    print(
        f"\ngeomean recovery: "
        f"{geomean([row['speedup'] for row in results.values()]):.2f}x"
    )


if __name__ == "__main__":
    main()
