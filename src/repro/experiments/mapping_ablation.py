"""Mapping ablation — what distance-aware task mapping buys.

The Fig. 10 workload model co-locates each thread with its data block
under the natural placement, so Algorithm 1's headline gain there is
small (the paper reports 1.12x).  This ablation exposes the mechanism
directly, as the paper describes it (Sec. IV-B): threads start in a
*random* placement, the profiler builds the traffic table M, and the
min-cost max-flow solver derives the optimized placement.  Reported:
random vs optimized vs natural, plus the Algorithm-1 cost of each.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from repro.analysis.report import format_table, geomean
from repro.config import SystemConfig
from repro.experiments.common import build_workload, threads_for
from repro.mapping.placement import (
    cost_table,
    distance_aware_placement,
    distance_matrix,
    placement_cost,
)
from repro.mapping.profile import profile_traffic
from repro.nmp.system import NMPSystem


def random_placement(num_threads: int, num_dimms: int, per_dimm: int, seed: int = 7):
    """A random feasible placement (<= per_dimm threads per DIMM)."""
    rng = random.Random(seed)
    slots = [d for d in range(num_dimms) for _ in range(per_dimm)]
    rng.shuffle(slots)
    return slots[:num_threads]


def run(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = ("pagerank", "hotspot"),
    seed: int = 7,
) -> Dict[str, Dict[str, float]]:
    """Per workload: run time and Algorithm-1 cost per placement policy."""
    out: Dict[str, Dict[str, float]] = {}
    for workload_name in workload_names:
        workload = build_workload(workload_name, size)
        config = SystemConfig.named(config_name)
        threads = threads_for(config)
        traffic = profile_traffic(
            workload.thread_factories(threads, config.num_dimms), config.num_dimms
        )
        costs = cost_table(traffic, distance_matrix(config))
        placements = {
            "random": random_placement(
                threads, config.num_dimms, config.nmp.cores_per_dimm, seed
            ),
            "optimized": distance_aware_placement(traffic, config),
        }
        row: Dict[str, float] = {}
        for policy, placement in placements.items():
            system = NMPSystem(SystemConfig.named(config_name), idc="dimm_link")
            result = system.run(
                workload.thread_factories(threads, config.num_dimms),
                placement=placement,
                workload_name=workload_name,
            )
            row[f"{policy}_us"] = result.time_us
            row[f"{policy}_cost"] = placement_cost(placement, costs)
        row["speedup"] = row["random_us"] / row["optimized_us"]
        out[workload_name] = row
    return out


def main(size: str = "small") -> None:
    """Print the ablation."""
    results = run(size=size)
    print("Mapping ablation: random initial placement vs Algorithm 1")
    print(
        format_table(
            ["workload", "random (us)", "optimized (us)", "speedup",
             "random cost", "optimized cost"],
            [
                (
                    name,
                    row["random_us"],
                    row["optimized_us"],
                    row["speedup"],
                    row["random_cost"],
                    row["optimized_cost"],
                )
                for name, row in results.items()
            ],
            precision=2,
        )
    )
    print(
        f"\ngeomean recovery: "
        f"{geomean([row['speedup'] for row in results.values()]):.2f}x"
    )


if __name__ == "__main__":
    main()
