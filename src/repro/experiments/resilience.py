"""Resilience sweep — IDC bandwidth under injected DL-link failures.

Kills a growing fraction of each DL group's bridge links mid-run (via a
:class:`~repro.faults.FaultSchedule`) and measures the achieved inter-DIMM
bandwidth of each IDC mechanism on a uniform-random remote-access kernel.

Expected shape:

* **DIMM-Link** degrades gracefully: bandwidth drops monotonically as
  links die (surviving traffic reroutes over longer bridge paths, and
  once the watchdog partitions the group the remainder escalates to host
  CPU-forwarding), but never reaches zero — the hybrid-routing fallback
  keeps every pair connected through the memory channels.
* **CPU-forwarding (MCN), AIM, ABC-DIMM** are flat: they own no DL
  bridge, so DL-link faults do not apply to them (the schedule installs
  as a no-op).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.faults import FaultSchedule, LinkDown
from repro.interconnect.topology import Topology
from repro.nmp.results import RunResult
from repro.nmp.system import NMPSystem
from repro.sim.time import ns
from repro.workloads.microbench import UniformRandom

DEFAULT_FRACTIONS = (0.0, 0.34, 0.67, 1.0)
MECHANISMS = ("mcn", "aim", "abc", "dimm_link")

#: injection time: late enough that traffic is in flight (the watchdog
#: has to *detect* the failures, and early packets see a healthy net),
#: early enough that most of the kernel runs degraded.
FAULT_TIME_PS = ns(300)

_OPS = {"tiny": 20, "small": 60, "large": 200}


def link_down_schedule(
    config: SystemConfig, fraction: float, time_ps: int = FAULT_TIME_PS
) -> FaultSchedule:
    """Kill the first ``round(fraction * edges)`` links of every group."""
    faults = []
    for group in config.groups:
        topology = Topology(config.topology, len(group))
        count = round(fraction * len(topology.edges))
        for a, b in topology.edges[:count]:
            faults.append(
                LinkDown(time_ps=time_ps, dimm_a=group[a], dimm_b=group[b])
            )
    return FaultSchedule(faults)


def _run(
    config: SystemConfig,
    workload: UniformRandom,
    mechanism: str,
    faults: Optional[FaultSchedule],
) -> RunResult:
    system = NMPSystem(config, idc=mechanism, faults=faults)
    factories = workload.thread_factories(
        config.num_dimms * config.nmp.cores_per_dimm, config.num_dimms
    )
    return system.run(factories, workload_name=workload.name)


def _idc_bytes(result: RunResult) -> float:
    """Bytes that crossed DIMM boundaries, whatever media carried them."""
    return (
        result.counter("idc.intra_group_bytes")
        + result.counter("idc.dedicated_bus_bytes")
        + result.counter("idc.channel_bc_bytes")
        + result.counter("idc.forwarded_bytes")
    )


def run(
    size: str = "small",
    config_name: str = "8D-4C",
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    mechanisms: Sequence[str] = MECHANISMS,
) -> List[Dict[str, object]]:
    """One row per (mechanism, failed-link fraction)."""
    workload = UniformRandom(
        ops_per_thread=_OPS.get(size, 60),
        remote_fraction=0.6,
        write_fraction=0.3,
        nbytes=512,
        seed=11,
    )
    rows = []
    for mechanism in mechanisms:
        for fraction in fractions:
            config = SystemConfig.named(config_name)
            schedule = link_down_schedule(config, fraction)
            result = _run(config, workload, mechanism, schedule)
            gbps = _idc_bytes(result) / result.time_ps * 1000.0  # B/ps -> GB/s
            rows.append(
                {
                    "mechanism": mechanism,
                    "fail_fraction": fraction,
                    "links_down": result.counter("fault.links_down"),
                    "idc_gbps": gbps,
                    "rerouted": result.counter("dl.rerouted_to_host"),
                    "availability": result.counter("dl.link_availability_min")
                    if mechanism == "dimm_link"
                    else 1.0,
                }
            )
    return rows


def main(size: str = "small") -> None:
    """Print the resilience sweep."""
    rows = run(size=size)
    print("Resilience: achieved IDC bandwidth vs injected link-failure rate")
    print(
        format_table(
            [
                "mechanism",
                "fail frac",
                "links down",
                "IDC GB/s",
                "rerouted ops",
                "min avail",
            ],
            [
                (
                    r["mechanism"],
                    r["fail_fraction"],
                    int(r["links_down"]),
                    r["idc_gbps"],
                    int(r["rerouted"]),
                    r["availability"],
                )
                for r in rows
            ],
            precision=3,
        )
    )
    dl = [r for r in rows if r["mechanism"] == "dimm_link"]
    print(
        "\nDIMM-Link bandwidth retained at worst injection: "
        f"{dl[-1]['idc_gbps'] / dl[0]['idc_gbps']:.0%} "
        "(host-forwarding failover keeps it nonzero)"
    )


if __name__ == "__main__":
    main()
