"""Resilience sweep — IDC bandwidth under injected DL-link failures.

Kills a growing fraction of each DL group's bridge links mid-run (via a
:class:`~repro.faults.FaultSchedule`) and measures the achieved inter-DIMM
bandwidth of each IDC mechanism on a uniform-random remote-access kernel.

Expected shape:

* **DIMM-Link** degrades gracefully: bandwidth drops monotonically as
  links die (surviving traffic reroutes over longer bridge paths, and
  once the watchdog partitions the group the remainder escalates to host
  CPU-forwarding), but never reaches zero — the hybrid-routing fallback
  keeps every pair connected through the memory channels.
* **CPU-forwarding (MCN), AIM, ABC-DIMM** are flat: they own no DL
  bridge, so DL-link faults do not apply to them (the schedule installs
  as a no-op).

The sweep includes a deliberately tiny nonzero fraction (0.05): any
nonzero ``fail_fraction`` kills at least one link per group (see
:func:`~repro.experiments.runner.link_down_schedule`), so even the
smallest injection point measures a real degraded run instead of
silently replaying the fault-free one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments.runner import (
    FAULT_TIME_PS,
    RunSpec,
    SweepRunner,
    link_down_schedule,
    run_specs,
)
from repro.nmp.results import RunResult

DEFAULT_FRACTIONS = (0.0, 0.05, 0.34, 0.67, 1.0)
MECHANISMS = ("mcn", "aim", "abc", "dimm_link")

#: seed of the uniform-random IDC-stress kernel (spec-level, so every
#: mechanism/fraction point replays the identical op streams).
WORKLOAD_SEED = 11

__all__ = [
    "DEFAULT_FRACTIONS",
    "MECHANISMS",
    "FAULT_TIME_PS",
    "link_down_schedule",
    "specs",
    "run",
    "main",
]


def _idc_bytes(result: RunResult) -> float:
    """Bytes that crossed DIMM boundaries, whatever media carried them."""
    return (
        result.counter("idc.intra_group_bytes")
        + result.counter("idc.dedicated_bus_bytes")
        + result.counter("idc.channel_bc_bytes")
        + result.counter("idc.forwarded_bytes")
    )


def specs(
    size: str = "small",
    config_name: str = "8D-4C",
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    mechanisms: Sequence[str] = MECHANISMS,
) -> List[RunSpec]:
    """The sweep as a flat spec list: one run per (mechanism, fraction)."""
    return [
        RunSpec(
            config=config_name,
            workload="uniform_random",
            size=size,
            seed=WORKLOAD_SEED,
            mechanism=mechanism,
            fault_fraction=fraction,
        )
        for mechanism in mechanisms
        for fraction in fractions
    ]


def run(
    size: str = "small",
    config_name: str = "8D-4C",
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    mechanisms: Sequence[str] = MECHANISMS,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (mechanism, failed-link fraction)."""
    results = iter(
        run_specs(specs(size, config_name, fractions, mechanisms), runner)
    )
    rows = []
    for mechanism in mechanisms:
        for fraction in fractions:
            result = next(results)
            gbps = _idc_bytes(result) / result.time_ps * 1000.0  # B/ps -> GB/s
            rows.append(
                {
                    "mechanism": mechanism,
                    "fail_fraction": fraction,
                    "links_down": result.counter("fault.links_down"),
                    "idc_gbps": gbps,
                    "rerouted": result.counter("dl.rerouted_to_host"),
                    "availability": result.counter("dl.link_availability_min")
                    if mechanism == "dimm_link"
                    else 1.0,
                }
            )
    return rows


def main(size: str = "small") -> None:
    """Print the resilience sweep."""
    rows = run(size=size)
    print("Resilience: achieved IDC bandwidth vs injected link-failure rate")
    print(
        format_table(
            [
                "mechanism",
                "fail frac",
                "links down",
                "IDC GB/s",
                "rerouted ops",
                "min avail",
            ],
            [
                (
                    r["mechanism"],
                    r["fail_fraction"],
                    int(r["links_down"]),
                    r["idc_gbps"],
                    int(r["rerouted"]),
                    r["availability"],
                )
                for r in rows
            ],
            precision=3,
        )
    )
    dl = [r for r in rows if r["mechanism"] == "dimm_link"]
    print(
        "\nDIMM-Link bandwidth retained at worst injection: "
        f"{dl[-1]['idc_gbps'] / dl[0]['idc_gbps']:.0%} "
        "(host-forwarding failover keeps it nonzero)"
    )


if __name__ == "__main__":
    main()
