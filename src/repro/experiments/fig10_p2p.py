"""Fig. 10 — P2P performance comparison.

For every system configuration (4D-2C … 16D-8C) and Table IV workload,
measures the speedup of MCN, AIM, DIMM-Link-base, and DIMM-Link-opt over
the fixed 16-core CPU baseline, plus the ratio of non-overlapped IDC
cycles (the line plot).  The paper's headline numbers (5.93x over CPU;
2.42x / 1.87x / 1.12x over MCN / AIM / DL-base) are geomeans over this
grid; :func:`summary` recomputes them from the rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table, geomean
from repro.config import PAPER_CONFIG_NAMES
from repro.experiments.common import P2P_WORKLOADS
from repro.experiments.runner import RunSpec, SweepRunner, run_specs

#: systems compared in the bar plot (cpu is the common denominator).
SYSTEMS = ("mcn", "aim", "dl_base", "dl_opt")

#: the CPU baseline is one fixed machine (16 cores, 8 channels).
CPU_REFERENCE_CONFIG = "16D-8C"


def specs(
    size: str = "small",
    config_names: Sequence[str] = PAPER_CONFIG_NAMES,
    workload_names: Sequence[str] = P2P_WORKLOADS,
) -> List[RunSpec]:
    """The grid as a flat spec list: cpu + (mcn, aim, dl_base, dl_opt)
    per (workload, config), in row order."""
    grid: List[RunSpec] = []
    for workload_name in workload_names:
        grid.append(
            RunSpec(
                config=CPU_REFERENCE_CONFIG,
                workload=workload_name,
                size=size,
                kind="cpu",
                mechanism="cpu",
            )
        )
        for config_name in config_names:
            for mechanism in ("mcn", "aim", "dimm_link"):
                grid.append(
                    RunSpec(
                        config=config_name,
                        workload=workload_name,
                        size=size,
                        mechanism=mechanism,
                    )
                )
            grid.append(
                RunSpec(
                    config=config_name,
                    workload=workload_name,
                    size=size,
                    kind="optimized",
                )
            )
    return grid


def run(
    size: str = "small",
    config_names: Sequence[str] = PAPER_CONFIG_NAMES,
    workload_names: Sequence[str] = P2P_WORKLOADS,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """Produce one row per (config, workload) with per-system speedups."""
    results = iter(run_specs(specs(size, config_names, workload_names), runner))
    rows: List[Dict[str, object]] = []
    for workload_name in workload_names:
        cpu = next(results)
        for config_name in config_names:
            mcn, aim, base, opt = (next(results) for _ in range(4))
            rows.append(
                {
                    "config": config_name,
                    "workload": workload_name,
                    "cpu_us": cpu.time_us,
                    "mcn": cpu.total_ps / mcn.total_ps,
                    "aim": cpu.total_ps / aim.total_ps,
                    "dl_base": cpu.total_ps / base.total_ps,
                    "dl_opt": cpu.total_ps / opt.total_ps,
                    "mcn_idc_ratio": mcn.nonoverlapped_idc_ratio,
                    "dl_base_idc_ratio": base.nonoverlapped_idc_ratio,
                    "dl_opt_idc_ratio": opt.nonoverlapped_idc_ratio,
                    "dl_opt_fwd_fraction": opt.forwarded_fraction,
                }
            )
    return rows


def summary(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Geomean speedups and the paper's headline ratios."""
    means = {system: geomean([float(r[system]) for r in rows]) for system in SYSTEMS}
    return {
        **{f"{system}_geomean": value for system, value in means.items()},
        "dl_opt_over_mcn": means["dl_opt"] / means["mcn"],
        "dl_opt_over_aim": means["dl_opt"] / means["aim"],
        "dl_opt_over_dl_base": means["dl_opt"] / means["dl_base"],
    }


def main(size: str = "small") -> None:
    """Print the Fig. 10 grid and headline geomeans."""
    rows = run(size=size)
    print(f"Fig. 10: speedup over the 16-core CPU baseline (size={size})")
    print(
        format_table(
            ["config", "workload", "MCN", "AIM", "DL-base", "DL-opt", "DL-opt IDC ratio"],
            [
                (
                    r["config"],
                    r["workload"],
                    r["mcn"],
                    r["aim"],
                    r["dl_base"],
                    r["dl_opt"],
                    r["dl_opt_idc_ratio"],
                )
                for r in rows
            ],
            precision=2,
        )
    )
    stats = summary(rows)
    print("\nheadline geomeans (paper: DL-opt 5.93x over CPU; "
          "2.42x/1.87x/1.12x over MCN/AIM/DL-base):")
    for key, value in stats.items():
        print(f"  {key}: {value:.2f}")


if __name__ == "__main__":
    main()
