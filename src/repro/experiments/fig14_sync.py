"""Fig. 14 — synchronization sensitivity.

Panel (a): a microbenchmark computing for N instructions between global
barriers, swept over N, on MCN, AIM, DIMM-Link-Central, and
DIMM-Link-Hier.  The hierarchical scheme's advantage grows as the
interval narrows (paper: 5.3x over MCN and 2.2x over AIM at 500
instructions).  Panel (b): the TS.Pow end-to-end workload (paper:
DL-Hier 1.46-1.74x over MCN).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.experiments.common import build_workload, run_nmp, threads_for
from repro.nmp.system import NMPSystem
from repro.workloads.microbench import SyncInterval

#: (mechanism, sync mode) pairs in the figure.
SYSTEMS = (
    ("mcn", "central", "MCN"),
    ("aim", "central", "AIM"),
    ("dimm_link", "central", "DL-Central"),
    ("dimm_link", "hierarchical", "DL-Hier"),
)

DEFAULT_INTERVALS = (500, 1000, 2000, 5000)


def run_intervals(
    intervals: Sequence[int] = DEFAULT_INTERVALS,
    config_name: str = "16D-8C",
    barriers: int = 10,
) -> List[Dict[str, float]]:
    """Panel (a): one row per interval with per-system times (us)."""
    config = SystemConfig.named(config_name)
    rows = []
    for interval in intervals:
        workload = SyncInterval(interval_instructions=interval, barriers=barriers)
        row: Dict[str, float] = {"interval": interval}
        for mechanism, mode, label in SYSTEMS:
            system = NMPSystem(
                SystemConfig.named(config_name), idc=mechanism, sync_mode=mode
            )
            result = system.run(
                workload.thread_factories(threads_for(config), config.num_dimms),
                workload_name="sync_interval",
            )
            row[label] = result.time_us
        rows.append(row)
    return rows


def run_tspow(size: str = "small", config_name: str = "16D-8C") -> Dict[str, float]:
    """Panel (b): TS.Pow end-to-end times per system (us)."""
    workload = build_workload("ts_pow", size)
    out = {}
    for mechanism, mode, label in SYSTEMS:
        result = run_nmp(
            SystemConfig.named(config_name), workload, mechanism, sync_mode=mode
        )
        out[label] = result.time_us
    return out


def speedups_at(rows: List[Dict[str, float]], interval: int) -> Dict[str, float]:
    """DL-Hier's speedup over each baseline at one interval."""
    row = next(r for r in rows if r["interval"] == interval)
    return {
        label: row[label] / row["DL-Hier"]
        for _m, _s, label in SYSTEMS
        if label != "DL-Hier"
    }


def main() -> None:
    """Print both Fig. 14 panels."""
    rows = run_intervals()
    print("Fig. 14(a): time (us) vs synchronization interval (instructions)")
    labels = [label for _m, _s, label in SYSTEMS]
    print(
        format_table(
            ["interval"] + labels,
            [[r["interval"]] + [r[label] for label in labels] for r in rows],
            precision=1,
        )
    )
    fastest = speedups_at(rows, rows[0]["interval"])
    print(f"\nDL-Hier speedup at {rows[0]['interval']}-instr interval "
          f"(paper: 5.3x over MCN, 2.2x over AIM): {fastest}")
    tspow = run_tspow()
    print("\nFig. 14(b): TS.Pow end-to-end (us):", tspow)
    print(f"DL-Hier over MCN: {tspow['MCN'] / tspow['DL-Hier']:.2f}x "
          f"(paper: 1.46-1.74x)")


if __name__ == "__main__":
    main()
