"""Declarative sweep execution: RunSpec grids, caching, and fan-out.

Every figure experiment is a grid of *independent* simulations.  This
module turns each grid point into a :class:`RunSpec` — a frozen, hashable
description of one run (config + overrides, workload, size, seed,
mechanism, polling, sync mode, run kind) — and executes whole grids
through one funnel, :func:`run_specs`, which adds two things the ad-hoc
loops could not:

* **Memoisation** — specs content-hash to a stable key
  (:meth:`RunSpec.cache_key`); finished results persist in a
  :class:`~repro.results_cache.ResultsCache`, so identical points shared
  between figures (and between repeated invocations) simulate once.
* **Parallelism** — cache misses fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs`` workers).
  Results always come back in input order, and because every simulation
  is bit-deterministic (see ``tests/test_determinism.py``) the output is
  byte-identical whatever the worker count.
* **Supervision** — long sweeps survive their own harness.  Each spec is
  dispatched individually and **checkpointed to the cache the moment it
  completes**, so an interrupted sweep resumes from the cache with zero
  lost work.  Failed specs are retried with capped exponential backoff;
  specs that exhaust their budget are quarantined into a **dead-letter
  list** (:attr:`SweepRunner.dead_letters`) instead of aborting the
  sweep.  A per-spec wall-clock timeout arms the simulation engine's
  :class:`~repro.sim.engine.StallWatchdog` (rich where-did-it-hang
  diagnosis) with a SIGALRM backstop for hangs outside the simulator.
  A :class:`~concurrent.futures.process.BrokenProcessPool` respawns the
  pool; if respawns keep dying, execution degrades to in-process serial.

The CLI configures a process-wide default runner (:func:`configure`);
experiments call :func:`run_specs` and inherit its jobs/cache settings.
Library callers that never configure anything get the safe default:
serial execution, no cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.config import SystemConfig
from repro.errors import (
    ConfigError,
    DeadlockError,
    SimStallError,
    SpecTimeoutError,
    SweepExecutionError,
)
from repro.experiments.common import (
    build_workload,
    run_cpu,
    run_optimized,
    threads_for,
)
from repro.experiments.deadletter import DeadLetterStore
from repro.faults import FaultSchedule, LinkDown
from repro.host.cpu import HostCPUSystem
from repro.interconnect.topology import Topology
from repro.mapping.pagetable import DATA_PLACEMENTS, PageTable, make_policy
from repro.mapping.placement import (
    co_optimized_placement,
    distance_aware_placement,
    random_placement,
)
from repro.mapping.profile import profile_traffic, profiled_page_assignment
from repro.nmp.results import RunResult
from repro.nmp.system import NMPSystem
from repro.results_cache import CODE_VERSION, ResultsCache
from repro.sim.engine import StallWatchdog, clear_watchdog, install_watchdog
from repro.sim.time import ns
from repro.workloads.base import Workload
from repro.workloads.microbench import UniformRandom

_KINDS = ("cpu", "nmp", "optimized")
_PLACEMENTS = ("natural", "random", "optimized")

#: ops per thread of the ``uniform_random`` IDC-stress kernel, by size.
UNIFORM_OPS = {"tiny": 20, "small": 60, "large": 200}

#: fault-injection time of spec-driven link-down schedules: late enough
#: that traffic is in flight, early enough that most of the kernel runs
#: degraded (matches the resilience experiment).
FAULT_TIME_PS = ns(300)

#: first retry delay; doubles per attempt up to :data:`RETRY_BACKOFF_CAP_S`.
RETRY_BACKOFF_S = 0.05
RETRY_BACKOFF_CAP_S = 2.0

#: how far past ``spec_timeout`` the worker's SIGALRM backstop fires —
#: the engine watchdog gets first shot so a hang *inside* the simulator
#: reports its blocked processes before the coarse alarm triggers.
ALARM_GRACE = 1.25

#: extra wall-clock slack the parent grants an in-flight spec beyond the
#: worker-side timeout before it declares the worker unresponsive and
#: terminates the pool (last-resort reaper for non-Python hangs).
PARENT_REAP_GRACE_S = 10.0

#: pool respawns tolerated per batch before degrading to serial.
MAX_POOL_RESPAWNS = 2


@dataclass(frozen=True)
class RunSpec:
    """One simulation, fully determined by its field values.

    Two specs with equal fields produce bit-identical results (the
    determinism suite enforces this), which is what makes the content
    hash a sound cache key.
    """

    #: paper-style config name, e.g. ``"16D-8C"``.
    config: str
    #: workload registry name (``build_workload``) or ``"uniform_random"``.
    workload: str
    size: str = "small"
    #: workload generation seed.
    seed: int = 42
    #: ``"cpu"`` (host baseline), ``"nmp"``, or ``"optimized"`` (DL-opt
    #: flow: profile -> Algorithm 1 placement -> run, profiling charged).
    kind: str = "nmp"
    #: IDC mechanism for NMP kinds (ignored for cpu).
    mechanism: str = "dimm_link"
    #: polling strategy override (``None`` = mechanism default).
    polling: Optional[str] = None
    sync_mode: str = "hierarchical"
    #: DL-group topology.
    topology: str = "half_ring"
    #: per-link bandwidth override in GB/s (``None`` = Table II default).
    link_gbps: Optional[float] = None
    #: thread placement policy for ``kind="nmp"``: ``"natural"`` block
    #: placement, ``"random"`` (seeded), or ``"optimized"`` (Algorithm 1
    #: placement *without* the profiling charge of ``kind="optimized"``).
    placement: str = "natural"
    placement_seed: int = 7
    #: fraction of each DL group's bridge links killed mid-run (0 = no
    #: fault schedule installed).
    fault_fraction: float = 0.0
    #: workload parameter overrides as ``"key=value,key=value"`` (empty =
    #: pure size preset).  Canonicalized to sorted-key order on
    #: construction so equal overrides always hash equally; only the
    #: parameterized workloads (``dlrm``, ``apsp``) accept them.
    params: str = ""
    #: page-granularity data placement policy: ``"static"`` (the legacy
    #: loader shard, byte-identical to pre-pagetable runs),
    #: ``"first_touch"``, ``"next_touch"``, or ``"profiled"`` (see
    #: ``repro.mapping.pagetable``).  Non-static policies require a
    #: workload in ``PAGED_WORKLOADS`` and an ``nmp`` or ``cpu`` kind.
    data_placement: str = "static"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(f"unknown run kind {self.kind!r}; choose from {_KINDS}")
        if self.placement not in _PLACEMENTS:
            raise ConfigError(
                f"unknown placement policy {self.placement!r}; "
                f"choose from {_PLACEMENTS}"
            )
        if self.data_placement not in DATA_PLACEMENTS:
            raise ConfigError(
                f"unknown data placement {self.data_placement!r}; "
                f"choose from {DATA_PLACEMENTS}"
            )
        if self.data_placement != "static" and self.kind == "optimized":
            raise ConfigError(
                "kind='optimized' owns its placement flow; use kind='nmp' "
                "with placement='optimized' for dynamic data placement"
            )
        if not 0.0 <= self.fault_fraction <= 1.0:
            raise ConfigError(
                f"fault_fraction {self.fault_fraction} outside [0, 1]"
            )
        if self.params:
            canonical = ",".join(
                f"{k}={v}" for k, v in sorted(parse_params(self.params).items())
            )
            object.__setattr__(self, "params", canonical)

    def to_json_dict(self) -> Dict[str, object]:
        """All fields, JSON-safe (also the content the cache key hashes).

        An empty ``params`` and a ``"static"`` ``data_placement`` are
        omitted so every spec minted before those fields existed keeps
        its exact historical payload — and therefore its cache key.  The
        golden-key tests pin this.
        """
        payload = dataclasses.asdict(self)
        if not payload["params"]:
            del payload["params"]
        if payload["data_placement"] == "static":
            del payload["data_placement"]
        return payload

    def cache_key(self, code_version: int = CODE_VERSION) -> str:
        """Stable SHA-256 content hash over every field + code version."""
        payload = json.dumps(
            {"spec": self.to_json_dict(), "code_version": code_version},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


# -- spec execution ------------------------------------------------------------------


def parse_params(params: str) -> Dict[str, object]:
    """Parse a spec's ``"key=value,key=value"`` overrides into a dict.

    Values decode as int, then float, then string; keys must be unique
    and non-empty.  Raises :class:`~repro.errors.ConfigError` on
    malformed input so a bad ``--params`` fails loudly at spec build.
    """
    overrides: Dict[str, object] = {}
    for item in params.split(","):
        if not item:
            continue
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigError(
                f"malformed workload params {params!r}: expected "
                "comma-separated key=value pairs"
            )
        if key in overrides:
            raise ConfigError(f"duplicate workload param {key!r} in {params!r}")
        raw = raw.strip()
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        overrides[key] = value
    return overrides


def link_down_schedule(
    config: SystemConfig, fraction: float, time_ps: int = FAULT_TIME_PS
) -> FaultSchedule:
    """Kill the first ``round(fraction * edges)`` links of every group.

    A nonzero ``fraction`` always kills at least one link per group:
    tiny topologies used to round ``fraction * edges`` down to zero and
    silently produce an empty schedule, making "faulted" sweep points
    identical to fault-free ones.
    """
    faults = []
    for group in config.groups:
        topology = Topology(config.topology, len(group))
        count = round(fraction * len(topology.edges))
        if fraction > 0.0 and count == 0 and topology.edges:
            count = 1
        for a, b in topology.edges[:count]:
            faults.append(
                LinkDown(time_ps=time_ps, dimm_a=group[a], dimm_b=group[b])
            )
    return FaultSchedule(faults)


def build_spec_config(spec: RunSpec) -> SystemConfig:
    """Materialize the spec's system configuration."""
    config = SystemConfig.named(spec.config, topology=spec.topology)
    if spec.link_gbps is not None:
        config.link = config.link.scaled(spec.link_gbps)
    return config


def build_spec_workload(spec: RunSpec) -> Workload:
    """Materialize the spec's workload instance."""
    if spec.workload == "uniform_random":
        if spec.params:
            raise ConfigError(
                "uniform_random does not accept workload params "
                f"(got {spec.params!r})"
            )
        return UniformRandom(
            ops_per_thread=UNIFORM_OPS.get(spec.size, UNIFORM_OPS["small"]),
            remote_fraction=0.6,
            write_fraction=0.3,
            nbytes=512,
            seed=spec.seed,
        )
    overrides = parse_params(spec.params) if spec.params else None
    return build_workload(
        spec.workload,
        spec.size,
        seed=spec.seed,
        overrides=overrides,
        paged=spec.data_placement != "static",
    )


def build_spec_pagetable(
    spec: RunSpec,
    config: SystemConfig,
    workload: Workload,
    threads: int,
    placement: Optional[List[int]],
) -> Tuple[Optional[List[int]], Optional[PageTable]]:
    """Build the page table (and possibly a co-optimized thread placement).

    ``placement='optimized'`` + ``data_placement='profiled'`` runs the
    full co-optimization loop (profile -> MCMF -> page re-placement ->
    fixed point); plain profiled placement profiles once under the
    spec's thread placement.  Touch-driven policies need no profiling.
    """
    num_dimms = config.num_dimms
    if spec.data_placement != "profiled":
        return placement, PageTable(make_policy(spec.data_placement), num_dimms)
    factories = workload.thread_factories(threads, num_dimms)
    if spec.kind == "nmp" and spec.placement == "optimized":
        placement, assignment, _rounds = co_optimized_placement(factories, config)
    else:
        base = placement or Workload.block_placement(
            threads, num_dimms, config.nmp.cores_per_dimm
        )
        assignment = profiled_page_assignment(factories, num_dimms, base)
    policy = make_policy("profiled", assignment=assignment)
    return placement, PageTable(policy, num_dimms)


def execute_spec(spec: RunSpec) -> RunResult:
    """Simulate one spec from scratch (the cache-miss path)."""
    config = build_spec_config(spec)
    workload = build_spec_workload(spec)
    dynamic = spec.data_placement != "static"
    if spec.kind == "cpu":
        if not dynamic:
            return run_cpu(config, workload)
        threads = threads_for(config)
        # cpu threads have no DIMM identity; pages chase each thread's
        # natural block home (see HostCore.home_dimm)
        homes = [t * config.num_dimms // threads for t in range(threads)]
        _, pagetable = build_spec_pagetable(spec, config, workload, threads, homes)
        system = HostCPUSystem(config)
        factories = workload.thread_factories(threads, config.num_dimms)
        return system.run(
            factories, workload_name=workload.name, pagetable=pagetable
        )
    if spec.kind == "optimized":
        if spec.polling is None:
            return run_optimized(config, workload, sync_mode=spec.sync_mode)
        return run_optimized(
            config, workload, polling=spec.polling, sync_mode=spec.sync_mode
        )
    threads = threads_for(config)
    faults = (
        link_down_schedule(config, spec.fault_fraction)
        if spec.fault_fraction > 0.0
        else None
    )
    system = NMPSystem(
        config,
        idc=spec.mechanism,
        polling=spec.polling,
        sync_mode=spec.sync_mode,
        faults=faults,
    )
    placement: Optional[List[int]] = None
    if spec.placement == "random":
        placement = random_placement(
            threads, config.num_dimms, config.nmp.cores_per_dimm, spec.placement_seed
        )
    elif spec.placement == "optimized" and not (
        dynamic and spec.data_placement == "profiled"
    ):
        traffic = profile_traffic(
            workload.thread_factories(threads, config.num_dimms), config.num_dimms
        )
        placement = distance_aware_placement(traffic, config)
    pagetable: Optional[PageTable] = None
    if dynamic:
        placement, pagetable = build_spec_pagetable(
            spec, config, workload, threads, placement
        )
    factories = workload.thread_factories(threads, config.num_dimms)
    return system.run(
        factories,
        placement=placement,
        workload_name=workload.name,
        pagetable=pagetable,
    )


def _worker_init(parent_sys_path: List[str]) -> None:
    # with a spawn/forkserver start method the worker re-imports repro;
    # inherit the parent's import path so `src` layouts keep working
    sys.path[:] = parent_sys_path


# -- per-spec supervision ------------------------------------------------------------


def _alarm_handler(signum, frame) -> None:
    raise SpecTimeoutError(
        "spec exceeded its wall-clock budget outside the simulator"
    )


def supervised_call(
    execute: Callable[[RunSpec], RunResult],
    spec: RunSpec,
    timeout_s: Optional[float],
) -> RunResult:
    """Run one spec under the stall watchdog and a SIGALRM backstop.

    With a timeout, the engine's :class:`StallWatchdog` is armed for the
    whole call, so a hang inside ``Simulator.run`` raises
    :class:`~repro.errors.SimStallError` with the blocked-process
    snapshot.  SIGALRM (where available, main thread only) fires
    slightly later and catches hangs the simulator cannot see —
    workload generation, placement solving, serialization.

    The caller's SIGALRM state is restored on exit: both the previous
    handler *and* any previously armed itimer (its remaining time is
    re-armed, so an outer alarm still fires about when it would have).
    """
    if timeout_s is None:
        return execute(spec)
    install_watchdog(StallWatchdog(wall_clock_limit_s=timeout_s))
    use_alarm = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
        armed_at = time.monotonic()
        previous_delay, previous_interval = signal.setitimer(
            signal.ITIMER_REAL, timeout_s * ALARM_GRACE
        )
    try:
        return execute(spec)
    finally:
        clear_watchdog()
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
            if previous_delay:
                remaining = previous_delay - (time.monotonic() - armed_at)
                signal.setitimer(
                    signal.ITIMER_REAL, max(remaining, 1e-6), previous_interval
                )


def _backoff_delay(attempt: int) -> float:
    """Capped exponential backoff before retry number ``attempt``."""
    return min(RETRY_BACKOFF_CAP_S, RETRY_BACKOFF_S * (2 ** max(0, attempt - 1)))


def _diagnose(exc: BaseException) -> str:
    """Where-did-it-hang detail for watchdog/deadlock failures."""
    if isinstance(exc, SimStallError):
        blocked = exc.snapshot.get("blocked", [])
        lines = [
            f"stalled at t={exc.snapshot.get('time_ps', '?')}ps, "
            f"queue_depth={exc.snapshot.get('queue_depth', '?')}, "
            f"live_processes={exc.snapshot.get('live_processes', '?')}"
        ]
        lines += [f"  {name} <- {waiting}" for name, waiting in blocked]
        return "\n".join(lines)
    if isinstance(exc, DeadlockError):
        lines = [f"deadlocked at t={exc.time_ps}ps"]
        lines += [f"  {name} <- {waiting}" for name, waiting in exc.blocked[:16]]
        return "\n".join(lines)
    return ""


@dataclass
class DeadLetter:
    """One quarantined spec: what failed, how often, and why."""

    spec: RunSpec
    key: str
    attempts: int
    error: str
    diagnosis: str = ""

    def summary(self) -> str:
        """One human-readable line for the sweep report."""
        line = (
            f"{self.spec.workload}/{self.spec.config} kind={self.spec.kind} "
            f"seed={self.spec.seed}: {self.error} (attempts={self.attempts})"
        )
        if self.diagnosis:
            line += "\n    " + self.diagnosis.replace("\n", "\n    ")
        return line


# -- the runner ----------------------------------------------------------------------


class SweepRunner:
    """Executes RunSpec batches with memoisation, process fan-out, and
    supervision: incremental checkpointing, retry/quarantine, per-spec
    timeouts, and pool respawn with serial degradation.  With ``broker``
    set, batches drain through the distributed fabric
    (:mod:`repro.fabric`) instead of a local pool."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[Union[ResultsCache, str]] = None,
        use_cache: bool = True,
        execute: Callable[[RunSpec], RunResult] = execute_spec,
        retries: int = 1,
        spec_timeout: Optional[float] = None,
        strict: bool = True,
        max_pool_respawns: int = MAX_POOL_RESPAWNS,
        dead_letter_store: Optional[Union[DeadLetterStore, str]] = None,
        retry_dead_letter: bool = False,
        broker: Optional[object] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if spec_timeout is not None and spec_timeout <= 0:
            raise ConfigError(f"spec_timeout must be positive, got {spec_timeout}")
        self.jobs = jobs
        self.cache = ResultsCache(cache) if isinstance(cache, str) else cache
        #: distributed mode: a :class:`~repro.fabric.broker.WorkBroker`
        #: (or its directory).  Cache misses are submitted to the broker
        #: and drained cooperatively — this process becomes one fabric
        #: worker among however many are pointed at the same directory.
        if isinstance(broker, str):
            from repro.fabric.broker import WorkBroker

            broker = WorkBroker(broker)
        self.broker = broker
        if self.broker is not None:
            if not use_cache:
                raise ConfigError(
                    "broker mode requires the results cache: idempotent "
                    "publishing is what makes at-least-once execution "
                    "yield exactly-once results"
                )
            if self.cache is None:
                self.cache = self.broker.cache  # type: ignore[attr-defined]
            if dead_letter_store is None:
                dead_letter_store = self.broker.dead_letters  # type: ignore[attr-defined]
        self.use_cache = use_cache and self.cache is not None
        self.execute = execute
        #: extra attempts granted to a failing spec before quarantine.
        self.retries = retries
        #: per-spec wall-clock budget in seconds (None = unbounded).
        self.spec_timeout = spec_timeout
        #: strict: a batch with quarantined specs raises
        #: :class:`SweepExecutionError` *after* every healthy spec has
        #: completed and been checkpointed.  Non-strict: ``run`` returns
        #: ``None`` at the failed positions and the caller inspects
        #: :attr:`dead_letters`.
        self.strict = strict
        self.max_pool_respawns = max_pool_respawns
        #: persisted quarantine: a rerun skips specs recorded here unless
        #: :attr:`retry_dead_letter` is set; fresh quarantines are written
        #: through, and a skipped-then-retried spec that succeeds is
        #: removed.
        self.dead_letter_store = (
            DeadLetterStore(dead_letter_store)
            if isinstance(dead_letter_store, str)
            else dead_letter_store
        )
        #: re-attempt specs the persisted store marks dead.
        self.retry_dead_letter = retry_dead_letter
        #: specs served without simulating (disk hits + in-batch dedup).
        self.hits = 0
        #: simulations actually attempted.
        self.misses = 0
        #: specs skipped because the persisted store marks them dead.
        self.skipped_dead = 0
        #: quarantined specs across every batch this runner executed.
        self.dead_letters: List[DeadLetter] = []

    @property
    def stats(self) -> Dict[str, int]:
        """The ``cache.*`` stats the CLI prints after a command."""
        return {"cache.hits": self.hits, "cache.misses": self.misses}

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute a batch; results are ordered exactly like ``specs``.

        With caching enabled, each distinct spec simulates at most once
        per batch (duplicates share the result) and not at all when a
        warm cache entry exists.  With caching disabled every spec
        simulates, unconditionally.

        Every completed spec is checkpointed to the cache *the moment it
        finishes*, so an interrupted batch (crash, ``KeyboardInterrupt``)
        keeps all finished work and a rerun resumes from the cache.
        Failing specs are retried (:attr:`retries`) and then quarantined
        into :attr:`dead_letters`; see :attr:`strict` for how quarantine
        surfaces to the caller.
        """
        spec_list = list(specs)
        results: List[Optional[RunResult]] = [None] * len(spec_list)
        #: positions in miss_specs -> all batch indices sharing that run.
        targets: List[List[int]] = []
        miss_specs: List[RunSpec] = []
        miss_keys: List[str] = []

        if self.use_cache:
            pending: Dict[str, int] = {}  # key -> position in miss_specs
            for index, spec in enumerate(spec_list):
                key = spec.cache_key()
                if key in pending:  # in-batch duplicate: share the one run
                    targets[pending[key]].append(index)
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
                pending[key] = len(miss_specs)
                miss_specs.append(spec)
                miss_keys.append(key)
                targets.append([index])
        else:
            miss_specs = spec_list
            miss_keys = [spec.cache_key() for spec in spec_list]
            targets = [[index] for index in range(len(spec_list))]

        # known-bad specs from a previous run: skip without re-attempting
        # (unless retry_dead_letter asks for another try)
        skipped: List[DeadLetter] = []
        skipped_indices = 0
        store = self.dead_letter_store
        if store is not None and not self.retry_dead_letter:
            keep: List[int] = []
            for pos, key in enumerate(miss_keys):
                known = store.known(key)
                if known is None:
                    keep.append(pos)
                    continue
                skipped_indices += len(targets[pos])
                skipped.append(
                    self._dead_letter(
                        miss_specs[pos],
                        key,
                        int(known.get("attempts", 0)),
                        "skipped: persisted dead-letter "
                        f"({known.get('error', 'unknown failure')}); "
                        "rerun with --retry-dead-letter to re-attempt",
                        str(known.get("diagnosis", "")),
                    )
                )
            if len(keep) != len(miss_keys):
                miss_specs = [miss_specs[pos] for pos in keep]
                miss_keys = [miss_keys[pos] for pos in keep]
                targets = [targets[pos] for pos in keep]

        def checkpoint(pos: int, result: RunResult) -> None:
            if self.use_cache:
                self.cache.put(
                    miss_keys[pos], result, spec=miss_specs[pos].to_json_dict()
                )
            if store is not None:
                store.discard(miss_keys[pos])  # succeeded: no longer dead
            for index in targets[pos]:
                results[index] = result

        failures = self._execute_supervised(miss_specs, miss_keys, checkpoint)

        if store is not None:
            for letter in failures:
                store.record(
                    letter.key,
                    letter.spec.to_json_dict(),
                    letter.attempts,
                    letter.error,
                    letter.diagnosis,
                )

        self.misses += len(miss_specs)
        self.hits += len(spec_list) - len(miss_specs) - skipped_indices
        self.skipped_dead += len(skipped)
        failures = skipped + failures
        if failures:
            self.dead_letters.extend(failures)
            if self.strict:
                detail = "; ".join(f.summary().splitlines()[0] for f in failures[:4])
                raise SweepExecutionError(
                    f"{len(failures)} spec(s) quarantined after exhausting "
                    f"their retry budget ({detail}); all other specs "
                    "completed and were checkpointed",
                    dead_letters=failures,
                )
        return results  # type: ignore[return-value]

    # -- supervised execution --------------------------------------------------------

    def _execute_supervised(
        self,
        specs: List[RunSpec],
        keys: List[str],
        checkpoint: Callable[[int, RunResult], None],
    ) -> List[DeadLetter]:
        """Run every spec (at-most-once success each), return quarantines."""
        if not specs:
            return []
        if self.broker is not None:
            return self._run_fabric(specs, keys, checkpoint)
        if self.jobs == 1 or len(specs) <= 1:
            return self._run_serial(list(range(len(specs))), specs, keys, checkpoint)
        return self._run_pool(specs, keys, checkpoint)

    def _run_fabric(
        self,
        specs: List[RunSpec],
        keys: List[str],
        checkpoint: Callable[[int, RunResult], None],
    ) -> List[DeadLetter]:
        """Drain the batch through the work broker (distributed mode).

        The misses are submitted to the broker's durable queue —
        deduplicated there against finished cache entries and work other
        submitters/workers already have in flight — and this process
        joins the farm as one more pull-based worker.  Any number of
        ``dimmlink-repro work`` processes (or other broker-mode runs)
        pointed at the same directory drain the queue cooperatively;
        results are collected from the shared cache as their journal
        records reach ``done``, so it doesn't matter *who* executed a
        spec.  Specs the broker quarantines come back as dead letters,
        exactly like local-mode failures.
        """
        from repro.fabric.worker import Worker

        broker = self.broker
        broker.submit(specs, retry_dead=self.retry_dead_letter)
        worker = Worker(
            broker,
            execute=self.execute,
            spec_timeout=self.spec_timeout,
        )
        failures: List[DeadLetter] = []
        unresolved: Dict[str, int] = {key: pos for pos, key in enumerate(keys)}
        while unresolved:
            records = broker.records()
            resolved_any = False
            for key in list(unresolved):
                record = records.get(key)
                pos = unresolved[key]
                if record is None:
                    known = broker.dead_letters.known(key)
                    if known is not None:
                        # quarantined by a pre-fabric run: surface it
                        failures.append(
                            self._dead_letter(
                                specs[pos],
                                key,
                                int(known.get("attempts", 0)),
                                str(known.get("error", "unknown failure")),
                                str(known.get("diagnosis", "")),
                            )
                        )
                        del unresolved[key]
                        resolved_any = True
                    else:  # lost enqueue somehow: resubmit just this spec
                        broker.submit([specs[pos]])
                    continue
                if record.state == "done":
                    result = self.cache.get(key)
                    if result is None:
                        # journal says done but the cache entry is gone
                        # (e.g. quarantined as corrupt): re-run the spec
                        broker.resubmit(key)
                        continue
                    checkpoint(pos, result)
                    del unresolved[key]
                    resolved_any = True
                elif record.state == "dead":
                    failures.append(
                        self._dead_letter(
                            specs[pos],
                            key,
                            record.attempts,
                            record.error,
                            record.diagnosis,
                        )
                    )
                    del unresolved[key]
                    resolved_any = True
            if not unresolved:
                break
            if worker.step() or resolved_any:
                continue  # progressed: look again immediately
            time.sleep(worker.poll_interval_s)  # others hold the leases
        return failures

    def _dead_letter(
        self, spec: RunSpec, key: str, attempts: int, error: str, diagnosis: str = ""
    ) -> DeadLetter:
        return DeadLetter(
            spec=spec, key=key, attempts=attempts, error=error, diagnosis=diagnosis
        )

    def _run_serial(
        self,
        positions: List[int],
        specs: List[RunSpec],
        keys: List[str],
        checkpoint: Callable[[int, RunResult], None],
        attempts: Optional[Dict[int, int]] = None,
    ) -> List[DeadLetter]:
        """In-process execution with retries (also the degraded path)."""
        attempts = attempts if attempts is not None else {}
        failures: List[DeadLetter] = []
        for pos in positions:
            while True:
                attempts[pos] = attempts.get(pos, 0) + 1
                try:
                    result = supervised_call(
                        self.execute, specs[pos], self.spec_timeout
                    )
                except Exception as exc:
                    if attempts[pos] > self.retries:
                        failures.append(
                            self._dead_letter(
                                specs[pos],
                                keys[pos],
                                attempts[pos],
                                f"{type(exc).__name__}: {exc}",
                                _diagnose(exc),
                            )
                        )
                        break
                    time.sleep(_backoff_delay(attempts[pos]))
                    continue
                checkpoint(pos, result)
                break
        return failures

    def _new_pool(self, width: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(self.jobs, width),
            initializer=_worker_init,
            initargs=(list(sys.path),),
        )

    def _submit(
        self,
        pool: ProcessPoolExecutor,
        specs: List[RunSpec],
        pos: int,
        inflight: Dict[Future, int],
        started: Dict[Future, float],
        attempts: Dict[int, int],
    ) -> None:
        attempts[pos] = attempts.get(pos, 0) + 1
        future = pool.submit(
            supervised_call, self.execute, specs[pos], self.spec_timeout
        )
        inflight[future] = pos
        started[future] = time.monotonic()

    def _run_pool(
        self,
        specs: List[RunSpec],
        keys: List[str],
        checkpoint: Callable[[int, RunResult], None],
    ) -> List[DeadLetter]:
        """submit/as-completed dispatch with retry, timeout, and respawn."""
        failures: List[DeadLetter] = []
        attempts: Dict[int, int] = {}
        timed_out: Set[int] = set()
        #: (due_monotonic, pos) retries parked for their backoff delay.
        backoff: "deque[Tuple[float, int]]" = deque()
        respawns = 0
        pool = self._new_pool(len(specs))
        inflight: Dict[Future, int] = {}
        started: Dict[Future, float] = {}

        def recover(broken_pool: ProcessPoolExecutor, first_pos: int):
            """Pool died: quarantine/respawn, or degrade to serial.

            Returns the fresh pool, or ``None`` once respawns are
            exhausted — the remaining specs then finish in-process and
            their outcomes are already folded into ``failures``.
            """
            nonlocal respawns
            survivors = self._absorb_pool_break(
                sorted({first_pos, *inflight.values()}),
                specs,
                keys,
                attempts,
                timed_out,
                failures,
            )
            inflight.clear()
            started.clear()
            respawns += 1
            broken_pool.shutdown(wait=False, cancel_futures=True)
            remaining = survivors + sorted(pos for _due, pos in backoff)
            backoff.clear()
            if respawns > self.max_pool_respawns:
                # workers keep dying: finish in-process, serially
                failures.extend(
                    self._run_serial(remaining, specs, keys, checkpoint, attempts)
                )
                return None
            fresh = self._new_pool(len(specs))
            for retry_pos in remaining:
                self._submit(fresh, specs, retry_pos, inflight, started, attempts)
            return fresh

        try:
            for pos in range(len(specs)):
                self._submit(pool, specs, pos, inflight, started, attempts)
            while inflight or backoff:
                now = time.monotonic()
                pool_broken = False
                while backoff and backoff[0][0] <= now:
                    _due, pos = backoff.popleft()
                    try:
                        self._submit(pool, specs, pos, inflight, started, attempts)
                    except BrokenProcessPool:
                        attempts[pos] -= 1  # this attempt never started
                        pool = recover(pool, pos)
                        pool_broken = True
                        break
                if pool_broken:
                    if pool is None:
                        return failures
                    continue
                if not inflight:  # everything is parked on backoff
                    time.sleep(max(0.0, backoff[0][0] - time.monotonic()))
                    continue
                tick = 0.1 if (self.spec_timeout is not None or backoff) else None
                done, _running = wait(
                    set(inflight), timeout=tick, return_when=FIRST_COMPLETED
                )
                for future in done:
                    pos = inflight.pop(future)
                    started.pop(future, None)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        pool = recover(pool, pos)
                        if pool is None:
                            return failures
                        break  # other done futures belong to the dead pool
                    except Exception as exc:
                        if attempts[pos] > self.retries:
                            failures.append(
                                self._dead_letter(
                                    specs[pos],
                                    keys[pos],
                                    attempts[pos],
                                    f"{type(exc).__name__}: {exc}",
                                    _diagnose(exc),
                                )
                            )
                        else:
                            backoff.append(
                                (
                                    time.monotonic()
                                    + _backoff_delay(attempts[pos]),
                                    pos,
                                )
                            )
                    else:
                        checkpoint(pos, result)
                if not pool_broken and self.spec_timeout is not None:
                    self._reap_overdue(pool, inflight, started, timed_out)
            pool.shutdown()
            return failures
        except BaseException:
            # flush path: completed results are already checkpointed; just
            # stop handing out new work before propagating (Ctrl-C, etc.)
            pool.shutdown(wait=False, cancel_futures=True)
            raise

    def _absorb_pool_break(
        self,
        positions: List[int],
        specs: List[RunSpec],
        keys: List[str],
        attempts: Dict[int, int],
        timed_out: Set[int],
        failures: List[DeadLetter],
    ) -> List[int]:
        """Split in-flight specs of a dead pool into retries vs quarantine.

        Every in-flight spec's attempt died with the pool; the ones out
        of budget are dead-lettered, the rest are returned for
        resubmission (an innocent bystander of a crashing neighbour
        succeeds on its retry).
        """
        survivors: List[int] = []
        for pos in positions:
            if attempts.get(pos, 0) > self.retries:
                cause = (
                    "wall-clock timeout: worker unresponsive, terminated by "
                    "the parent reaper"
                    if pos in timed_out
                    else "worker process died (BrokenProcessPool)"
                )
                failures.append(
                    self._dead_letter(specs[pos], keys[pos], attempts[pos], cause)
                )
            else:
                survivors.append(pos)
        return survivors

    def _reap_overdue(
        self,
        pool: ProcessPoolExecutor,
        inflight: Dict[Future, int],
        started: Dict[Future, float],
        timed_out: Set[int],
    ) -> None:
        """Terminate the pool when a worker blew through every timeout.

        The worker-side watchdog + SIGALRM normally end an overdue spec
        from within; this parent-side backstop only fires when a worker
        is so wedged it ignored both (e.g. stuck outside the bytecode
        loop), and recovery then rides the BrokenProcessPool path.
        """
        assert self.spec_timeout is not None
        budget = self.spec_timeout * ALARM_GRACE + PARENT_REAP_GRACE_S
        now = time.monotonic()
        overdue = [
            future
            for future, begun in started.items()
            if future in inflight and now - begun > budget
        ]
        if not overdue:
            return
        for future in overdue:
            timed_out.add(inflight[future])
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()


# -- process-wide default runner (configured by the CLI) -----------------------------

_default_runner = SweepRunner()


def configure(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    retries: int = 1,
    spec_timeout: Optional[float] = None,
    strict: bool = True,
    retry_dead_letter: bool = False,
    broker: Optional[str] = None,
) -> SweepRunner:
    """Install (and return) the default runner experiments will use.

    The dead-letter store lives next to the results cache: configuring a
    cache directory makes quarantines persistent (reruns skip them), with
    ``retry_dead_letter`` forcing a fresh attempt.  With ``broker``, grid
    misses drain through the distributed fabric
    (:mod:`repro.fabric`) instead of a local process pool; the cache and
    quarantine then default to the broker's shared ones.
    """
    global _default_runner
    broker_obj = None
    if broker is not None:
        from repro.fabric.broker import WorkBroker

        broker_obj = WorkBroker(broker, cache_dir=cache_dir)
        cache = broker_obj.cache if use_cache else None
        store: Optional[DeadLetterStore] = broker_obj.dead_letters
    else:
        cache = ResultsCache(cache_dir) if (cache_dir and use_cache) else None
        store = DeadLetterStore(cache.cache_dir) if cache is not None else None
    _default_runner = SweepRunner(
        jobs=jobs,
        cache=cache,
        use_cache=use_cache,
        retries=retries,
        spec_timeout=spec_timeout,
        strict=strict,
        dead_letter_store=store,
        retry_dead_letter=retry_dead_letter,
        broker=broker_obj,
    )
    return _default_runner


def get_runner() -> SweepRunner:
    """The currently configured default runner."""
    return _default_runner


def set_runner(runner: SweepRunner) -> None:
    """Install an already-built runner as the default (CLI restore path)."""
    global _default_runner
    _default_runner = runner


def run_specs(
    specs: Sequence[RunSpec], runner: Optional[SweepRunner] = None
) -> List[RunResult]:
    """Execute a spec batch on ``runner`` (default: the configured one)."""
    return (runner or _default_runner).run(specs)
