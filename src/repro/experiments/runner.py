"""Declarative sweep execution: RunSpec grids, caching, and fan-out.

Every figure experiment is a grid of *independent* simulations.  This
module turns each grid point into a :class:`RunSpec` — a frozen, hashable
description of one run (config + overrides, workload, size, seed,
mechanism, polling, sync mode, run kind) — and executes whole grids
through one funnel, :func:`run_specs`, which adds two things the ad-hoc
loops could not:

* **Memoisation** — specs content-hash to a stable key
  (:meth:`RunSpec.cache_key`); finished results persist in a
  :class:`~repro.results_cache.ResultsCache`, so identical points shared
  between figures (and between repeated invocations) simulate once.
* **Parallelism** — cache misses fan out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs`` workers).
  Results always come back in input order, and because every simulation
  is bit-deterministic (see ``tests/test_determinism.py``) the output is
  byte-identical whatever the worker count.

The CLI configures a process-wide default runner (:func:`configure`);
experiments call :func:`run_specs` and inherit its jobs/cache settings.
Library callers that never configure anything get the safe default:
serial execution, no cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.experiments.common import (
    build_workload,
    run_cpu,
    run_optimized,
    threads_for,
)
from repro.faults import FaultSchedule, LinkDown
from repro.interconnect.topology import Topology
from repro.mapping.placement import distance_aware_placement, random_placement
from repro.mapping.profile import profile_traffic
from repro.nmp.results import RunResult
from repro.nmp.system import NMPSystem
from repro.results_cache import CODE_VERSION, ResultsCache
from repro.sim.time import ns
from repro.workloads.base import Workload
from repro.workloads.microbench import UniformRandom

_KINDS = ("cpu", "nmp", "optimized")
_PLACEMENTS = ("natural", "random", "optimized")

#: ops per thread of the ``uniform_random`` IDC-stress kernel, by size.
UNIFORM_OPS = {"tiny": 20, "small": 60, "large": 200}

#: fault-injection time of spec-driven link-down schedules: late enough
#: that traffic is in flight, early enough that most of the kernel runs
#: degraded (matches the resilience experiment).
FAULT_TIME_PS = ns(300)


@dataclass(frozen=True)
class RunSpec:
    """One simulation, fully determined by its field values.

    Two specs with equal fields produce bit-identical results (the
    determinism suite enforces this), which is what makes the content
    hash a sound cache key.
    """

    #: paper-style config name, e.g. ``"16D-8C"``.
    config: str
    #: workload registry name (``build_workload``) or ``"uniform_random"``.
    workload: str
    size: str = "small"
    #: workload generation seed.
    seed: int = 42
    #: ``"cpu"`` (host baseline), ``"nmp"``, or ``"optimized"`` (DL-opt
    #: flow: profile -> Algorithm 1 placement -> run, profiling charged).
    kind: str = "nmp"
    #: IDC mechanism for NMP kinds (ignored for cpu).
    mechanism: str = "dimm_link"
    #: polling strategy override (``None`` = mechanism default).
    polling: Optional[str] = None
    sync_mode: str = "hierarchical"
    #: DL-group topology.
    topology: str = "half_ring"
    #: per-link bandwidth override in GB/s (``None`` = Table II default).
    link_gbps: Optional[float] = None
    #: thread placement policy for ``kind="nmp"``: ``"natural"`` block
    #: placement, ``"random"`` (seeded), or ``"optimized"`` (Algorithm 1
    #: placement *without* the profiling charge of ``kind="optimized"``).
    placement: str = "natural"
    placement_seed: int = 7
    #: fraction of each DL group's bridge links killed mid-run (0 = no
    #: fault schedule installed).
    fault_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(f"unknown run kind {self.kind!r}; choose from {_KINDS}")
        if self.placement not in _PLACEMENTS:
            raise ConfigError(
                f"unknown placement policy {self.placement!r}; "
                f"choose from {_PLACEMENTS}"
            )
        if not 0.0 <= self.fault_fraction <= 1.0:
            raise ConfigError(
                f"fault_fraction {self.fault_fraction} outside [0, 1]"
            )

    def to_json_dict(self) -> Dict[str, object]:
        """All fields, JSON-safe (also the content the cache key hashes)."""
        return dataclasses.asdict(self)

    def cache_key(self, code_version: int = CODE_VERSION) -> str:
        """Stable SHA-256 content hash over every field + code version."""
        payload = json.dumps(
            {"spec": self.to_json_dict(), "code_version": code_version},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


# -- spec execution ------------------------------------------------------------------


def link_down_schedule(
    config: SystemConfig, fraction: float, time_ps: int = FAULT_TIME_PS
) -> FaultSchedule:
    """Kill the first ``round(fraction * edges)`` links of every group."""
    faults = []
    for group in config.groups:
        topology = Topology(config.topology, len(group))
        count = round(fraction * len(topology.edges))
        for a, b in topology.edges[:count]:
            faults.append(
                LinkDown(time_ps=time_ps, dimm_a=group[a], dimm_b=group[b])
            )
    return FaultSchedule(faults)


def build_spec_config(spec: RunSpec) -> SystemConfig:
    """Materialize the spec's system configuration."""
    config = SystemConfig.named(spec.config, topology=spec.topology)
    if spec.link_gbps is not None:
        config.link = config.link.scaled(spec.link_gbps)
    return config


def build_spec_workload(spec: RunSpec) -> Workload:
    """Materialize the spec's workload instance."""
    if spec.workload == "uniform_random":
        return UniformRandom(
            ops_per_thread=UNIFORM_OPS.get(spec.size, UNIFORM_OPS["small"]),
            remote_fraction=0.6,
            write_fraction=0.3,
            nbytes=512,
            seed=spec.seed,
        )
    return build_workload(spec.workload, spec.size, seed=spec.seed)


def execute_spec(spec: RunSpec) -> RunResult:
    """Simulate one spec from scratch (the cache-miss path)."""
    config = build_spec_config(spec)
    workload = build_spec_workload(spec)
    if spec.kind == "cpu":
        return run_cpu(config, workload)
    if spec.kind == "optimized":
        if spec.polling is None:
            return run_optimized(config, workload, sync_mode=spec.sync_mode)
        return run_optimized(
            config, workload, polling=spec.polling, sync_mode=spec.sync_mode
        )
    threads = threads_for(config)
    faults = (
        link_down_schedule(config, spec.fault_fraction)
        if spec.fault_fraction > 0.0
        else None
    )
    system = NMPSystem(
        config,
        idc=spec.mechanism,
        polling=spec.polling,
        sync_mode=spec.sync_mode,
        faults=faults,
    )
    placement: Optional[List[int]] = None
    if spec.placement == "random":
        placement = random_placement(
            threads, config.num_dimms, config.nmp.cores_per_dimm, spec.placement_seed
        )
    elif spec.placement == "optimized":
        traffic = profile_traffic(
            workload.thread_factories(threads, config.num_dimms), config.num_dimms
        )
        placement = distance_aware_placement(traffic, config)
    factories = workload.thread_factories(threads, config.num_dimms)
    return system.run(factories, placement=placement, workload_name=workload.name)


def _worker_init(parent_sys_path: List[str]) -> None:
    # with a spawn/forkserver start method the worker re-imports repro;
    # inherit the parent's import path so `src` layouts keep working
    sys.path[:] = parent_sys_path


# -- the runner ----------------------------------------------------------------------


class SweepRunner:
    """Executes RunSpec batches with memoisation and process fan-out."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[Union[ResultsCache, str]] = None,
        use_cache: bool = True,
        execute: Callable[[RunSpec], RunResult] = execute_spec,
    ) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = ResultsCache(cache) if isinstance(cache, str) else cache
        self.use_cache = use_cache and self.cache is not None
        self.execute = execute
        #: specs served without simulating (disk hits + in-batch dedup).
        self.hits = 0
        #: simulations actually executed.
        self.misses = 0

    @property
    def stats(self) -> Dict[str, int]:
        """The ``cache.*`` stats the CLI prints after a command."""
        return {"cache.hits": self.hits, "cache.misses": self.misses}

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute a batch; results are ordered exactly like ``specs``.

        With caching enabled, each distinct spec simulates at most once
        per batch (duplicates share the result) and not at all when a
        warm cache entry exists.  With caching disabled every spec
        simulates, unconditionally.
        """
        results: List[Optional[RunResult]] = [None] * len(specs)
        if not self.use_cache:
            executed = self._execute_batch(list(specs))
            self.misses += len(executed)
            return executed

        miss_specs: List[RunSpec] = []
        miss_keys: List[str] = []
        index_of_key: Dict[str, int] = {}
        pending: Dict[str, List[int]] = {}
        for index, spec in enumerate(specs):
            key = spec.cache_key()
            if key in pending:  # in-batch duplicate: share the one run
                pending[key].append(index)
                continue
            cached = self.cache.get(key)
            if cached is not None:
                results[index] = cached
                continue
            pending[key] = [index]
            index_of_key[key] = len(miss_specs)
            miss_specs.append(spec)
            miss_keys.append(key)

        executed = self._execute_batch(miss_specs)
        for key, spec, result in zip(miss_keys, miss_specs, executed):
            self.cache.put(key, result, spec=spec.to_json_dict())
            for index in pending[key]:
                results[index] = result

        self.misses += len(miss_specs)
        self.hits += len(specs) - len(miss_specs)
        return results  # type: ignore[return-value]

    def _execute_batch(self, specs: List[RunSpec]) -> List[RunResult]:
        """Run specs (order-preserving), in-process or across workers."""
        if self.jobs == 1 or len(specs) <= 1:
            return [self.execute(spec) for spec in specs]
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(specs)),
            initializer=_worker_init,
            initargs=(list(sys.path),),
        ) as pool:
            return list(pool.map(self.execute, specs))


# -- process-wide default runner (configured by the CLI) -----------------------------

_default_runner = SweepRunner()


def configure(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> SweepRunner:
    """Install (and return) the default runner experiments will use."""
    global _default_runner
    cache = ResultsCache(cache_dir) if (cache_dir and use_cache) else None
    _default_runner = SweepRunner(jobs=jobs, cache=cache, use_cache=use_cache)
    return _default_runner


def get_runner() -> SweepRunner:
    """The currently configured default runner."""
    return _default_runner


def set_runner(runner: SweepRunner) -> None:
    """Install an already-built runner as the default (CLI restore path)."""
    global _default_runner
    _default_runner = runner


def run_specs(
    specs: Sequence[RunSpec], runner: Optional[SweepRunner] = None
) -> List[RunResult]:
    """Execute a spec batch on ``runner`` (default: the configured one)."""
    return (runner or _default_runner).run(specs)
