"""§V-C headline numbers: the paper's abstract-level claims in one table.

Combines the Fig. 10 and Fig. 12 grids into the five numbers the paper
leads with: DL-opt's geomean speedup over the CPU baseline and its
ratios over MCN, AIM, DL-base, and ABC-DIMM.

Both grids run as RunSpec batches through the sweep runner
(:mod:`repro.experiments.runner`), so with a warm results cache the
whole table is assembled without a single new simulation — ``headline``
after ``fig10`` + ``fig12`` is pure cache replay.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.report import format_table
from repro.experiments import fig10_p2p, fig12_broadcast
from repro.experiments.runner import SweepRunner

#: the paper's published values, for side-by-side reporting.
PAPER = {
    "dl_opt_over_cpu": 5.93,
    "dl_opt_over_mcn": 2.42,
    "dl_opt_over_aim": 1.87,
    "dl_opt_over_dl_base": 1.12,
    "dl_over_abc": 1.77,
}


def run(
    size: str = "small", quick: bool = False, runner: Optional[SweepRunner] = None
) -> Dict[str, float]:
    """Measure all five headline quantities.

    ``quick=True`` trims the grids (two configs, two workloads) for
    benches; the full grids match EXPERIMENTS.md.
    """
    if quick:
        p2p_rows = fig10_p2p.run(
            size=size,
            config_names=("4D-2C", "16D-8C"),
            workload_names=("pagerank", "hotspot"),
            runner=runner,
        )
        bc_rows = fig12_broadcast.run(
            size=size,
            dpc_configs=(("2DPC", "16D-8C"),),
            workload_names=("spmv_bc",),
            runner=runner,
        )
    else:
        p2p_rows = fig10_p2p.run(size=size, runner=runner)
        bc_rows = fig12_broadcast.run(size=size, runner=runner)
    p2p = fig10_p2p.summary(p2p_rows)
    bc = fig12_broadcast.summary(bc_rows)
    return {
        "dl_opt_over_cpu": p2p["dl_opt_geomean"],
        "dl_opt_over_mcn": p2p["dl_opt_over_mcn"],
        "dl_opt_over_aim": p2p["dl_opt_over_aim"],
        "dl_opt_over_dl_base": p2p["dl_opt_over_dl_base"],
        "dl_over_abc": bc["dl_over_abc"],
    }


def main(size: str = "small") -> None:
    """Print measured vs paper headline numbers."""
    measured = run(size=size)
    print("§V-C headline numbers")
    print(
        format_table(
            ["quantity", "paper", "measured"],
            [(key, PAPER[key], measured[key]) for key in PAPER],
            precision=2,
        )
    )


if __name__ == "__main__":
    main()
