"""``dimmlink-repro trace`` — record a traced run of any experiment.

Every experiment id maps to one *representative scenario* (a config,
workload, mechanism, and polling strategy exercising the code paths that
experiment is about); the scenario is executed once on a simulator with a
:class:`~repro.trace.TraceRecorder` and a windowed
:class:`~repro.trace.TimeSeriesSampler` installed, and the recording is
exported as

* ``<experiment>-<size>.trace.json`` — Chrome ``trace_event`` JSON,
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev,
* ``<experiment>-<size>.trace.jsonl`` — one JSON object per line
  (spans, instants, and per-window counter deltas) for scripted analysis.

Tracing a single representative run (rather than the experiment's whole
grid) keeps trace files small enough to load in a viewer while still
covering the network / dram / host / nmp / idc span taxonomy.
"""

from __future__ import annotations

import os
from typing import Dict, NamedTuple, Optional

from repro.config import SystemConfig
from repro.experiments.common import build_workload, threads_for
from repro.nmp.system import NMPSystem
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry
from repro.sim.time import ns
from repro.trace import TimeSeriesSampler, TraceRecorder, write_chrome_trace, write_jsonl

#: default sampler window (simulated time) for the time-series curves.
DEFAULT_WINDOW_NS = 100.0


class Scenario(NamedTuple):
    """The representative system run traced for one experiment id."""

    config: str
    workload: str
    mechanism: str
    polling: Optional[str]


#: 16D-8C has two DL groups, so pagerank's all-to-all traffic exercises
#: bridge packets, host forwarding, proxy polling, DRAM, and barriers.
_DEFAULT = Scenario("16D-8C", "pagerank", "dimm_link", "proxy")

#: experiment-specific overrides (everything else traces the default).
SCENARIOS: Dict[str, Scenario] = {
    "apsp": Scenario("16D-8C", "apsp", "dimm_link", "proxy"),
    "dlrm": Scenario("16D-8C", "dlrm", "dimm_link", "proxy"),
    "fig12": Scenario("16D-8C", "spmv_bc", "dimm_link", "proxy"),
    "fig14": Scenario("16D-8C", "sssp", "dimm_link", "proxy"),
    "fig15": Scenario("16D-8C", "pagerank", "dimm_link", "baseline"),
    "fig1": Scenario("8D-4C", "pagerank", "dimm_link", "proxy"),
    "fig11": Scenario("8D-4C", "hotspot", "dimm_link", "proxy"),
    "table1": Scenario("4D-2C", "kmeans", "dimm_link", None),
    "table2": Scenario("4D-2C", "nw", "dimm_link", None),
    "mapping": Scenario("16D-8C", "bfs", "dimm_link", "proxy"),
}


def scenario_for(experiment: str) -> Scenario:
    """The scenario traced for an experiment id."""
    return SCENARIOS.get(experiment, _DEFAULT)


def run_traced(
    experiment: str,
    size: str = "tiny",
    window_ns: float = DEFAULT_WINDOW_NS,
) -> Dict[str, object]:
    """Execute the experiment's scenario under tracing.

    Returns a dict with the recorder, the sampler, and the run result.
    """
    scenario = scenario_for(experiment)
    workload = build_workload(scenario.workload, size)
    config = SystemConfig.named(scenario.config)

    sim = Simulator()
    stats = StatRegistry()
    recorder = TraceRecorder(sim)
    sampler = TimeSeriesSampler(stats, window_ps=ns(window_ns))
    recorder.add_sampler(sampler)
    # install before system construction so every component sees it
    sim.trace = recorder

    system = NMPSystem(
        config,
        idc=scenario.mechanism,
        polling=scenario.polling,
        sim=sim,
        stats=stats,
    )
    factories = workload.thread_factories(threads_for(config), config.num_dimms)
    result = system.run(factories, workload_name=workload.name)
    recorder.finalize()
    return {
        "scenario": scenario,
        "recorder": recorder,
        "sampler": sampler,
        "result": result,
    }


def export(
    experiment: str,
    recorder: TraceRecorder,
    size: str,
    out_dir: str,
) -> Dict[str, str]:
    """Write both export formats; returns the file paths."""
    os.makedirs(out_dir, exist_ok=True)
    chrome_path = os.path.join(out_dir, f"{experiment}-{size}.trace.json")
    jsonl_path = os.path.join(out_dir, f"{experiment}-{size}.trace.jsonl")
    write_chrome_trace(recorder, chrome_path)
    write_jsonl(recorder, jsonl_path)
    return {"chrome": chrome_path, "jsonl": jsonl_path}


def main(
    experiment: str,
    size: str = "tiny",
    out_dir: str = "traces",
    window_ns: float = DEFAULT_WINDOW_NS,
) -> None:
    """Trace one experiment scenario and print a recording summary."""
    traced = run_traced(experiment, size=size, window_ns=window_ns)
    recorder: TraceRecorder = traced["recorder"]  # type: ignore[assignment]
    sampler: TimeSeriesSampler = traced["sampler"]  # type: ignore[assignment]
    scenario: Scenario = traced["scenario"]  # type: ignore[assignment]
    result = traced["result"]
    paths = export(experiment, recorder, size, out_dir)

    per_cat: Dict[str, int] = {}
    for record in recorder.spans:
        per_cat[record[0]] = per_cat.get(record[0], 0) + 1
    print(
        f"traced {experiment} (size={size}): {scenario.workload} on "
        f"{scenario.config}, idc={scenario.mechanism}, "
        f"polling={scenario.polling or 'default'}"
    )
    print(f"  simulated time: {result.time_ps / 1e6:.1f} us")
    print(f"  spans by category: {dict(sorted(per_cat.items()))}")
    print(
        f"  instants: {len(recorder.instants)}, samples: "
        f"{len(sampler.samples)} x {sampler.window_ps / 1000:.0f} ns windows, "
        f"dropped: {recorder.dropped}"
    )
    hop_rate = sampler.rate_series("dl.hop_bytes")
    fwd_rate = sampler.rate_series("fwd.bytes")
    if hop_rate:
        print(f"  peak DL bandwidth: {max(rate for _t, rate in hop_rate):.2f} GB/s")
    if fwd_rate:
        print(f"  peak host-forward bandwidth: {max(rate for _t, rate in fwd_rate):.2f} GB/s")
    print(f"  chrome trace: {paths['chrome']}")
    print(f"  jsonl trace:  {paths['jsonl']}")


if __name__ == "__main__":
    main("headline")
