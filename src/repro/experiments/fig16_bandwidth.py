"""Fig. 16 — DIMM-Link bandwidth exploration (4 → 64 GB/s per link).

Sweeps the per-link bandwidth and measures DIMM-Link's speedup over the
CPU baseline for each configuration.  The paper's finding: extra link
bandwidth helps little at 4D-2C but increasingly at 16D-8C, where the
larger network diameter makes links the constraint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table, geomean
from repro.config import PAPER_CONFIG_NAMES
from repro.experiments.runner import RunSpec, SweepRunner, run_specs

DEFAULT_BANDWIDTHS = (4.0, 8.0, 25.0, 64.0)
DEFAULT_WORKLOADS = ("hotspot", "bfs", "pagerank")


def specs(
    size: str = "small",
    bandwidths: Sequence[float] = DEFAULT_BANDWIDTHS,
    config_names: Sequence[str] = PAPER_CONFIG_NAMES,
    workload_names: Sequence[str] = DEFAULT_WORKLOADS,
) -> List[RunSpec]:
    """The sweep as a flat spec list: per workload, the CPU reference
    then one DIMM-Link run per (config, link bandwidth)."""
    grid: List[RunSpec] = []
    for workload_name in workload_names:
        grid.append(
            RunSpec(
                config="16D-8C",
                workload=workload_name,
                size=size,
                kind="cpu",
                mechanism="cpu",
            )
        )
        grid.extend(
            RunSpec(
                config=config_name,
                workload=workload_name,
                size=size,
                link_gbps=gbps,
            )
            for config_name in config_names
            for gbps in bandwidths
        )
    return grid


def run(
    size: str = "small",
    bandwidths: Sequence[float] = DEFAULT_BANDWIDTHS,
    config_names: Sequence[str] = PAPER_CONFIG_NAMES,
    workload_names: Sequence[str] = DEFAULT_WORKLOADS,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (config, bandwidth): geomean speedup over the CPU."""
    results = iter(
        run_specs(specs(size, bandwidths, config_names, workload_names), runner)
    )
    rows = []
    for workload_name in workload_names:
        cpu = next(results)
        for config_name in config_names:
            for gbps in bandwidths:
                result = next(results)
                rows.append(
                    {
                        "workload": workload_name,
                        "config": config_name,
                        "link_gbps": gbps,
                        "speedup": cpu.total_ps / result.total_ps,
                    }
                )
    return rows


def scaling_gain(rows: List[Dict[str, object]], config_name: str) -> float:
    """Speedup of the fastest link setting over the slowest for a config."""
    subset = [r for r in rows if r["config"] == config_name]
    lo = min(float(r["link_gbps"]) for r in subset)
    hi = max(float(r["link_gbps"]) for r in subset)
    lo_mean = geomean([float(r["speedup"]) for r in subset if r["link_gbps"] == lo])
    hi_mean = geomean([float(r["speedup"]) for r in subset if r["link_gbps"] == hi])
    return hi_mean / lo_mean


def main(size: str = "small") -> None:
    """Print the Fig. 16 sweep."""
    rows = run(size=size)
    print("Fig. 16: DIMM-Link speedup over CPU vs per-link bandwidth")
    print(
        format_table(
            ["workload", "config", "link GB/s", "speedup"],
            [
                (r["workload"], r["config"], r["link_gbps"], r["speedup"])
                for r in rows
            ],
            precision=2,
        )
    )
    print("\nbandwidth-scaling gain (max/min link bandwidth) per config:")
    for name in PAPER_CONFIG_NAMES:
        print(f"  {name}: {scaling_gain(rows, name):.2f}x")


if __name__ == "__main__":
    main()
