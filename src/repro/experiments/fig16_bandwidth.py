"""Fig. 16 — DIMM-Link bandwidth exploration (4 → 64 GB/s per link).

Sweeps the per-link bandwidth and measures DIMM-Link's speedup over the
CPU baseline for each configuration.  The paper's finding: extra link
bandwidth helps little at 4D-2C but increasingly at 16D-8C, where the
larger network diameter makes links the constraint.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.report import format_table, geomean
from repro.config import PAPER_CONFIG_NAMES, SystemConfig
from repro.experiments.common import build_workload, run_cpu, run_nmp

DEFAULT_BANDWIDTHS = (4.0, 8.0, 25.0, 64.0)
DEFAULT_WORKLOADS = ("hotspot", "bfs", "pagerank")


def run(
    size: str = "small",
    bandwidths: Sequence[float] = DEFAULT_BANDWIDTHS,
    config_names: Sequence[str] = PAPER_CONFIG_NAMES,
    workload_names: Sequence[str] = DEFAULT_WORKLOADS,
) -> List[Dict[str, object]]:
    """One row per (config, bandwidth): geomean speedup over the CPU."""
    rows = []
    for workload_name in workload_names:
        workload = build_workload(workload_name, size)
        cpu = run_cpu(SystemConfig.named("16D-8C"), workload)
        for config_name in config_names:
            for gbps in bandwidths:
                config = SystemConfig.named(config_name)
                config.link = config.link.scaled(gbps)
                result = run_nmp(config, workload, "dimm_link")
                rows.append(
                    {
                        "workload": workload_name,
                        "config": config_name,
                        "link_gbps": gbps,
                        "speedup": cpu.total_ps / result.total_ps,
                    }
                )
    return rows


def scaling_gain(rows: List[Dict[str, object]], config_name: str) -> float:
    """Speedup of the fastest link setting over the slowest for a config."""
    subset = [r for r in rows if r["config"] == config_name]
    lo = min(float(r["link_gbps"]) for r in subset)
    hi = max(float(r["link_gbps"]) for r in subset)
    lo_mean = geomean([float(r["speedup"]) for r in subset if r["link_gbps"] == lo])
    hi_mean = geomean([float(r["speedup"]) for r in subset if r["link_gbps"] == hi])
    return hi_mean / lo_mean


def main(size: str = "small") -> None:
    """Print the Fig. 16 sweep."""
    rows = run(size=size)
    print("Fig. 16: DIMM-Link speedup over CPU vs per-link bandwidth")
    print(
        format_table(
            ["workload", "config", "link GB/s", "speedup"],
            [
                (r["workload"], r["config"], r["link_gbps"], r["speedup"])
                for r in rows
            ],
            precision=2,
        )
    )
    print("\nbandwidth-scaling gain (max/min link bandwidth) per config:")
    for name in PAPER_CONFIG_NAMES:
        print(f"  {name}: {scaling_gain(rows, name):.2f}x")


if __name__ == "__main__":
    main()
