"""Command-line entry point: regenerate any paper table or figure.

Installed as ``dimmlink-repro``::

    dimmlink-repro fig10 --size small
    dimmlink-repro all   --size tiny --jobs 4
    dimmlink-repro fig16 --size tiny --cache-dir /tmp/dl-cache
    dimmlink-repro trace fig10 --size tiny --out traces/

Simulation grids execute through the sweep runner: ``--jobs N`` fans
cache misses out over N worker processes, and finished results persist
under ``--cache-dir`` (default ``.dimmlink-cache``) so re-runs — and
grid points shared between figures — skip simulation entirely.  The
``cache.hits``/``cache.misses`` line printed after each command reports
how much work the cache absorbed; ``--no-cache`` forces every point to
re-simulate.

Sweeps are *supervised*: every finished grid point is checkpointed to
the cache the moment it completes, so an interrupted run (Ctrl-C, OOM
kill, crash) loses no finished work — rerun the same command and it
resumes from the cache.  Failing points are retried (``--retries``,
capped exponential backoff) and quarantined into a dead-letter report
instead of aborting the sweep; ``--spec-timeout`` bounds each point's
wall-clock time and reports *where* a hung simulation was stuck.
Quarantined specs persist to ``dead_letters.json`` in the cache
directory, so reruns skip known-bad points without burning their retry
budget again; ``--retry-dead-letter`` re-attempts them and clears the
record on success.

Sweeps also run *distributed* over the crash-safe work fabric
(:mod:`repro.fabric`): point any number of worker processes — on one
host or many hosts sharing a filesystem — at one broker directory::

    dimmlink-repro work   --broker /shared/farm &          # on each host
    dimmlink-repro submit fig16 --broker /shared/farm --size small

``submit`` enqueues the experiment's spec grid (deduplicated against the
shared cache, in-flight leases, and known-dead quarantine), streams
done/leased/pending/dead progress until the grid drains, and exits with
the supervisor contract: 0 on success, 1 if any spec was quarantined,
130 on Ctrl-C.  ``work`` pulls specs until the queue drains (or forever
with ``--forever``); a worker killed mid-spec is harmless — its lease
expires and the spec is retried elsewhere.  A worker *drained* with
SIGTERM/SIGINT is better than harmless: it hands its in-flight claim
straight back to the queue (attempt uncharged) so another worker picks
it up immediately instead of waiting out the lease TTL.  Passing
``--broker`` to a regular experiment command runs its grid on the
fabric too, with the invoking process joining as one more worker.

Farms without a shared filesystem front the broker with the sweep
service (:mod:`repro.service`) instead::

    dimmlink-repro serve  --broker /srv/farm --port 7741    # journal owner
    dimmlink-repro work   --broker tcp://farmhost:7741 &    # anywhere
    dimmlink-repro submit fig16 --broker tcp://farmhost:7741 --size small

``serve`` owns the journal/lease directory and handles submits, progress
streams, and worker RPCs with admission control, per-request deadlines,
and SIGTERM graceful drain (DESIGN.md §16).  A ``tcp://`` ``--broker``
on ``work``/``submit`` routes through it; ``--fallback-broker DIR``
lets a worker degrade to the shared directory if the socket dies.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict

from repro.errors import SweepExecutionError

from repro.experiments import (
    apsp_sweep,
    disaggregated_memory,
    dlrm_serving,
    fig01_idc_bandwidth,
    fig10_p2p,
    fig11_breakdown,
    fig12_broadcast,
    fig13_energy,
    fig14_sync,
    fig15_polling,
    fig16_bandwidth,
    fig17_topology,
    headline,
    mapping_ablation,
    placement_ablation,
    resilience,
    table1_bandwidth_model,
    table2_serdes,
    trace_run,
)
from repro.experiments import runner as sweep_runner

#: default on-disk results cache location (relative to the working dir).
DEFAULT_CACHE_DIR = ".dimmlink-cache"

#: experiment name -> main(size) callable (or main() for size-less ones).
_SIZED: Dict[str, Callable[[str], None]] = {
    "apsp": apsp_sweep.main,
    "dlrm": dlrm_serving.main,
    "fig10": fig10_p2p.main,
    "fig11": fig11_breakdown.main,
    "fig12": fig12_broadcast.main,
    "fig13": fig13_energy.main,
    "fig15": fig15_polling.main,
    "fig16": fig16_bandwidth.main,
    "fig17": fig17_topology.main,
    "headline": headline.main,
    "mapping": mapping_ablation.main,
    "placement": placement_ablation.main,
    "resilience": resilience.main,
}

_UNSIZED: Dict[str, Callable[[], None]] = {
    "disaggregated": disaggregated_memory.main,
    "fig1": fig01_idc_bandwidth.main,
    "fig14": fig14_sync.main,
    "table1": table1_bandwidth_model.main,
    "table2": table2_serdes.main,
}

#: experiments whose grid can be enqueued on the fabric: declarative
#: ``specs(size)`` producers (the ``submit`` command's dispatch table).
_GRIDDED = {
    name: module
    for name, module in {
        "apsp": apsp_sweep,
        "dlrm": dlrm_serving,
        "fig10": fig10_p2p,
        "fig11": fig11_breakdown,
        "fig12": fig12_broadcast,
        "fig13": fig13_energy,
        "fig15": fig15_polling,
        "fig16": fig16_bandwidth,
        "fig17": fig17_topology,
        "mapping": mapping_ablation,
        "placement": placement_ablation,
        "resilience": resilience,
    }.items()
    if hasattr(module, "specs")
}


def experiment_names() -> list:
    """All runnable experiment ids."""
    return sorted(list(_SIZED) + list(_UNSIZED)) + ["all"]


def traceable_names() -> list:
    """Experiment ids accepted by the ``trace`` command."""
    return [name for name in experiment_names() if name != "all"]


def submittable_names() -> list:
    """Experiment ids accepted by the ``submit`` command."""
    return sorted(_GRIDDED)


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="dimmlink-repro",
        description="Regenerate DIMM-Link (HPCA'23) tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=experiment_names() + ["trace", "submit", "work", "serve"],
        help="experiment id, 'all', 'trace' (record one traced run), "
        "'submit' (enqueue a grid on a work broker), 'work' "
        "(drain specs from a work broker), or 'serve' (run the sweep "
        "service over a broker directory)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="experiment id to trace/submit (with the 'trace'/'submit' commands)",
    )
    parser.add_argument(
        "--size",
        default="small",
        choices=("tiny", "small", "large"),
        help="workload size preset (default: small)",
    )
    parser.add_argument(
        "--out",
        default="traces",
        help="output directory for trace files (trace command only)",
    )
    parser.add_argument(
        "--window-ns",
        type=float,
        default=trace_run.DEFAULT_WINDOW_NS,
        help="time-series sampler window in simulated ns (trace command only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulation grids (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"persistent results-cache directory (default: {DEFAULT_CACHE_DIR}, "
        "or <broker>/cache when --broker is given)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the results cache: re-simulate every grid point",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts per failing grid point before it is "
        "quarantined into the dead-letter report (default: 1)",
    )
    parser.add_argument(
        "--spec-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-grid-point wall-clock budget; a hung simulation is "
        "cut off and reported with its blocked processes (default: none)",
    )
    parser.add_argument(
        "--retry-dead-letter",
        action="store_true",
        help="re-attempt grid points the persisted dead-letter list marks "
        "as known-bad (default: skip them without re-simulating)",
    )
    parser.add_argument(
        "--broker",
        default=None,
        metavar="DIR|tcp://HOST:PORT",
        help="work-broker directory of the distributed fabric (required "
        "by 'submit'/'work'/'serve'; optional for experiments: their "
        "grids then drain through the shared queue instead of a local "
        "pool).  'submit'/'work' also accept a tcp:// sweep-service "
        "endpoint for farms without a shared filesystem",
    )
    parser.add_argument(
        "--fallback-broker",
        default=None,
        metavar="DIR",
        help="work only: broker directory a tcp:// worker degrades to "
        "when the service endpoint dies mid-sweep (needs a shared "
        "filesystem; default: keep retrying the socket)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve only: interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="serve only: port to bind (default: 0 = ephemeral)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        metavar="N",
        help="serve only: admission bound on live (pending+leased) "
        "specs; submits beyond it get a structured BUSY (default: 1024)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="submit via tcp:// only: per-request deadline propagated "
        "into the fabric's lease TTLs (default: none)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="worker lease TTL when *creating* a broker (a crashed "
        "worker's spec is reclaimed this long after its last heartbeat; "
        "an existing broker's persisted policy wins)",
    )
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="submit only: enqueue the grid and exit without waiting "
        "for workers to drain it",
    )
    parser.add_argument(
        "--forever",
        action="store_true",
        help="work only: keep polling for new specs after the queue "
        "drains (default: exit once no work is left)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.spec_timeout is not None and args.spec_timeout <= 0:
        parser.error("--spec-timeout must be positive")
    if args.lease_ttl is not None and args.lease_ttl <= 0:
        parser.error("--lease-ttl must be positive")
    if args.broker is not None and args.no_cache:
        parser.error("--broker needs the results cache; drop --no-cache")

    if args.experiment in ("submit", "work", "serve"):
        if args.broker is None:
            parser.error(f"'{args.experiment}' requires --broker")
        from repro.service.protocol import is_endpoint

        if args.experiment == "serve":
            if is_endpoint(args.broker):
                parser.error("serve needs a broker *directory*, not tcp://")
            return _cmd_serve(args)
        try:
            if args.experiment == "submit":
                if is_endpoint(args.broker):
                    return _cmd_submit_service(args, parser)
                return _cmd_submit(args, parser)
            return _cmd_work(args)
        except KeyboardInterrupt:
            print("\ninterrupted — journaled state is durable; submitted "
                  "work continues wherever workers are running")
            return 130

    if args.experiment == "trace":
        if args.target is None or args.target not in traceable_names():
            parser.error(
                f"trace needs an experiment id from: {', '.join(traceable_names())}"
            )
        trace_run.main(
            args.target, size=args.size, out_dir=args.out, window_ns=args.window_ns
        )
        return 0
    if args.target is not None:
        parser.error(
            "a second positional is only valid with the 'trace' and "
            "'submit' commands"
        )

    if args.broker is not None:
        from repro.service.protocol import is_endpoint

        if is_endpoint(args.broker):
            parser.error(
                "tcp:// service endpoints are only supported by the "
                "'submit' and 'work' commands; experiment grids need a "
                "broker directory"
            )
    previous_runner = sweep_runner.get_runner()
    grid_runner = sweep_runner.configure(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else _cache_dir_for(args),
        use_cache=not args.no_cache,
        retries=args.retries,
        spec_timeout=args.spec_timeout,
        retry_dead_letter=args.retry_dead_letter,
        broker=args.broker,
    )
    interrupted = False
    failed_experiments = 0
    try:
        if args.experiment == "all":
            for name, entry in sorted(_UNSIZED.items()):
                print(f"\n=== {name} ===")
                failed_experiments += _run_entry(name, entry)
            for name, entry in sorted(_SIZED.items()):
                print(f"\n=== {name} (size={args.size}) ===")
                failed_experiments += _run_entry(name, entry, args.size)
        elif args.experiment in _UNSIZED:
            failed_experiments += _run_entry(
                args.experiment, _UNSIZED[args.experiment]
            )
        else:
            failed_experiments += _run_entry(
                args.experiment, _SIZED[args.experiment], args.size
            )
    except KeyboardInterrupt:
        # finished grid points were checkpointed as they completed; the
        # partial [cache] line below shows how much a rerun will reuse
        interrupted = True
        print("\ninterrupted — completed results are checkpointed; "
              "rerun the same command to resume from the cache")
    finally:
        sweep_runner.set_runner(previous_runner)
    _print_cache_stats(grid_runner)
    _print_dead_letters(grid_runner)
    if interrupted:
        return 130
    return 1 if failed_experiments else 0


def _cache_dir_for(args) -> str:
    """Explicit ``--cache-dir`` wins; a broker defaults to its shared
    ``cache/`` subdirectory so every farm process dedups together."""
    if args.cache_dir is not None:
        return args.cache_dir
    if args.broker is not None:
        return str(Path(args.broker) / "cache")
    return DEFAULT_CACHE_DIR


def _open_broker(args):
    """Build the broker the fabric commands share: a WorkBroker on a
    directory, or a NetBroker proxy on a tcp:// service endpoint."""
    from repro.service.protocol import is_endpoint

    if is_endpoint(args.broker):
        from repro.fabric.netbroker import NetBroker

        return NetBroker(args.broker, fallback_root=args.fallback_broker)
    from repro.fabric.broker import BrokerConfig, WorkBroker

    # only consulted when this call *creates* the broker; an existing
    # broker.json (the farm-wide policy) always wins
    config = BrokerConfig(
        retries=args.retries,
        **({"lease_ttl_s": args.lease_ttl} if args.lease_ttl else {}),
    )
    return WorkBroker(args.broker, config=config, cache_dir=args.cache_dir)


#: seconds between progress polls while ``submit`` waits for the farm.
SUBMIT_POLL_S = 0.5


def _cmd_submit(args, parser) -> int:
    """Enqueue one experiment's grid and stream progress until drained."""
    if args.target not in _GRIDDED:
        parser.error(
            f"submit needs an experiment id from: {', '.join(submittable_names())}"
        )
    broker = _open_broker(args)
    grid = _GRIDDED[args.target].specs(args.size)
    report = broker.submit(grid, retry_dead=args.retry_dead_letter)
    print(f"[submit] {args.target} (size={args.size}) -> {broker.root}")
    print(f"[submit] {report.summary()}")
    if args.no_wait:
        return 1 if report.dead else 0
    if report.enqueued or report.inflight:
        print("[submit] waiting for workers "
              f"(run: dimmlink-repro work --broker {broker.root}) ...")
    last_line = ""
    while True:
        tally = broker.counts(report.keys)
        line = (
            f"[submit] done={tally['done']} leased={tally['leased']} "
            f"pending={tally['pending']} dead={tally['dead']} "
            f"/ {tally['total']}"
        )
        if line != last_line:
            print(line)
            last_line = line
        if broker.drained(report.keys):
            break
        time.sleep(SUBMIT_POLL_S)
    dead = broker.counts(report.keys)["dead"]
    if dead:
        print(f"[submit] {dead} spec(s) quarantined — see "
              f"{broker.dead_letters.path}")
        return 1
    print("[submit] grid complete; results are in the shared cache "
          f"({broker.cache.cache_dir})")
    return 0


class _DrainRequested(BaseException):
    """SIGTERM/SIGINT turned into a cooperative drain (BaseException so
    no ``except Exception`` on the execution path can swallow it)."""

    def __init__(self, signum: int) -> None:
        super().__init__(f"drain requested by signal {signum}")
        self.signum = signum


def _cmd_work(args) -> int:
    """Drain specs from the broker until the queue is empty.

    SIGTERM/SIGINT drain *gracefully*: the in-flight claim is handed
    straight back to the queue (attempt uncharged, no backoff stamp) so
    another worker picks it up immediately instead of waiting out this
    worker's lease TTL.
    """
    import signal as _signal

    from repro.fabric.worker import Worker

    broker = _open_broker(args)
    worker = Worker(broker, spec_timeout=args.spec_timeout)
    mode = "forever" if args.forever else "until drained"
    source = getattr(broker, "root", None) or getattr(broker, "address", "?")
    print(f"[work] {worker.worker_id} pulling from {source} ({mode})")

    def _drain_handler(signum, frame):
        worker.stop()
        raise _DrainRequested(signum)

    previous = {
        signum: _signal.signal(signum, _drain_handler)
        for signum in (_signal.SIGTERM, _signal.SIGINT)
    }
    try:
        worker.run(drain=not args.forever)
    except _DrainRequested as drain:
        relinquished = worker.relinquish_current(
            reason=f"worker drained by signal {drain.signum}"
        )
        print(
            f"\n[work] drained by signal {drain.signum}: "
            + ("in-flight claim handed back to the queue"
               if relinquished else "no claim was in flight")
        )
        print(
            f"[work] done: completed={worker.completed} "
            f"failed={worker.failed} cache_served={worker.cache_served} "
            f"leases_lost={worker.leases_lost}"
        )
        return 130 if drain.signum == _signal.SIGINT else 143
    finally:
        for signum, handler in previous.items():
            _signal.signal(signum, handler)
    print(
        f"[work] done: completed={worker.completed} failed={worker.failed} "
        f"cache_served={worker.cache_served} leases_lost={worker.leases_lost}"
    )
    return 0


def _cmd_serve(args) -> int:
    """Run the sweep service over a broker directory until drained."""
    from repro.service.server import main as serve_main

    argv = [args.broker, "--host", args.host, "--port", str(args.port),
            "--max-live-specs", str(args.max_pending)]
    if args.lease_ttl:
        argv += ["--lease-ttl", str(args.lease_ttl)]
    return serve_main(argv)


def _cmd_submit_service(args, parser) -> int:
    """Submit one experiment's grid through the sweep service and
    stream progress events until the grid drains."""
    from repro.service.client import ServiceBusy, ServiceClient

    if args.target not in _GRIDDED:
        parser.error(
            f"submit needs an experiment id from: {', '.join(submittable_names())}"
        )
    grid = _GRIDDED[args.target].specs(args.size)
    keys = [spec.cache_key() for spec in grid]
    client = ServiceClient(args.broker, busy_budget_s=30.0)
    try:
        reply = client.submit(
            grid, deadline_s=args.deadline, retry_dead=args.retry_dead_letter
        )
    except ServiceBusy as busy:
        print(f"[submit] rejected by admission control: {busy}")
        return 75  # EX_TEMPFAIL: back off and retry
    report = reply["report"]
    print(f"[submit] {args.target} (size={args.size}) -> {args.broker}")
    print(f"[submit] {report['total']} spec(s): {report['enqueued']} enqueued, "
          f"{report['cached'] + report['done']} already done, "
          f"{report['inflight']} in flight, {report['dead']} dead")
    if args.no_wait:
        return 1 if report["dead"] else 0

    def show(event) -> None:
        kind = event.get("type")
        if kind == "spec":
            line = f"[submit] {event.get('state')}: {event.get('key', '')[:12]}"
            if event.get("error"):
                line += f" ({event['error']})"
            print(line)
        elif kind in ("snapshot", "drained", "reset"):
            counts = event.get("counts") or {}
            print(f"[submit] done={counts.get('done', '?')} "
                  f"leased={counts.get('leased', '?')} "
                  f"pending={counts.get('pending', '?')} "
                  f"dead={counts.get('dead', '?')} / {counts.get('total', '?')}")

    final = client.watch(keys, on_event=show, grid_id=reply.get("grid_id"))
    if final.get("dead"):
        print(f"[submit] {final['dead']} spec(s) quarantined — see the "
              "broker's dead-letter store")
        return 1
    print("[submit] grid complete; results are in the broker's shared cache")
    return 0


def _run_entry(name: str, entry, *entry_args) -> int:
    """Run one experiment; a quarantined sweep reports but doesn't abort."""
    try:
        entry(*entry_args)
    except SweepExecutionError as exc:
        print(f"[dead-letter] {name}: {exc}")
        return 1
    return 0


def _print_cache_stats(grid_runner: "sweep_runner.SweepRunner") -> None:
    """One machine-parseable line: how much work the cache absorbed."""
    stats = grid_runner.stats
    hits, misses = stats["cache.hits"], stats["cache.misses"]
    total = hits + misses
    rate = f" ({hits / total:.0%} hit rate)" if total else ""
    skipped = (
        f" dead_letter.skipped={grid_runner.skipped_dead}"
        if grid_runner.skipped_dead
        else ""
    )
    print(f"\n[cache] cache.hits={hits} cache.misses={misses}{rate}{skipped}")


def _print_dead_letters(grid_runner: "sweep_runner.SweepRunner") -> None:
    """Quarantine report: which specs failed, how often, and where."""
    letters = grid_runner.dead_letters
    if not letters:
        return
    print(f"[dead-letter] {len(letters)} spec(s) quarantined:")
    for letter in letters:
        print(f"  - {letter.summary()}")


if __name__ == "__main__":
    sys.exit(main())
