"""Command-line entry point: regenerate any paper table or figure.

Installed as ``dimmlink-repro``::

    dimmlink-repro fig10 --size small
    dimmlink-repro all   --size tiny --jobs 4
    dimmlink-repro fig16 --size tiny --cache-dir /tmp/dl-cache
    dimmlink-repro trace fig10 --size tiny --out traces/

Simulation grids execute through the sweep runner: ``--jobs N`` fans
cache misses out over N worker processes, and finished results persist
under ``--cache-dir`` (default ``.dimmlink-cache``) so re-runs — and
grid points shared between figures — skip simulation entirely.  The
``cache.hits``/``cache.misses`` line printed after each command reports
how much work the cache absorbed; ``--no-cache`` forces every point to
re-simulate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    disaggregated_memory,
    fig01_idc_bandwidth,
    fig10_p2p,
    fig11_breakdown,
    fig12_broadcast,
    fig13_energy,
    fig14_sync,
    fig15_polling,
    fig16_bandwidth,
    fig17_topology,
    headline,
    mapping_ablation,
    resilience,
    table1_bandwidth_model,
    table2_serdes,
    trace_run,
)
from repro.experiments import runner as sweep_runner

#: default on-disk results cache location (relative to the working dir).
DEFAULT_CACHE_DIR = ".dimmlink-cache"

#: experiment name -> main(size) callable (or main() for size-less ones).
_SIZED: Dict[str, Callable[[str], None]] = {
    "fig10": fig10_p2p.main,
    "fig11": fig11_breakdown.main,
    "fig12": fig12_broadcast.main,
    "fig13": fig13_energy.main,
    "fig15": fig15_polling.main,
    "fig16": fig16_bandwidth.main,
    "fig17": fig17_topology.main,
    "headline": headline.main,
    "mapping": mapping_ablation.main,
    "resilience": resilience.main,
}

_UNSIZED: Dict[str, Callable[[], None]] = {
    "disaggregated": disaggregated_memory.main,
    "fig1": fig01_idc_bandwidth.main,
    "fig14": fig14_sync.main,
    "table1": table1_bandwidth_model.main,
    "table2": table2_serdes.main,
}


def experiment_names() -> list:
    """All runnable experiment ids."""
    return sorted(list(_SIZED) + list(_UNSIZED)) + ["all"]


def traceable_names() -> list:
    """Experiment ids accepted by the ``trace`` command."""
    return [name for name in experiment_names() if name != "all"]


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="dimmlink-repro",
        description="Regenerate DIMM-Link (HPCA'23) tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=experiment_names() + ["trace"],
        help="experiment id, 'all', or 'trace' (record one traced run)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="experiment id to trace (only with the 'trace' command)",
    )
    parser.add_argument(
        "--size",
        default="small",
        choices=("tiny", "small", "large"),
        help="workload size preset (default: small)",
    )
    parser.add_argument(
        "--out",
        default="traces",
        help="output directory for trace files (trace command only)",
    )
    parser.add_argument(
        "--window-ns",
        type=float,
        default=trace_run.DEFAULT_WINDOW_NS,
        help="time-series sampler window in simulated ns (trace command only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulation grids (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"persistent results-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the results cache: re-simulate every grid point",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.experiment == "trace":
        if args.target is None or args.target not in traceable_names():
            parser.error(
                f"trace needs an experiment id from: {', '.join(traceable_names())}"
            )
        trace_run.main(
            args.target, size=args.size, out_dir=args.out, window_ns=args.window_ns
        )
        return 0
    if args.target is not None:
        parser.error("a second positional is only valid with the 'trace' command")

    previous_runner = sweep_runner.get_runner()
    grid_runner = sweep_runner.configure(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
    )
    try:
        if args.experiment == "all":
            for name, entry in sorted(_UNSIZED.items()):
                print(f"\n=== {name} ===")
                entry()
            for name, entry in sorted(_SIZED.items()):
                print(f"\n=== {name} (size={args.size}) ===")
                entry(args.size)
        elif args.experiment in _UNSIZED:
            _UNSIZED[args.experiment]()
        else:
            _SIZED[args.experiment](args.size)
    finally:
        sweep_runner.set_runner(previous_runner)
    _print_cache_stats(grid_runner)
    return 0


def _print_cache_stats(grid_runner: "sweep_runner.SweepRunner") -> None:
    """One machine-parseable line: how much work the cache absorbed."""
    stats = grid_runner.stats
    hits, misses = stats["cache.hits"], stats["cache.misses"]
    total = hits + misses
    rate = f" ({hits / total:.0%} hit rate)" if total else ""
    print(f"\n[cache] cache.hits={hits} cache.misses={misses}{rate}")


if __name__ == "__main__":
    sys.exit(main())
