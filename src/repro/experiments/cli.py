"""Command-line entry point: regenerate any paper table or figure.

Installed as ``dimmlink-repro``::

    dimmlink-repro fig10 --size small
    dimmlink-repro all   --size tiny --jobs 4
    dimmlink-repro fig16 --size tiny --cache-dir /tmp/dl-cache
    dimmlink-repro trace fig10 --size tiny --out traces/

Simulation grids execute through the sweep runner: ``--jobs N`` fans
cache misses out over N worker processes, and finished results persist
under ``--cache-dir`` (default ``.dimmlink-cache``) so re-runs — and
grid points shared between figures — skip simulation entirely.  The
``cache.hits``/``cache.misses`` line printed after each command reports
how much work the cache absorbed; ``--no-cache`` forces every point to
re-simulate.

Sweeps are *supervised*: every finished grid point is checkpointed to
the cache the moment it completes, so an interrupted run (Ctrl-C, OOM
kill, crash) loses no finished work — rerun the same command and it
resumes from the cache.  Failing points are retried (``--retries``,
capped exponential backoff) and quarantined into a dead-letter report
instead of aborting the sweep; ``--spec-timeout`` bounds each point's
wall-clock time and reports *where* a hung simulation was stuck.
Quarantined specs persist to ``dead_letters.json`` in the cache
directory, so reruns skip known-bad points without burning their retry
budget again; ``--retry-dead-letter`` re-attempts them and clears the
record on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.errors import SweepExecutionError

from repro.experiments import (
    disaggregated_memory,
    fig01_idc_bandwidth,
    fig10_p2p,
    fig11_breakdown,
    fig12_broadcast,
    fig13_energy,
    fig14_sync,
    fig15_polling,
    fig16_bandwidth,
    fig17_topology,
    headline,
    mapping_ablation,
    resilience,
    table1_bandwidth_model,
    table2_serdes,
    trace_run,
)
from repro.experiments import runner as sweep_runner

#: default on-disk results cache location (relative to the working dir).
DEFAULT_CACHE_DIR = ".dimmlink-cache"

#: experiment name -> main(size) callable (or main() for size-less ones).
_SIZED: Dict[str, Callable[[str], None]] = {
    "fig10": fig10_p2p.main,
    "fig11": fig11_breakdown.main,
    "fig12": fig12_broadcast.main,
    "fig13": fig13_energy.main,
    "fig15": fig15_polling.main,
    "fig16": fig16_bandwidth.main,
    "fig17": fig17_topology.main,
    "headline": headline.main,
    "mapping": mapping_ablation.main,
    "resilience": resilience.main,
}

_UNSIZED: Dict[str, Callable[[], None]] = {
    "disaggregated": disaggregated_memory.main,
    "fig1": fig01_idc_bandwidth.main,
    "fig14": fig14_sync.main,
    "table1": table1_bandwidth_model.main,
    "table2": table2_serdes.main,
}


def experiment_names() -> list:
    """All runnable experiment ids."""
    return sorted(list(_SIZED) + list(_UNSIZED)) + ["all"]


def traceable_names() -> list:
    """Experiment ids accepted by the ``trace`` command."""
    return [name for name in experiment_names() if name != "all"]


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="dimmlink-repro",
        description="Regenerate DIMM-Link (HPCA'23) tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=experiment_names() + ["trace"],
        help="experiment id, 'all', or 'trace' (record one traced run)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="experiment id to trace (only with the 'trace' command)",
    )
    parser.add_argument(
        "--size",
        default="small",
        choices=("tiny", "small", "large"),
        help="workload size preset (default: small)",
    )
    parser.add_argument(
        "--out",
        default="traces",
        help="output directory for trace files (trace command only)",
    )
    parser.add_argument(
        "--window-ns",
        type=float,
        default=trace_run.DEFAULT_WINDOW_NS,
        help="time-series sampler window in simulated ns (trace command only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulation grids (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"persistent results-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the results cache: re-simulate every grid point",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts per failing grid point before it is "
        "quarantined into the dead-letter report (default: 1)",
    )
    parser.add_argument(
        "--spec-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-grid-point wall-clock budget; a hung simulation is "
        "cut off and reported with its blocked processes (default: none)",
    )
    parser.add_argument(
        "--retry-dead-letter",
        action="store_true",
        help="re-attempt grid points the persisted dead-letter list marks "
        "as known-bad (default: skip them without re-simulating)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.spec_timeout is not None and args.spec_timeout <= 0:
        parser.error("--spec-timeout must be positive")

    if args.experiment == "trace":
        if args.target is None or args.target not in traceable_names():
            parser.error(
                f"trace needs an experiment id from: {', '.join(traceable_names())}"
            )
        trace_run.main(
            args.target, size=args.size, out_dir=args.out, window_ns=args.window_ns
        )
        return 0
    if args.target is not None:
        parser.error("a second positional is only valid with the 'trace' command")

    previous_runner = sweep_runner.get_runner()
    grid_runner = sweep_runner.configure(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
        retries=args.retries,
        spec_timeout=args.spec_timeout,
        retry_dead_letter=args.retry_dead_letter,
    )
    interrupted = False
    failed_experiments = 0
    try:
        if args.experiment == "all":
            for name, entry in sorted(_UNSIZED.items()):
                print(f"\n=== {name} ===")
                failed_experiments += _run_entry(name, entry)
            for name, entry in sorted(_SIZED.items()):
                print(f"\n=== {name} (size={args.size}) ===")
                failed_experiments += _run_entry(name, entry, args.size)
        elif args.experiment in _UNSIZED:
            failed_experiments += _run_entry(
                args.experiment, _UNSIZED[args.experiment]
            )
        else:
            failed_experiments += _run_entry(
                args.experiment, _SIZED[args.experiment], args.size
            )
    except KeyboardInterrupt:
        # finished grid points were checkpointed as they completed; the
        # partial [cache] line below shows how much a rerun will reuse
        interrupted = True
        print("\ninterrupted — completed results are checkpointed; "
              "rerun the same command to resume from the cache")
    finally:
        sweep_runner.set_runner(previous_runner)
    _print_cache_stats(grid_runner)
    _print_dead_letters(grid_runner)
    if interrupted:
        return 130
    return 1 if failed_experiments else 0


def _run_entry(name: str, entry, *entry_args) -> int:
    """Run one experiment; a quarantined sweep reports but doesn't abort."""
    try:
        entry(*entry_args)
    except SweepExecutionError as exc:
        print(f"[dead-letter] {name}: {exc}")
        return 1
    return 0


def _print_cache_stats(grid_runner: "sweep_runner.SweepRunner") -> None:
    """One machine-parseable line: how much work the cache absorbed."""
    stats = grid_runner.stats
    hits, misses = stats["cache.hits"], stats["cache.misses"]
    total = hits + misses
    rate = f" ({hits / total:.0%} hit rate)" if total else ""
    skipped = (
        f" dead_letter.skipped={grid_runner.skipped_dead}"
        if grid_runner.skipped_dead
        else ""
    )
    print(f"\n[cache] cache.hits={hits} cache.misses={misses}{rate}{skipped}")


def _print_dead_letters(grid_runner: "sweep_runner.SweepRunner") -> None:
    """Quarantine report: which specs failed, how often, and where."""
    letters = grid_runner.dead_letters
    if not letters:
        return
    print(f"[dead-letter] {len(letters)} spec(s) quarantined:")
    for letter in letters:
        print(f"  - {letter.summary()}")


if __name__ == "__main__":
    sys.exit(main())
