"""Fig. 15 — polling strategy comparison (Table III) on 16D-8C.

Runs DIMM-Link with each of the four polling strategies and reports
(a) end-to-end performance and (b) average memory-bus occupation.
Expected shape: baseline polling has by far the highest bus occupation
(~32%); interrupts cut occupation but add latency; the polling proxy has
both low occupation and the best end-to-end performance; proxy+interrupt
has the lowest occupation of all (paper: 0.2%).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table, geomean
from repro.experiments.runner import RunSpec, SweepRunner, run_specs
from repro.host.polling import POLLING_STRATEGIES

#: paper labels for the strategies.
LABELS = {
    "baseline": "Base",
    "baseline+interrupt": "Base+Itrpt",
    "proxy": "P-P",
    "proxy+interrupt": "P-P+Itrpt",
}


def specs(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = ("pagerank", "bfs"),
    strategies: Sequence[str] = POLLING_STRATEGIES,
) -> List[RunSpec]:
    """The grid as a flat spec list: one run per (workload, strategy)."""
    return [
        RunSpec(config=config_name, workload=workload_name, size=size, polling=strategy)
        for workload_name in workload_names
        for strategy in strategies
    ]


def run(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = ("pagerank", "bfs"),
    strategies: Sequence[str] = POLLING_STRATEGIES,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (workload, strategy): time and bus occupation."""
    results = iter(
        run_specs(specs(size, config_name, workload_names, strategies), runner)
    )
    rows = []
    for workload_name in workload_names:
        for strategy in strategies:
            result = next(results)
            rows.append(
                {
                    "workload": workload_name,
                    "strategy": strategy,
                    "label": LABELS[strategy],
                    "time_us": result.time_us,
                    "bus_occupancy": result.mean_bus_occupancy,
                }
            )
    return rows


def summary(rows: List[Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Per-strategy geomean time and mean occupancy."""
    out: Dict[str, Dict[str, float]] = {}
    for strategy in {str(r["strategy"]) for r in rows}:
        subset = [r for r in rows if r["strategy"] == strategy]
        out[strategy] = {
            "time_geomean_us": geomean([float(r["time_us"]) for r in subset]),
            "mean_bus_occupancy": sum(float(r["bus_occupancy"]) for r in subset)
            / len(subset),
        }
    return out


def main(size: str = "small") -> None:
    """Print the Fig. 15 comparison."""
    rows = run(size=size)
    print("Fig. 15: polling strategies on DIMM-Link 16D-8C")
    print(
        format_table(
            ["workload", "strategy", "time (us)", "bus occupation"],
            [
                (r["workload"], r["label"], r["time_us"], r["bus_occupancy"])
                for r in rows
            ],
        )
    )
    print("\nper-strategy summary (paper: Base ~32% bus occupation, "
          "P-P best end-to-end, P-P+Itrpt ~0.2% occupation):")
    for strategy, stats in sorted(summary(rows).items()):
        print(
            f"  {LABELS[strategy]:>10s}: {stats['time_geomean_us']:.1f}us, "
            f"occupation {stats['mean_bus_occupancy'] * 100:.1f}%"
        )


if __name__ == "__main__":
    main()
