"""Persistent dead-letter store for quarantined sweep specs.

The :class:`~repro.experiments.runner.SweepRunner` quarantines specs
that exhaust their retry budget into an in-memory dead-letter list; this
module persists that list next to the results cache so a *rerun* of the
sweep skips known-bad points instead of burning their full
retry-and-timeout budget again.  ``--retry-dead-letter`` overrides the
skip: quarantined specs are re-attempted and, on success, removed from
the store.

One JSON file (``dead_letters.json``) holds every record, keyed by the
spec's cache key — the same content hash the results cache uses, so a
code-version bump naturally invalidates stale quarantines along with
stale results.  Writes are atomic and durable (temp file + fsync +
rename via :func:`repro.fsio.atomic_write_text`): a crash at any point
mid-write — including between opening the temp file and the rename —
leaves the previous store intact, never a truncated one.  A corrupt or
unreadable store is treated as empty, mirroring the results cache's
crash-safety posture.

The store is also the distributed fabric's **farm-wide quarantine**: the
:class:`~repro.fabric.broker.WorkBroker` records specs that exhaust
their attempt budget here, next to the shared results cache, so every
worker and submitter sees the same known-bad set.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.fsio import atomic_write_text

FILENAME = "dead_letters.json"

#: current on-disk schema; unknown versions are ignored (treated empty).
STORE_VERSION = 1


class DeadLetterStore:
    """Maps cache keys of quarantined specs to their failure records."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / FILENAME
        self._records: Dict[str, Dict[str, object]] = self._load()

    def _load(self) -> Dict[str, Dict[str, object]]:
        try:
            payload = json.loads(self.path.read_text())
            if payload.get("version") != STORE_VERSION:
                return {}
            records = payload["records"]
            if not isinstance(records, dict):
                return {}
            return {
                key: value
                for key, value in records.items()
                if isinstance(value, dict)
            }
        except (OSError, ValueError, KeyError, TypeError):
            return {}

    def _save(self) -> None:
        payload = {"version": STORE_VERSION, "records": self._records}
        atomic_write_text(self.path, json.dumps(payload, indent=2, sort_keys=True))

    def refresh(self) -> None:
        """Re-read the store from disk (pick up other processes' writes).

        Mutations refresh implicitly so concurrent workers quarantining
        *different* specs merge instead of clobbering each other; callers
        that only read (e.g. a broker deduplicating a submission) call
        this once up front.  Two workers quarantining the *same* spec at
        the same instant can still lose one write — harmless, as the
        journal's ``dead`` state is the authoritative record and a lost
        store entry only costs one redundant retry on a later rerun.
        """
        self._records = self._load()

    def known(self, key: str) -> Optional[Dict[str, object]]:
        """The persisted record for ``key``, or ``None``."""
        return self._records.get(key)

    def record(
        self,
        key: str,
        spec: Dict[str, object],
        attempts: int,
        error: str,
        diagnosis: str = "",
    ) -> None:
        """Persist (or update) one quarantined spec."""
        self.refresh()
        self._records[key] = {
            "spec": spec,
            "attempts": attempts,
            "error": error,
            "diagnosis": diagnosis,
        }
        self._save()

    def discard(self, key: str) -> bool:
        """Drop ``key`` from the store (e.g. it succeeded on retry)."""
        self.refresh()
        if key not in self._records:
            return False
        del self._records[key]
        self._save()
        return True

    def keys(self) -> List[str]:
        """All quarantined cache keys."""
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __repr__(self) -> str:
        return f"DeadLetterStore({str(self.path)!r}, {len(self)} records)"
