"""Persistent dead-letter store for quarantined sweep specs.

The :class:`~repro.experiments.runner.SweepRunner` quarantines specs
that exhaust their retry budget into an in-memory dead-letter list; this
module persists that list next to the results cache so a *rerun* of the
sweep skips known-bad points instead of burning their full
retry-and-timeout budget again.  ``--retry-dead-letter`` overrides the
skip: quarantined specs are re-attempted and, on success, removed from
the store.

One JSON file (``dead_letters.json``) holds every record, keyed by the
spec's cache key — the same content hash the results cache uses, so a
code-version bump naturally invalidates stale quarantines along with
stale results.  Writes are atomic (temp file + rename) and a corrupt or
unreadable store is treated as empty, mirroring the results cache's
crash-safety posture.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

FILENAME = "dead_letters.json"

#: current on-disk schema; unknown versions are ignored (treated empty).
STORE_VERSION = 1


class DeadLetterStore:
    """Maps cache keys of quarantined specs to their failure records."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / FILENAME
        self._records: Dict[str, Dict[str, object]] = self._load()

    def _load(self) -> Dict[str, Dict[str, object]]:
        try:
            payload = json.loads(self.path.read_text())
            if payload.get("version") != STORE_VERSION:
                return {}
            records = payload["records"]
            if not isinstance(records, dict):
                return {}
            return {
                key: value
                for key, value in records.items()
                if isinstance(value, dict)
            }
        except (OSError, ValueError, KeyError, TypeError):
            return {}

    def _save(self) -> None:
        payload = {"version": STORE_VERSION, "records": self._records}
        text = json.dumps(payload, indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".dead_letters-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def known(self, key: str) -> Optional[Dict[str, object]]:
        """The persisted record for ``key``, or ``None``."""
        return self._records.get(key)

    def record(
        self,
        key: str,
        spec: Dict[str, object],
        attempts: int,
        error: str,
        diagnosis: str = "",
    ) -> None:
        """Persist (or update) one quarantined spec."""
        self._records[key] = {
            "spec": spec,
            "attempts": attempts,
            "error": error,
            "diagnosis": diagnosis,
        }
        self._save()

    def discard(self, key: str) -> bool:
        """Drop ``key`` from the store (e.g. it succeeded on retry)."""
        if key not in self._records:
            return False
        del self._records[key]
        self._save()
        return True

    def keys(self) -> List[str]:
        """All quarantined cache keys."""
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __repr__(self) -> str:
        return f"DeadLetterStore({str(self.path)!r}, {len(self)} records)"
