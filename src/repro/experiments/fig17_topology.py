"""Fig. 17 — DL-group topology exploration on 16D-8C.

Replaces the shipping half-ring chain with Ring, Mesh, and Torus group
topologies and measures the geomean P2P speedup over the half-ring.
Paper: Ring 1.11x, Mesh 1.19x, Torus 1.27x — gains from the smaller
network diameter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table, geomean
from repro.config import SystemConfig
from repro.experiments.runner import RunSpec, SweepRunner, run_specs
from repro.interconnect.topology import TOPOLOGY_NAMES, Topology

DEFAULT_WORKLOADS = ("pagerank", "bfs", "sssp")


def specs(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = DEFAULT_WORKLOADS,
    topologies: Sequence[str] = TOPOLOGY_NAMES,
) -> List[RunSpec]:
    """The grid as a flat spec list: one run per (workload, topology)."""
    return [
        RunSpec(
            config=config_name, workload=workload_name, size=size, topology=topology
        )
        for workload_name in workload_names
        for topology in topologies
    ]


def run(
    size: str = "small",
    config_name: str = "16D-8C",
    workload_names: Sequence[str] = DEFAULT_WORKLOADS,
    topologies: Sequence[str] = TOPOLOGY_NAMES,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """One row per (workload, topology) with the run time."""
    results = iter(
        run_specs(specs(size, config_name, workload_names, topologies), runner)
    )
    rows = []
    for workload_name in workload_names:
        for topology in topologies:
            result = next(results)
            config = SystemConfig.named(config_name, topology=topology)
            rows.append(
                {
                    "workload": workload_name,
                    "topology": topology,
                    "time_us": result.time_us,
                    "diameter": Topology(
                        topology, len(config.groups[0])
                    ).diameter(),
                }
            )
    return rows


def speedups_over_half_ring(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Geomean speedup of each topology over the half-ring baseline."""
    out = {}
    for topology in {str(r["topology"]) for r in rows}:
        ratios = []
        for workload in {str(r["workload"]) for r in rows}:
            base = next(
                r for r in rows
                if r["workload"] == workload and r["topology"] == "half_ring"
            )
            cand = next(
                r for r in rows
                if r["workload"] == workload and r["topology"] == topology
            )
            ratios.append(float(base["time_us"]) / float(cand["time_us"]))
        out[topology] = geomean(ratios)
    return out


def main(size: str = "small") -> None:
    """Print the Fig. 17 exploration."""
    rows = run(size=size)
    print("Fig. 17: topology exploration on 16D-8C")
    print(
        format_table(
            ["workload", "topology", "diameter", "time (us)"],
            [
                (r["workload"], r["topology"], r["diameter"], r["time_us"])
                for r in rows
            ],
            precision=1,
        )
    )
    print("\ngeomean speedup over half-ring "
          "(paper: ring 1.11x, mesh 1.19x, torus 1.27x):")
    for topology, value in sorted(speedups_over_half_ring(rows).items()):
        print(f"  {topology}: {value:.2f}x")


if __name__ == "__main__":
    main()
