"""Fig. 1 — IDC performance exploration (UPMEM-style CPU forwarding).

Reproduces both panels: (a) point-to-point IDC bandwidth of CPU-forwarded
transfers as a function of transfer size (saturating in the low-GB/s
range), and (b) the gap between aggregate NMP memory bandwidth and the
total P2P IDC bandwidth the host can forward (the paper measures
1.28 TB/s vs ~25 GB/s — a 51x gap).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.config import SystemConfig
from repro.nmp.system import NMPSystem
from repro.sim.time import bandwidth_gbps
from repro.workloads.microbench import BulkTransfer

#: transfer sizes swept in panel (a).
DEFAULT_SIZES = (4096, 16384, 65536, 262144, 1048576)


def p2p_bandwidth(total_bytes: int, chunk_bytes: int, config_name: str = "4D-2C") -> float:
    """Measured CPU-forwarded P2P bandwidth for one transfer size (GB/s)."""
    system = NMPSystem(SystemConfig.named(config_name), idc="mcn")
    workload = BulkTransfer(
        total_bytes=total_bytes, chunk_bytes=chunk_bytes, src_dimm=0, dst_dimm=1
    )
    result = system.run(
        workload.thread_factories(1, system.config.num_dimms),
        placement=[0],
        workload_name="bulk",
    )
    return bandwidth_gbps(total_bytes, result.time_ps)


def aggregate_gap(config_name: str = "16D-8C") -> Dict[str, float]:
    """Panel (b): aggregate NMP bandwidth vs total forwarded IDC bandwidth."""
    config = SystemConfig.named(config_name)
    nmp_gbps = (
        config.num_dimms
        * config.ranks_per_dimm
        * 19.2  # per-rank DDR4-2400 peak
    )
    # all DIMM pairs transfer concurrently: the host engine saturates
    system = NMPSystem(config, idc="mcn")
    total = 1 << 20
    factories = []
    placements = []
    for pair in range(config.num_dimms // 2):
        src, dst = 2 * pair, 2 * pair + 1
        workload = BulkTransfer(
            total_bytes=total, chunk_bytes=1 << 16, src_dimm=src, dst_dimm=dst
        )
        factories.extend(workload.thread_factories(1, config.num_dimms))
        placements.append(src)
    result = system.run(factories, placement=placements, workload_name="bulk_all")
    idc_gbps = bandwidth_gbps(total * len(placements), result.time_ps)
    return {
        "nmp_aggregate_gbps": nmp_gbps,
        "idc_aggregate_gbps": idc_gbps,
        "gap_x": nmp_gbps / idc_gbps,
    }


def run(sizes=DEFAULT_SIZES, total_bytes: int = 1 << 20) -> List[Dict[str, float]]:
    """Sweep transfer sizes; returns one row per size."""
    rows = []
    for chunk in sizes:
        gbps = p2p_bandwidth(min(total_bytes, max(chunk * 4, chunk)), chunk)
        rows.append({"transfer_bytes": chunk, "p2p_gbps": gbps})
    return rows


def main() -> None:
    """Print Fig. 1's two panels."""
    rows = run()
    print("Fig. 1(a): CPU-forwarded P2P IDC bandwidth vs transfer size")
    print(
        format_table(
            ["transfer size (B)", "P2P IDC bandwidth (GB/s)"],
            [(r["transfer_bytes"], r["p2p_gbps"]) for r in rows],
        )
    )
    gap = aggregate_gap()
    print("\nFig. 1(b): aggregate bandwidth gap (16 DIMMs)")
    print(
        format_table(
            ["NMP aggregate (GB/s)", "P2P IDC aggregate (GB/s)", "gap"],
            [
                (
                    gap["nmp_aggregate_gbps"],
                    gap["idc_aggregate_gbps"],
                    f'{gap["gap_x"]:.1f}x',
                )
            ],
        )
    )


if __name__ == "__main__":
    main()
