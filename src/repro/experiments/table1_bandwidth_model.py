"""Table I — analytic peak-bandwidth comparison of IDC methods."""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.config import PAPER_CONFIG_NAMES, SystemConfig
from repro.idc.analytic import num_links, peak_bandwidth


def run(config_names=PAPER_CONFIG_NAMES) -> List[Dict[str, float]]:
    """Evaluate Table I's formulas for each paper configuration."""
    rows = []
    for name in config_names:
        config = SystemConfig.named(name)
        model = peak_bandwidth(config)
        rows.append(
            {
                "config": name,
                "links": num_links(config),
                **model.as_dict(),
            }
        )
    return rows


def main() -> None:
    """Print the Table I bandwidth model."""
    rows = run()
    print("Table I: peak IDC bandwidth (GB/s) per mechanism")
    print(
        format_table(
            ["config", "#links", "CPU-fwd", "intra-ch BC", "dedicated bus", "DIMM-Link"],
            [
                (
                    r["config"],
                    r["links"],
                    r["cpu_forwarding"],
                    r["intra_channel_broadcast"],
                    r["dedicated_bus"],
                    r["dimm_link"],
                )
                for r in rows
            ],
            precision=1,
        )
    )


if __name__ == "__main__":
    main()
