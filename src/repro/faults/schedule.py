"""Declarative fault schedules.

A :class:`FaultSchedule` is an ordered list of fault descriptions, each
pinned to an absolute simulation time.  Schedules are plain data: they can
be validated against a config, merged, and installed onto any built
:class:`~repro.nmp.system.NMPSystem` via :meth:`FaultSchedule.install`
(which arms a :class:`~repro.faults.injector.FaultInjector`).

Fault kinds
-----------

* :class:`LinkDown` — a SerDes link dies permanently at ``time_ps``,
* :class:`LinkOutage` — a transient outage window (down, then restored
  after ``duration_ps``),
* :class:`LinkDegrade` — lane failure: the link survives at ``fraction``
  of its nominal bandwidth,
* :class:`DimmFault` — a DIMM's DL interface (its DL-controller / bridge
  connector) dies: every link adjacent to it goes down.  The DIMM's
  compute and DRAM stay reachable through the host channel, so traffic
  fails over to CPU-forwarding,
* :class:`BridgeFault` — a whole group's bridge PCB dies: every link in
  the group goes down.

Faults name DIMMs by their global DIMM id; the injector maps them to
group-local bridge positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import FaultError


@dataclass(frozen=True)
class Fault:
    """Base fault: something happens at ``time_ps``."""

    time_ps: int

    def validate(self) -> None:
        """Self-check raising :class:`FaultError` on nonsense."""
        if self.time_ps < 0:
            raise FaultError(f"{self!r}: fault time must be non-negative")


@dataclass(frozen=True)
class LinkFault(Fault):
    """A fault on the link between two (adjacent, same-group) DIMMs."""

    dimm_a: int = 0
    dimm_b: int = 0

    def validate(self) -> None:
        super().validate()
        if self.dimm_a == self.dimm_b:
            raise FaultError(f"{self!r}: a link needs two distinct DIMMs")


@dataclass(frozen=True)
class LinkDown(LinkFault):
    """Permanent link failure at ``time_ps``."""


@dataclass(frozen=True)
class LinkOutage(LinkFault):
    """Transient outage: down at ``time_ps``, restored ``duration_ps`` later."""

    duration_ps: int = 0

    def validate(self) -> None:
        super().validate()
        if self.duration_ps <= 0:
            raise FaultError(f"{self!r}: outage duration must be positive")


@dataclass(frozen=True)
class LinkDegrade(LinkFault):
    """Lane degradation to ``fraction`` of nominal bandwidth."""

    fraction: float = 1.0

    def validate(self) -> None:
        super().validate()
        if not 0.0 < self.fraction <= 1.0:
            raise FaultError(
                f"{self!r}: degrade fraction must be in (0, 1], "
                f"got {self.fraction}"
            )


@dataclass(frozen=True)
class DimmFault(Fault):
    """The DIMM's DL interface fails: all its bridge links go down."""

    dimm: int = 0


@dataclass(frozen=True)
class BridgeFault(Fault):
    """A group's bridge PCB fails: every link in the group goes down."""

    group: int = 0

    def validate(self) -> None:
        super().validate()
        if self.group < 0:
            raise FaultError(f"{self!r}: group index must be non-negative")


class FaultSchedule:
    """An immutable, time-sorted collection of faults."""

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        for fault in faults:
            if not isinstance(fault, Fault):
                raise FaultError(f"{fault!r} is not a Fault")
            fault.validate()
        self._faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: f.time_ps)
        )

    @property
    def faults(self) -> Tuple[Fault, ...]:
        """The scheduled faults in time order."""
        return self._faults

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    def __bool__(self) -> bool:
        return bool(self._faults)

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule combining this one and ``other``."""
        return FaultSchedule(self._faults + other.faults)

    def install(self, system) -> "object | None":
        """Arm this schedule on a built NMP system.

        Only DIMM-Link systems have a DL bridge to break; for mechanisms
        without one (CPU-forwarding, AIM, ABC-DIMM) this is a no-op
        returning None — those media are outside the DL fault model.
        """
        from repro.faults.injector import FaultInjector

        bridge = getattr(system.idc, "bridge", None)
        if bridge is None or not self._faults:
            return None
        return FaultInjector(system.sim, bridge, self, system.stats)

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self._faults)} faults)"
