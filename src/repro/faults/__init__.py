"""Fault injection for the DIMM-Link interconnect.

The subsystem has three parts:

* :mod:`repro.faults.schedule` — declarative fault descriptions
  (:class:`FaultSchedule` over :class:`LinkDown`, :class:`LinkOutage`,
  :class:`LinkDegrade`, :class:`DimmFault`, :class:`BridgeFault`),
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which arms the
  scheduled faults on a built system's DL bridge,
* :mod:`repro.faults.watchdog` — :class:`LinkWatchdog`, the ACK-timeout
  dead-link detector that flips failed links in the routing tables.

Degraded operation itself lives in the interconnect and IDC layers: the
packet network retries with bounded exponential backoff and raises
:class:`~repro.errors.LinkFailure` on exhaustion, which the DIMM-Link IDC
catches and escalates to host CPU-forwarding (the paper's own hybrid-
routing fallback, Sec. III-C).
"""

from repro.faults.schedule import (
    BridgeFault,
    DimmFault,
    Fault,
    FaultSchedule,
    LinkDegrade,
    LinkDown,
    LinkOutage,
)
from repro.faults.injector import FaultInjector
from repro.faults.watchdog import LinkWatchdog

__all__ = [
    "BridgeFault",
    "DimmFault",
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "LinkDegrade",
    "LinkDown",
    "LinkOutage",
    "LinkWatchdog",
]
