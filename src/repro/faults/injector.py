"""Arms a :class:`~repro.faults.schedule.FaultSchedule` on a DL bridge.

The injector validates every fault against the bridge's actual wiring at
construction time (unknown DIMMs, cross-group links, and non-adjacent
pairs are rejected up front, not at fire time), then schedules one
simulator callback per fault.  Fault application itself is delegated to
the bridge — the injector knows *when*, the bridge knows *how*.

Counters written under ``fault.``:

* ``fault.injected`` — faults applied so far,
* ``fault.links_down`` / ``fault.links_restored`` — link state flips,
* ``fault.links_degraded`` — lane-degradation events,
* ``fault.dimms_failed`` / ``fault.bridges_failed`` — coarse faults.
"""

from __future__ import annotations

from typing import List

from repro.errors import FaultError
from repro.faults.schedule import (
    BridgeFault,
    DimmFault,
    Fault,
    FaultSchedule,
    LinkDegrade,
    LinkDown,
    LinkFault,
    LinkOutage,
)


class FaultInjector:
    """Schedules and applies the faults of one schedule on one bridge."""

    def __init__(self, sim, bridge, schedule: FaultSchedule, stats) -> None:
        self.sim = sim
        self.bridge = bridge
        self.schedule = schedule
        self.stats = stats
        self.applied: List[Fault] = []
        for fault in schedule:
            self._validate(fault)
        for fault in schedule:
            sim.at(fault.time_ps, self._apply, fault)

    # -- validation ------------------------------------------------------------------

    def _validate(self, fault: Fault) -> None:
        if isinstance(fault, LinkFault):
            # locate() raises for unknown DIMMs; adjacency is checked here
            group_a, pos_a = self.bridge.locate(fault.dimm_a)
            group_b, pos_b = self.bridge.locate(fault.dimm_b)
            if group_a != group_b:
                raise FaultError(
                    f"{fault!r}: DIMMs {fault.dimm_a} and {fault.dimm_b} "
                    f"are in different DL groups"
                )
            # edge_key() raises RoutingError for non-adjacent positions
            try:
                self.bridge.networks[group_a].topology.edge_key(pos_a, pos_b)
            except Exception as exc:
                raise FaultError(
                    f"{fault!r}: DIMMs {fault.dimm_a} and {fault.dimm_b} "
                    f"share no bridge link"
                ) from exc
        elif isinstance(fault, DimmFault):
            self.bridge.locate(fault.dimm)
        elif isinstance(fault, BridgeFault):
            if not 0 <= fault.group < len(self.bridge.networks):
                raise FaultError(
                    f"{fault!r}: no DL group {fault.group} "
                    f"(have {len(self.bridge.networks)})"
                )

    # -- application -----------------------------------------------------------------

    def _apply(self, fault: Fault) -> None:
        self.stats.add("fault.injected")
        self.applied.append(fault)
        if isinstance(fault, LinkDegrade):
            self.bridge.degrade_link_between(fault.dimm_a, fault.dimm_b, fault.fraction)
            self.stats.add("fault.links_degraded")
        elif isinstance(fault, LinkOutage):
            self.bridge.fail_link_between(fault.dimm_a, fault.dimm_b)
            self.stats.add("fault.links_down")
            self.sim.schedule(fault.duration_ps, self._restore, fault)
        elif isinstance(fault, LinkDown):
            self.bridge.fail_link_between(fault.dimm_a, fault.dimm_b)
            self.stats.add("fault.links_down")
        elif isinstance(fault, DimmFault):
            self.stats.add(
                "fault.links_down", self.bridge.fail_dimm_links(fault.dimm)
            )
            self.stats.add("fault.dimms_failed")
        elif isinstance(fault, BridgeFault):
            self.stats.add(
                "fault.links_down", self.bridge.fail_group(fault.group)
            )
            self.stats.add("fault.bridges_failed")
        else:  # pragma: no cover - schedule validates kinds
            raise FaultError(f"unknown fault kind {fault!r}")

    def _restore(self, fault: LinkOutage) -> None:
        self.bridge.restore_link_between(fault.dimm_a, fault.dimm_b)
        self.stats.add("fault.links_restored")
