"""ACK-timeout link watchdog.

A dead SerDes link produces no ACKs and no reverse-channel credit traffic;
the only observable symptom at the sender is repeated ACK silence.  The
:class:`LinkWatchdog` counts *consecutive* ACK timeouts per link and, once
a threshold is crossed, declares the link dead — the owning network flips
it in the topology's link-state table so routing stops using it.

CRC-corrupted frames do **not** feed the watchdog: a lossy-but-alive link
still carries reverse traffic, and transient bit errors must not take
links out of service (they are handled by the DLL retry loop alone).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

Edge = Tuple[int, int]


class LinkWatchdog:
    """Per-link consecutive-ACK-timeout counter with a dead declaration."""

    def __init__(self, threshold: int = 3, name: str = "dl") -> None:
        if threshold <= 0:
            raise ValueError(f"{name}: watchdog threshold must be positive")
        self.threshold = threshold
        self.name = name
        self._timeouts: Dict[Edge, int] = {}
        self._dead: Set[Edge] = set()
        #: called with the edge when the watchdog declares it dead.
        self.on_dead: Optional[Callable[[Edge], None]] = None

    def report_timeout(self, edge: Edge) -> bool:
        """Record one ACK timeout; returns True if this declared the link dead."""
        if edge in self._dead:
            return False
        count = self._timeouts.get(edge, 0) + 1
        self._timeouts[edge] = count
        if count < self.threshold:
            return False
        self._dead.add(edge)
        if self.on_dead is not None:
            self.on_dead(edge)
        return True

    def report_success(self, edge: Edge) -> None:
        """An ACKed delivery resets the link's consecutive-timeout count."""
        if self._timeouts.get(edge):
            self._timeouts[edge] = 0

    def reset(self, edge: Edge) -> None:
        """Forget a link's history (called when a link is repaired)."""
        self._timeouts.pop(edge, None)
        self._dead.discard(edge)

    def is_dead(self, edge: Edge) -> bool:
        """Whether the watchdog has declared the link dead."""
        return edge in self._dead

    def timeouts(self, edge: Edge) -> int:
        """Current consecutive-timeout count for a link."""
        return self._timeouts.get(edge, 0)
