"""A DRAM module: the memory of one DIMM (all ranks behind its buffer chip).

The module splits byte-addressed requests into cache-line accesses, decodes
each line with the :class:`~repro.dram.address.AddressMap`, and drives the
per-rank state machines.  Requests larger than :data:`BULK_THRESHOLD`
take the rank streaming fast path so multi-megabyte transfers (Fig. 1's
bulk sweep) stay cheap to simulate.
"""

from __future__ import annotations

from repro.dram.address import LINE_BYTES, AddressMap
from repro.dram.bank import Rank
from repro.dram.timing import DRAMTiming
from repro.errors import SimulationError
from repro.sim.engine import SimEvent, Simulator
from repro.sim.stats import StatRegistry

#: Requests at or above this size use the per-rank streaming fast path.
BULK_THRESHOLD = 4096


class DRAMModule:
    """All ranks of one DIMM, with a shared address map."""

    def __init__(
        self,
        sim: Simulator,
        timing: DRAMTiming,
        ranks: int,
        stats: StatRegistry,
        name: str = "dram",
    ) -> None:
        if ranks <= 0:
            raise SimulationError(f"{name}: rank count must be positive")
        self.sim = sim
        self.timing = timing
        self.name = name
        self.stats = stats
        self.address_map = AddressMap.for_timing(ranks, timing)
        self.ranks = [
            Rank(timing, stats, name=f"{name}.rank{i}", sim=sim) for i in range(ranks)
        ]

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth across ranks (accessed in parallel)."""
        return len(self.ranks) * self.timing.rank_bandwidth_gbps

    def completion_time(self, offset: int, nbytes: int, is_write: bool) -> int:
        """When a request arriving now would complete (advances bank state)."""
        if nbytes <= 0:
            raise SimulationError(f"{self.name}: request size must be positive")
        now = self.sim.now
        if nbytes >= BULK_THRESHOLD:
            per_rank = nbytes // len(self.ranks)
            done = 0
            for rank in self.ranks:
                done = max(done, rank.stream(now, per_rank, is_write))
            return done
        done = 0
        line_start = offset - (offset % LINE_BYTES)
        line_end = offset + nbytes
        while line_start < line_end:
            loc = self.address_map.decode(line_start)
            rank = self.ranks[loc.rank]
            done = max(done, rank.access_line(now, loc.bank, loc.row, is_write))
            line_start += LINE_BYTES
        return done

    def access(self, offset: int, nbytes: int, is_write: bool) -> SimEvent:
        """Issue a request; the returned event fires at completion."""
        done = self.completion_time(offset, nbytes, is_write)
        event = self.sim.event(name=f"{self.name}.access")
        self.sim.at(done, lambda _arg: event.succeed(nbytes), None)
        return event

    def precharge_all(self) -> None:
        """Close all rows (mode switches between HA and NA, Sec. III-E)."""
        for rank in self.ranks:
            rank.precharge_all()
