"""FR-FCFS memory controller (queued scheduling over the bank model).

The bare :class:`~repro.dram.module.DRAMModule` serves requests in arrival
order per bank.  This controller adds the classic First-Ready FCFS policy:
pending line requests are buffered, and at every issue slot the scheduler
prefers a request that hits an already-open row (within a bounded
reordering window) before falling back to the oldest request.  Row-miss
latency is hidden whenever row-hit traffic exists — the main effect an
FR-FCFS scheduler contributes at this abstraction level.

The controller is a drop-in layer: construct it over a module and
``submit`` byte-addressed requests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, NamedTuple

from repro.dram.address import LINE_BYTES
from repro.dram.module import DRAMModule
from repro.errors import SimulationError
from repro.sim.engine import SimEvent, Simulator

#: maximum requests inspected when looking for a row hit.
DEFAULT_REORDER_WINDOW = 16
#: scheduler issue slot (roughly four DRAM clocks).
ISSUE_SLOT_PS = 3_300


class _LineRequest(NamedTuple):
    rank: int
    bank: int
    row: int
    is_write: bool
    done: SimEvent
    remaining: List[int]  # shared countdown across a request's lines


class FRFCFSController:
    """First-ready, first-come-first-served scheduling over a DRAM module."""

    def __init__(
        self,
        sim: Simulator,
        module: DRAMModule,
        reorder_window: int = DEFAULT_REORDER_WINDOW,
    ) -> None:
        if reorder_window <= 0:
            raise SimulationError("reorder window must be positive")
        self.sim = sim
        self.module = module
        self.reorder_window = reorder_window
        self._queue: Deque[_LineRequest] = deque()
        self._running = False
        self.row_hits_scheduled = 0
        self.requests = 0

    @property
    def queue_depth(self) -> int:
        """Pending line requests."""
        return len(self._queue)

    def submit(self, offset: int, nbytes: int, is_write: bool) -> SimEvent:
        """Queue a byte-addressed request; event fires when all lines done."""
        if nbytes <= 0:
            raise SimulationError("request size must be positive")
        done = self.sim.event(name="frfcfs.done")
        amap = self.module.address_map
        line_start = offset - (offset % LINE_BYTES)
        lines = []
        while line_start < offset + nbytes:
            loc = amap.decode(line_start)
            lines.append(loc)
            line_start += LINE_BYTES
        remaining = [len(lines)]
        for loc in lines:
            self._queue.append(
                _LineRequest(loc.rank, loc.bank, loc.row, is_write, done, remaining)
            )
        self.requests += 1
        if not self._running:
            self._running = True
            self.sim.process(self._scheduler(), name="frfcfs.sched")
        return done

    def _pick(self) -> _LineRequest:
        """FR-FCFS: first row hit within the window, else the oldest."""
        window = min(self.reorder_window, len(self._queue))
        for index in range(window):
            request = self._queue[index]
            bank = self.module.ranks[request.rank].banks[request.bank]
            if bank.open_row == request.row:
                del self._queue[index]
                if index > 0:
                    self.row_hits_scheduled += 1
                return request
        return self._queue.popleft()

    def _scheduler(self):
        while self._queue:
            request = self._pick()
            rank = self.module.ranks[request.rank]
            issued_at = self.sim.now
            finish = rank.access_line(
                issued_at, request.bank, request.row, request.is_write
            )
            if self.sim.trace.enabled:
                self.sim.trace.complete(
                    "dram",
                    "write" if request.is_write else "read",
                    f"frfcfs.rank{request.rank}.bank{request.bank}",
                    issued_at,
                    finish,
                    row=request.row,
                )
            self.sim.at(finish, self._complete, request)
            yield ISSUE_SLOT_PS
        self._running = False

    def _complete(self, request: _LineRequest) -> None:
        request.remaining[0] -= 1
        if request.remaining[0] == 0:
            request.done.succeed(None)
