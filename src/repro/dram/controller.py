"""FR-FCFS memory controller (queued scheduling over the bank model).

The bare :class:`~repro.dram.module.DRAMModule` serves requests in arrival
order per bank.  This controller adds the classic First-Ready FCFS policy:
pending line requests are buffered, and at every issue slot the scheduler
prefers a request that hits an already-open row (within a bounded
reordering window) before falling back to the oldest request.  Row-miss
latency is hidden whenever row-hit traffic exists — the main effect an
FR-FCFS scheduler contributes at this abstraction level.

Scheduling is *indexed* (Ramulator-style) rather than scanned: pending
requests are bucketed per ``(rank, bank, row)`` in arrival order, and a
lazy min-heap of row-hit candidates — the arrival-order head of each
bucket whose row is currently open — gives the first-ready pick in
O(log banks) instead of an O(window) deque walk.  The indexed pick is
provably the request the legacy window scan would have chosen:

* queue position is monotonic in the arrival sequence number, so the
  earliest-arrival row hit overall is also the lowest-index row hit; if
  *it* falls outside the reorder window, no row hit is inside it;
* its live queue position is recovered in O(log window) from the arrival
  number minus the count of younger requests already promoted out of the
  middle (tracked in a tiny sorted list);
* ties cannot occur — arrival numbers are unique.

``legacy_scan=True`` keeps the original O(window) scan alive for the
equivalence suite (``tests/test_frfcfs_equivalence.py``) and the
``repro.perf`` before/after benchmark.

The controller is a drop-in layer: construct it over a module and
``submit`` byte-addressed requests.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Tuple

from repro.dram.address import LINE_BYTES
from repro.dram.module import DRAMModule
from repro.errors import SimulationError
from repro.sim.engine import SimEvent, Simulator

#: maximum requests inspected when looking for a row hit.
DEFAULT_REORDER_WINDOW = 16
#: scheduler issue slot (roughly four DRAM clocks).
ISSUE_SLOT_PS = 3_300


class _LineRequest:
    """One pending cache-line access (arrival-numbered, index-linked)."""

    __slots__ = (
        "seq",
        "rank",
        "bank",
        "row",
        "is_write",
        "done",
        "remaining",
        "alive",
        "in_heap",
    )

    def __init__(
        self,
        seq: int,
        rank: int,
        bank: int,
        row: int,
        is_write: bool,
        done: SimEvent,
        remaining: List[int],
    ) -> None:
        self.seq = seq
        self.rank = rank
        self.bank = bank
        self.row = row
        self.is_write = is_write
        self.done = done
        self.remaining = remaining  # shared countdown across a request's lines
        #: False once issued (lazy deletion marker for the arrival deque).
        self.alive = True
        #: whether a (seq, self) entry currently sits in the candidate heap.
        self.in_heap = False


class FRFCFSController:
    """First-ready, first-come-first-served scheduling over a DRAM module."""

    def __init__(
        self,
        sim: Simulator,
        module: DRAMModule,
        reorder_window: int = DEFAULT_REORDER_WINDOW,
        legacy_scan: bool = False,
    ) -> None:
        if reorder_window <= 0:
            raise SimulationError("reorder window must be positive")
        self.sim = sim
        self.module = module
        self.reorder_window = reorder_window
        #: use the original O(window) deque scan instead of the indexed
        #: structures (kept for equivalence tests and benchmarking).
        self.legacy_scan = legacy_scan
        self._seq = 0
        #: arrival order; the indexed path leaves issued entries in place
        #: (``alive=False``) and cleans them lazily at the head.
        self._queue: Deque[_LineRequest] = deque()
        self._live = 0
        #: (rank, bank, row) -> pending requests in arrival order (live only).
        self._by_row: Dict[Tuple[int, int, int], Deque[_LineRequest]] = {}
        #: lazy min-heap of (seq, request) row-hit candidates.
        self._hit_heap: List[Tuple[int, _LineRequest]] = []
        #: arrival numbers of requests promoted out of the queue's middle
        #: and not yet reached by head cleanup (sorted, ≤ window entries).
        self._promoted: List[int] = []
        self._running = False
        self.row_hits_scheduled = 0
        self.requests = 0
        # completions are issued in near-arrival order at monotonically
        # growing finish times, so they ride a countdown queue the epoch
        # loop bulk-expires (FR-FCFS reordering can produce the odd
        # out-of-order finish; at_monotone routes those to the heap).
        # The DRAM timing floor — nothing completes faster than a burst,
        # and issue slots are fixed-width — is this controller's
        # conservative lookahead contribution.
        self._timers = sim.timer_queue("frfcfs")
        sim.register_lookahead(
            "frfcfs", min(ISSUE_SLOT_PS, module.timing.tburst_ps) + 1
        )
        #: arrival numbers in issue order (equivalence-test instrumentation).
        self.pick_log: Optional[List[int]] = None

    @property
    def queue_depth(self) -> int:
        """Pending line requests."""
        return len(self._queue) if self.legacy_scan else self._live

    def submit(self, offset: int, nbytes: int, is_write: bool) -> SimEvent:
        """Queue a byte-addressed request; event fires when all lines done."""
        if nbytes <= 0:
            raise SimulationError("request size must be positive")
        done = self.sim.event(name="frfcfs.done")
        amap = self.module.address_map
        line_start = offset - (offset % LINE_BYTES)
        lines = []
        while line_start < offset + nbytes:
            loc = amap.decode(line_start)
            lines.append(loc)
            line_start += LINE_BYTES
        remaining = [len(lines)]
        for loc in lines:
            self._seq += 1
            request = _LineRequest(
                self._seq, loc.rank, loc.bank, loc.row, is_write, done, remaining
            )
            self._queue.append(request)
            if not self.legacy_scan:
                self._index(request)
        self.requests += 1
        if not self._running:
            self._running = True
            self.sim.process(self._scheduler(), name="frfcfs.sched")
        return done

    # -- indexed bookkeeping ---------------------------------------------------------

    def _index(self, request: _LineRequest) -> None:
        """Add a fresh arrival to the row buckets (and heap when first-ready)."""
        self._live += 1
        key = (request.rank, request.bank, request.row)
        bucket = self._by_row.get(key)
        if bucket is None:
            bucket = self._by_row[key] = deque()
        bucket.append(request)
        bank = self.module.ranks[request.rank].banks[request.bank]
        if bank.open_row == request.row:
            self._offer(bucket[0])

    def _offer(self, request: _LineRequest) -> None:
        """Push a bucket head into the candidate heap (idempotent)."""
        if not request.in_heap:
            request.in_heap = True
            heappush(self._hit_heap, (request.seq, request))

    def _retire(self, request: _LineRequest, at_head: bool) -> None:
        """Remove an issued request from every index structure."""
        request.alive = False
        self._live -= 1
        key = (request.rank, request.bank, request.row)
        bucket = self._by_row[key]
        bucket.popleft()  # buckets are issued strictly in arrival order
        if not bucket:
            del self._by_row[key]
        if at_head:
            self._queue.popleft()
        else:
            insort(self._promoted, request.seq)

    def _after_issue(self, request: _LineRequest) -> None:
        """The issued access just (re)opened its row: arm the next candidate."""
        bucket = self._by_row.get((request.rank, request.bank, request.row))
        if bucket:
            self._offer(bucket[0])

    def _pick_indexed(self) -> _LineRequest:
        """O(log) first-ready pick, bit-equivalent to the legacy scan."""
        queue = self._queue
        promoted = self._promoted
        while not queue[0].alive:  # lazy head cleanup (seqs leave _promoted)
            queue.popleft()
            del promoted[0]
        heap = self._hit_heap
        banks = self.module.ranks
        while heap:
            seq, candidate = heap[0]
            if (
                not candidate.alive
                or banks[candidate.rank].banks[candidate.bank].open_row
                != candidate.row
            ):
                heappop(heap)
                candidate.in_heap = False
                continue
            # live queue position = arrivals since the head, minus the ones
            # already promoted out of the middle below this seq
            position = (seq - queue[0].seq) - bisect_left(promoted, seq)
            if position < self.reorder_window:
                heappop(heap)
                candidate.in_heap = False
                self._retire(candidate, at_head=position == 0)
                self.row_hits_scheduled += 1
                return candidate
            break  # the earliest hit is outside the window: no hit at all
        oldest = queue[0]
        self._retire(oldest, at_head=True)
        return oldest

    def _pick_legacy(self) -> _LineRequest:
        """Original FR-FCFS window scan (reference implementation)."""
        window = min(self.reorder_window, len(self._queue))
        for index in range(window):
            request = self._queue[index]
            bank = self.module.ranks[request.rank].banks[request.bank]
            if bank.open_row == request.row:
                del self._queue[index]
                self.row_hits_scheduled += 1
                return request
        return self._queue.popleft()

    def _pick(self) -> _LineRequest:
        """FR-FCFS: first row hit within the window, else the oldest."""
        if self.legacy_scan:
            return self._pick_legacy()
        return self._pick_indexed()

    def _scheduler(self):
        legacy = self.legacy_scan
        while (len(self._queue) if legacy else self._live) > 0:
            request = self._pick()
            if self.pick_log is not None:
                self.pick_log.append(request.seq)
            rank = self.module.ranks[request.rank]
            issued_at = self.sim.now
            finish = rank.access_line(
                issued_at, request.bank, request.row, request.is_write
            )
            if not legacy:
                self._after_issue(request)
            if self.sim.trace.enabled:
                self.sim.trace.complete(
                    "dram",
                    "write" if request.is_write else "read",
                    f"frfcfs.rank{request.rank}.bank{request.bank}",
                    issued_at,
                    finish,
                    row=request.row,
                )
            self.sim.at_monotone(self._timers, finish, self._complete, request)
            yield ISSUE_SLOT_PS
        self._running = False

    def _complete(self, request: _LineRequest) -> None:
        request.remaining[0] -= 1
        if request.remaining[0] == 0:
            request.done.succeed(None)
