"""Transaction-level DDR4 DRAM model (timing, banks, ranks, modules)."""

from repro.dram.address import (
    ADDR_BITS,
    LINE_BYTES,
    AddressMap,
    Location,
    decode_global,
    encode_global,
)
from repro.dram.controller import DEFAULT_REORDER_WINDOW, FRFCFSController
from repro.dram.bank import ROW_CONFLICT, ROW_HIT, ROW_MISS, Bank, Rank
from repro.dram.module import BULK_THRESHOLD, DRAMModule
from repro.dram.timing import (
    DDR4_2400_LRDIMM,
    DDR4_2666_RDIMM,
    DDR4_3200_RDIMM,
    DRAMTiming,
    preset,
    presets,
)

__all__ = [
    "ADDR_BITS",
    "DEFAULT_REORDER_WINDOW",
    "FRFCFSController",
    "LINE_BYTES",
    "AddressMap",
    "Location",
    "decode_global",
    "encode_global",
    "ROW_CONFLICT",
    "ROW_HIT",
    "ROW_MISS",
    "Bank",
    "Rank",
    "BULK_THRESHOLD",
    "DRAMModule",
    "DDR4_2400_LRDIMM",
    "DDR4_2666_RDIMM",
    "DDR4_3200_RDIMM",
    "DRAMTiming",
    "preset",
    "presets",
]
