"""Bank and rank state machines (transaction-level timeline arithmetic).

Rather than replaying every DDR command cycle-by-cycle, each bank keeps a
small timeline (open row, earliest-next-access time, last-activate time) and
computes, for one cache-line access arriving at time ``t``, when its data
burst completes — honouring tRCD/tCAS/tRP/tRAS for the bank, tRRD/tFAW and
refresh (tREFI/tRFC) for the rank, and serialising bursts on the rank's
shared data bus.  This is the standard fidelity/speed trade-off for
Python-scale DRAM models and preserves row-hit locality effects and
bank-level parallelism, which are what the evaluation depends on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.dram.timing import DRAMTiming
from repro.sim.stats import StatRegistry

#: Access categories reported per line access.
ROW_HIT = "row_hit"
ROW_MISS = "row_miss"
ROW_CONFLICT = "row_conflict"

_CATEGORY_STAT = {
    ROW_HIT: "dram.row_hit",
    ROW_MISS: "dram.row_miss",
    ROW_CONFLICT: "dram.row_conflict",
}


class Bank:
    """One DRAM bank's timeline state."""

    __slots__ = ("timing", "open_row", "ready_at", "activated_at")

    def __init__(self, timing: DRAMTiming) -> None:
        self.timing = timing
        self.open_row: Optional[int] = None
        #: earliest time the bank can start its next column/row command.
        self.ready_at = 0
        #: when the currently-open row was activated (for tRAS).
        self.activated_at = 0

    def access(self, now: int, row: int, is_write: bool, act_gate: int) -> Tuple[int, str]:
        """Access one line in ``row`` at time ``now``.

        ``act_gate`` is the earliest time the rank allows a new activate
        (tRRD/tFAW/refresh).  Returns ``(data_ready, category)`` where
        ``data_ready`` is when the data burst may start on the rank bus.
        """
        timing = self.timing
        start = max(now, self.ready_at)
        if self.open_row == row:
            category = ROW_HIT
            data_ready = start + timing.tcas_ps
            self.ready_at = start + timing.tburst_ps
        elif self.open_row is None:
            category = ROW_MISS
            act_at = max(start, act_gate)
            data_ready = act_at + timing.trcd_ps + timing.tcas_ps
            self.open_row = row
            self.activated_at = act_at
            self.ready_at = act_at + timing.trcd_ps + timing.tburst_ps
        else:
            category = ROW_CONFLICT
            pre_at = max(start, self.activated_at + timing.tras_ps)
            act_at = max(pre_at + timing.trp_ps, act_gate)
            data_ready = act_at + timing.trcd_ps + timing.tcas_ps
            self.open_row = row
            self.activated_at = act_at
            self.ready_at = act_at + timing.trcd_ps + timing.tburst_ps
        if is_write:
            # write recovery keeps the bank busy after the burst
            self.ready_at = max(self.ready_at, data_ready + timing.twr_ps)
        return data_ready, category

    def precharge_all(self) -> None:
        """Close the open row (used on refresh and mode switches)."""
        self.open_row = None


class Rank:
    """A rank: banks plus rank-wide activate pacing, refresh, and data bus."""

    def __init__(
        self,
        timing: DRAMTiming,
        stats: StatRegistry,
        name: str = "rank",
        sim=None,
    ) -> None:
        self.timing = timing
        self.stats = stats
        self.name = name
        #: optional simulator handle, used only to reach its trace recorder
        #: (the timeline arithmetic itself never reads the clock).
        self.sim = sim
        self.banks = [Bank(timing) for _ in range(timing.banks_per_rank)]
        self._recent_activates: Deque[int] = deque(maxlen=4)
        self._bus_free_at = 0

    def _refresh_gate(self, t: int) -> int:
        """Push ``t`` past the refresh window it falls inside, if any.

        Refresh occupies the last tRFC of every tREFI interval, so time 0
        starts clean and steady-state accesses stall ~tRFC/tREFI of the time.
        """
        trefi, trfc = self.timing.trefi_ps, self.timing.trfc_ps
        position = t % trefi
        if position >= trefi - trfc:
            return (t // trefi + 1) * trefi
        return t

    def _activate_gate(self, t: int) -> int:
        """Earliest activate time at ``t`` honouring tRRD and tFAW."""
        gate = t
        if self._recent_activates:
            gate = max(gate, self._recent_activates[-1] + self.timing.trrd_ps)
        if len(self._recent_activates) == 4:
            gate = max(gate, self._recent_activates[0] + self.timing.tfaw_ps)
        return gate

    def access_line(self, now: int, bank_id: int, row: int, is_write: bool) -> int:
        """Access one 64B line; returns the completion time of its burst."""
        bank = self.banks[bank_id]
        start = self._refresh_gate(now)
        act_gate = self._refresh_gate(self._activate_gate(start))
        was_open = bank.open_row
        data_ready, category = bank.access(start, row, is_write, act_gate)
        if category != ROW_HIT:
            self._recent_activates.append(bank.activated_at)
            self.stats.add("dram.activates")
        self.stats.add(_CATEGORY_STAT[category])
        # serialise the burst on the rank's shared data bus
        burst_start = max(data_ready, self._bus_free_at)
        done = burst_start + self.timing.tburst_ps
        self._bus_free_at = done
        kind = "write" if is_write else "read"
        self.stats.add(
            "dram.write_bytes" if is_write else "dram.read_bytes",
            self.timing.burst_bytes,
        )
        if self.sim is not None and self.sim.trace.enabled:
            self.sim.trace.complete(
                "dram",
                category,
                f"{self.name}.bank{bank_id}",
                start,
                done,
                row=row,
                kind=kind,
            )
        return done

    def stream(self, now: int, nbytes: int, is_write: bool) -> int:
        """Fast path for bulk transfers: first-word latency + streaming.

        Models a long sequential burst as one row-miss latency followed by
        data streamed at a derated fraction of the rank's peak bandwidth
        (row turnarounds and refresh steal ~15%).
        """
        timing = self.timing
        start = self._refresh_gate(now)
        first = start + timing.trcd_ps + timing.tcas_ps
        effective_gbps = timing.rank_bandwidth_gbps * 0.85
        stream_ps = int(nbytes / effective_gbps * 1000)
        done = max(first, self._bus_free_at) + stream_ps
        self._bus_free_at = done
        kind = "write" if is_write else "read"
        self.stats.add(f"dram.{kind}_bytes", nbytes)
        self.stats.add("dram.activates", max(1, nbytes // timing.row_bytes))
        if self.sim is not None and self.sim.trace.enabled:
            self.sim.trace.complete(
                "dram", "stream", self.name, start, done, bytes=nbytes, kind=kind
            )
        return done

    def precharge_all(self) -> None:
        """Close every open row in the rank."""
        for bank in self.banks:
            bank.precharge_all()
