"""DDR4 timing parameter sets.

Transaction-level analogue of a Ramulator timing config: the handful of
constraints that dominate request latency and bank-level parallelism at the
granularity this reproduction needs (tRCD/tCAS/tRP/tRAS, tRRD/tFAW, burst
time, refresh).  Values follow Micron DDR4 RDIMM/LRDIMM datasheets; the
paper configures its DRAM from the Micron LR-DIMM datasheet [62].
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict

from repro.errors import ConfigError
from repro.sim.time import ns


@dataclass(frozen=True)
class DRAMTiming:
    """Timing constraints for one DDR4 speed grade (times in ns).

    All ``t_*`` attributes are nanoseconds; the ``*_ps`` properties convert
    to the simulator's picosecond unit.
    """

    name: str
    data_rate_mtps: int
    tck_ns: float
    cl_ck: int
    trcd_ck: int
    trp_ck: int
    tras_ns: float
    trrd_l_ns: float
    tfaw_ns: float
    twr_ns: float
    trfc_ns: float
    trefi_ns: float
    burst_length: int = 8
    #: bus width of one rank in bytes (x64).
    bus_bytes: int = 8
    #: banks per rank (DDR4: 4 bank groups x 4 banks).
    banks_per_rank: int = 16
    #: row (page) size in bytes.
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.tck_ns <= 0:
            raise ConfigError(f"{self.name}: tCK must be positive")

    # -- derived latencies (picoseconds) ------------------------------------

    @cached_property
    def tcas_ps(self) -> int:
        """CAS (read) latency."""
        return ns(self.cl_ck * self.tck_ns)

    @cached_property
    def trcd_ps(self) -> int:
        """ACT-to-RD/WR delay."""
        return ns(self.trcd_ck * self.tck_ns)

    @cached_property
    def trp_ps(self) -> int:
        """Precharge time."""
        return ns(self.trp_ck * self.tck_ns)

    @cached_property
    def tras_ps(self) -> int:
        """Minimum row-open time."""
        return ns(self.tras_ns)

    @cached_property
    def trrd_ps(self) -> int:
        """ACT-to-ACT (same rank) spacing."""
        return ns(self.trrd_l_ns)

    @cached_property
    def tfaw_ps(self) -> int:
        """Four-activate window."""
        return ns(self.tfaw_ns)

    @cached_property
    def twr_ps(self) -> int:
        """Write recovery."""
        return ns(self.twr_ns)

    @cached_property
    def trfc_ps(self) -> int:
        """Refresh-cycle time."""
        return ns(self.trfc_ns)

    @cached_property
    def trefi_ps(self) -> int:
        """Average refresh interval."""
        return ns(self.trefi_ns)

    @cached_property
    def tburst_ps(self) -> int:
        """Time to stream one burst (BL/2 clocks for DDR)."""
        return ns(self.burst_length / 2 * self.tck_ns)

    @cached_property
    def burst_bytes(self) -> int:
        """Bytes delivered by one burst (64 for BL8 x64)."""
        return self.burst_length * self.bus_bytes

    @cached_property
    def rank_bandwidth_gbps(self) -> float:
        """Peak per-rank data bandwidth in GB/s."""
        return self.data_rate_mtps * self.bus_bytes / 1000.0


_PRESETS: Dict[str, DRAMTiming] = {}


def _register(timing: DRAMTiming) -> DRAMTiming:
    _PRESETS[timing.name] = timing
    return timing


#: Micron 32GB 2Rx4 DDR4-2400 LRDIMM-class timing (the paper's Table V DRAM).
DDR4_2400_LRDIMM = _register(
    DRAMTiming(
        name="DDR4_2400_LRDIMM",
        data_rate_mtps=2400,
        tck_ns=0.833,
        cl_ck=17,
        trcd_ck=17,
        trp_ck=17,
        tras_ns=32.0,
        trrd_l_ns=4.9,
        tfaw_ns=21.0,
        twr_ns=15.0,
        trfc_ns=350.0,
        trefi_ns=7800.0,
    )
)

DDR4_2666_RDIMM = _register(
    DRAMTiming(
        name="DDR4_2666_RDIMM",
        data_rate_mtps=2666,
        tck_ns=0.750,
        cl_ck=19,
        trcd_ck=19,
        trp_ck=19,
        tras_ns=32.0,
        trrd_l_ns=4.9,
        tfaw_ns=21.0,
        twr_ns=15.0,
        trfc_ns=350.0,
        trefi_ns=7800.0,
    )
)

DDR4_3200_RDIMM = _register(
    DRAMTiming(
        name="DDR4_3200_RDIMM",
        data_rate_mtps=3200,
        tck_ns=0.625,
        cl_ck=22,
        trcd_ck=22,
        trp_ck=22,
        tras_ns=32.0,
        trrd_l_ns=4.9,
        tfaw_ns=21.0,
        twr_ns=15.0,
        trfc_ns=350.0,
        trefi_ns=7800.0,
    )
)


def preset(name: str) -> DRAMTiming:
    """Look up a registered timing preset by name."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown DRAM preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None


def presets() -> Dict[str, DRAMTiming]:
    """All registered presets (name -> timing)."""
    return dict(_PRESETS)
