"""Physical address mapping.

The paper's packets carry a 42-bit physical address (4 TB), with the
destination-DIMM id folded into the top bits (Sec. III-B).  This module
provides that codec: a global address is ``(dimm_id, local_offset)``, and
within a DIMM the local offset is decoded to rank/bank/row/column with a
row-interleaved layout that spreads consecutive cache lines over banks
(standard practice to expose bank-level parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import ConfigError
from repro.dram.timing import DRAMTiming

#: Total physical address bits (4 TB, Sec. III-B).
ADDR_BITS = 42
#: Cache-line / DRAM-burst granularity.
LINE_BYTES = 64
#: Data-placement granularity (OS page, CODA / MultiPIM style).
PAGE_BYTES = 4096
#: log2(PAGE_BYTES).
PAGE_SHIFT = 12


class Location(NamedTuple):
    """A decoded intra-DIMM DRAM coordinate."""

    rank: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class AddressMap:
    """Maps a local byte offset to (rank, bank, row, column).

    Layout (LSB -> MSB): line offset | bank | rank | column-of-row | row.
    Interleaving lines across banks first, then ranks, maximises bank-level
    parallelism for streaming accesses, matching how the paper's NMP cores
    "access local ranks in parallel".
    """

    ranks: int
    banks_per_rank: int
    row_bytes: int

    def __post_init__(self) -> None:
        if self.ranks <= 0 or self.banks_per_rank <= 0:
            raise ConfigError("ranks and banks_per_rank must be positive")
        if self.row_bytes % LINE_BYTES != 0:
            raise ConfigError("row_bytes must be a multiple of the line size")

    @property
    def lines_per_row(self) -> int:
        """Cache lines held by one open row."""
        return self.row_bytes // LINE_BYTES

    def decode(self, offset: int) -> Location:
        """Decode a local byte offset into a DRAM location."""
        if offset < 0:
            raise ConfigError(f"negative address offset {offset}")
        line = offset // LINE_BYTES
        bank = line % self.banks_per_rank
        line //= self.banks_per_rank
        rank = line % self.ranks
        line //= self.ranks
        column = line % self.lines_per_row
        row = line // self.lines_per_row
        return Location(rank=rank, bank=bank, row=row, column=column)

    @classmethod
    def for_timing(cls, ranks: int, timing: DRAMTiming) -> "AddressMap":
        """Build a map consistent with a timing preset's geometry."""
        return cls(
            ranks=ranks,
            banks_per_rank=timing.banks_per_rank,
            row_bytes=timing.row_bytes,
        )


def encode_global(dimm_id: int, offset: int, dimm_bits: int = 5) -> int:
    """Pack (dimm, offset) into a 42-bit global physical address."""
    if not 0 <= dimm_id < (1 << dimm_bits):
        raise ConfigError(f"dimm_id {dimm_id} does not fit in {dimm_bits} bits")
    offset_bits = ADDR_BITS - dimm_bits
    if not 0 <= offset < (1 << offset_bits):
        raise ConfigError(f"offset {offset:#x} does not fit in {offset_bits} bits")
    return (dimm_id << offset_bits) | offset


def decode_global(address: int, dimm_bits: int = 5) -> "tuple[int, int]":
    """Unpack a global physical address into (dimm_id, local offset)."""
    if not 0 <= address < (1 << ADDR_BITS):
        raise ConfigError(f"address {address:#x} outside the 42-bit space")
    offset_bits = ADDR_BITS - dimm_bits
    return address >> offset_bits, address & ((1 << offset_bits) - 1)


def _page_index_bits(dimm_bits: int) -> int:
    bits = ADDR_BITS - dimm_bits - PAGE_SHIFT
    if bits <= 0:
        raise ConfigError(f"dimm_bits {dimm_bits} leaves no page-index bits")
    return bits


def page_id(dimm_id: int, page_index: int, dimm_bits: int = 5) -> int:
    """Pack (home DIMM, page index) into a global page id.

    A page id is simply the top ``ADDR_BITS - PAGE_SHIFT`` bits of the
    global address of the page's first byte, so the *static* home of a
    page (where the loader sharded it) is recoverable by
    :func:`page_home` with pure bit math — no table lookup.
    """
    index_bits = _page_index_bits(dimm_bits)
    if not 0 <= dimm_id < (1 << dimm_bits):
        raise ConfigError(f"dimm_id {dimm_id} does not fit in {dimm_bits} bits")
    if not 0 <= page_index < (1 << index_bits):
        raise ConfigError(
            f"page_index {page_index} does not fit in {index_bits} bits"
        )
    return (dimm_id << index_bits) | page_index


def page_home(page: int, dimm_bits: int = 5) -> int:
    """Static home DIMM of a page (the loader's block shard)."""
    index_bits = _page_index_bits(dimm_bits)
    if not 0 <= page < (1 << (ADDR_BITS - PAGE_SHIFT)):
        raise ConfigError(f"page id {page} outside the page-id space")
    return page >> index_bits


def page_index(page: int, dimm_bits: int = 5) -> int:
    """Index of a page within its static home DIMM."""
    index_bits = _page_index_bits(dimm_bits)
    if not 0 <= page < (1 << (ADDR_BITS - PAGE_SHIFT)):
        raise ConfigError(f"page id {page} outside the page-id space")
    return page & ((1 << index_bits) - 1)


def page_of(dimm_id: int, offset: int, dimm_bits: int = 5) -> int:
    """Page id covering byte ``offset`` of DIMM ``dimm_id``."""
    if offset < 0:
        raise ConfigError(f"negative address offset {offset}")
    return page_id(dimm_id, offset >> PAGE_SHIFT, dimm_bits)


def page_offset(page: int, dimm_bits: int = 5) -> int:
    """Local byte offset of the start of ``page`` within its owner DIMM.

    By convention a migrated page keeps its index — the new owner stores
    it at the same local offset — so this is valid wherever the page
    currently lives, not just at its static home.
    """
    return page_index(page, dimm_bits) << PAGE_SHIFT
