"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class ProtocolError(ReproError):
    """A DIMM-Link packet violated the protocol (bad field, CRC, size)."""


class RoutingError(ReproError):
    """A packet could not be routed to its destination."""


class MappingError(ReproError):
    """Thread placement could not be derived (e.g. infeasible flow)."""


class WorkloadError(ReproError):
    """A workload was asked to run with invalid inputs."""
