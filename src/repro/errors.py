"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    Structured so the sweep harness can report *where* a run hung:
    ``blocked`` holds ``(process_name, waiting_on)`` pairs describing
    every live process and the event/delay/condition it was suspended
    on, and ``time_ps`` is the simulation time the queue drained at.
    """

    def __init__(self, message: str, blocked=None, time_ps: int = 0) -> None:
        super().__init__(message)
        self.blocked = list(blocked or [])
        self.time_ps = time_ps


class SimStallError(SimulationError):
    """The simulation exceeded its wall-clock budget while still running.

    Raised by the engine's stall watchdog; ``snapshot`` is a diagnostic
    dict (simulated time, events processed, queue depth, blocked
    processes) captured at the moment the budget expired.
    """

    def __init__(self, message: str, snapshot=None) -> None:
        super().__init__(message)
        self.snapshot = dict(snapshot or {})


class SpecTimeoutError(ReproError):
    """A spec exceeded its wall-clock budget outside the simulator.

    The SIGALRM backstop behind the engine watchdog: fires when the
    hang is in workload generation, placement, or any other phase the
    simulator's own stall detector cannot see.
    """


class SweepExecutionError(ReproError):
    """One or more specs of a sweep exhausted their retry budget.

    Raised *after* the sweep finishes: every healthy spec has completed
    and been checkpointed to the results cache by the time this
    surfaces.  ``dead_letters`` lists the quarantined specs with their
    attempt counts and final diagnoses.
    """

    def __init__(self, message: str, dead_letters=None) -> None:
        super().__init__(message)
        self.dead_letters = list(dead_letters or [])


class ProtocolError(ReproError):
    """A DIMM-Link packet violated the protocol (bad field, CRC, size)."""


class RoutingError(ReproError):
    """A packet could not be routed to its destination."""


class MappingError(ReproError):
    """Thread placement could not be derived (e.g. infeasible flow)."""


class WorkloadError(ReproError):
    """A workload was asked to run with invalid inputs."""


class FaultError(ReproError):
    """An injected-fault description was invalid or could not be applied."""


class LinkFailure(FaultError):
    """A DL link could not deliver a packet (dead link or retry exhaustion).

    Raised by the interconnect when the bounded retry/backoff loop gives
    up on a hop, or when no live route exists; the DIMM-Link IDC layer
    catches it and fails over to host CPU-forwarding.
    """
