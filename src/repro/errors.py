"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class ProtocolError(ReproError):
    """A DIMM-Link packet violated the protocol (bad field, CRC, size)."""


class RoutingError(ReproError):
    """A packet could not be routed to its destination."""


class MappingError(ReproError):
    """Thread placement could not be derived (e.g. infeasible flow)."""


class WorkloadError(ReproError):
    """A workload was asked to run with invalid inputs."""


class FaultError(ReproError):
    """An injected-fault description was invalid or could not be applied."""


class LinkFailure(FaultError):
    """A DL link could not deliver a packet (dead link or retry exhaustion).

    Raised by the interconnect when the bounded retry/backoff loop gives
    up on a hop, or when no live route exists; the DIMM-Link IDC layer
    catches it and fails over to host CPU-forwarding.
    """
