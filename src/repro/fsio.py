"""Crash-safe filesystem primitives shared by every durable store.

The results cache, the dead-letter store, and the distributed fabric
(:mod:`repro.fabric`) all persist state that must survive a process
dying at *any* instruction — SIGKILL, OOM, power loss.  They share the
same two disciplines, implemented once here:

* **Atomic replace** (:func:`atomic_write_text`) — content is written to
  a temp file in the destination directory, flushed and fsync'd, then
  :func:`os.replace`'d over the target, and the directory entry is
  fsync'd.  A reader never observes a partial file: it sees either the
  old content or the new content, and a crash mid-write leaves the old
  file untouched.
* **Durable append** (:func:`append_line`) — one line is appended,
  flushed, and fsync'd.  A crash mid-append can leave at most one
  *partial trailing line*, which journal readers detect (it fails to
  parse) and ignore; the previous state is intact because earlier lines
  were already on disk.

``durable=False`` skips the fsyncs for tests and throwaway runs where
speed matters more than power-loss safety; the atomicity (replace /
append ordering) is kept either way.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Union


def fsync_dir(directory: Union[str, Path]) -> None:
    """Flush a directory entry table (rename/create durability)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: Union[str, Path], text: str, durable: bool = True
) -> Path:
    """Atomically replace ``path`` with ``text`` (temp + fsync + rename)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name[:24]}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        if durable:
            fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def create_exclusive_text(
    path: Union[str, Path], text: str, durable: bool = True
) -> bool:
    """Create ``path`` with ``text`` iff it does not exist (atomic).

    Returns ``False`` when the file already exists — the one-winner
    primitive behind lease claims and journal enqueue on a shared
    filesystem.  The content write is *not* atomic (a reader can observe
    a partial file between create and fsync); callers must tolerate an
    unparsable just-created file, e.g. via an mtime-based fallback.
    """
    path = Path(path)
    try:
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        if durable:
            os.fsync(handle.fileno())
    if durable:
        fsync_dir(path.parent)
    return True


def append_line(path: Union[str, Path], line: str, durable: bool = True) -> None:
    """Durably append one ``\\n``-terminated line to ``path``."""
    if "\n" in line:
        raise ValueError("journal lines must not contain newlines")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        if durable:
            os.fsync(handle.fileno())


def read_json_lines(path: Union[str, Path]) -> Iterator[dict]:
    """Parse a JSONL file, skipping unparsable (torn/partial) lines.

    A crash mid-append leaves a partial trailing line; replaying a
    journal must treat it as if the append never happened.  Non-dict
    payloads are skipped too — every record this library writes is an
    object.

    Undecodable bytes (a tail torn *inside* a UTF-8 multibyte sequence,
    or foreign binary garbage) decode with replacement characters; the
    mangled line then fails the JSON parse and is skipped like any
    other torn line, instead of detonating the whole replay with a
    ``UnicodeDecodeError``.
    """
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            for raw in handle:
                try:
                    record = json.loads(raw)
                except ValueError:
                    continue  # torn write: the transition never committed
                if isinstance(record, dict):
                    yield record
    except OSError:
        return
