"""Tracing and time-series observability (recorder, sampler, exporters)."""

from repro.trace.export import chrome_trace_events, write_chrome_trace, write_jsonl
from repro.trace.progress import RateWindow
from repro.trace.recorder import NULL_RECORDER, NullRecorder, Span, TraceRecorder
from repro.trace.sampler import TimeSeriesSampler

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "RateWindow",
    "Span",
    "TraceRecorder",
    "TimeSeriesSampler",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
]
