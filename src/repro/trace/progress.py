"""Wall-clock progress sampling for the service layer.

The trace package's :class:`~repro.trace.sampler.TimeSeriesSampler`
windows *simulated* time; the sweep service needs the same windowed-rate
idea over *wall-clock* events — specs completing, submits arriving — so
its status replies and progress streams can report live throughput
without keeping unbounded history.

:class:`RateWindow` is that hook: record one timestamp per event, keep
only the trailing window, and report events/second over it.  Thread-safe
(the service's journal-owner thread records while the event loop reads)
and O(window) memory by construction.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Optional


class RateWindow:
    """Events-per-second over a sliding wall-clock window."""

    def __init__(self, window_s: float = 10.0, max_events: int = 100_000) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.window_s = window_s
        #: hard memory bound: beyond it the oldest stamps age out early,
        #: which can only *under*-report a (huge) burst rate.
        self.max_events = max_events
        self._stamps: Deque[float] = deque()
        self._lock = threading.Lock()
        #: total events ever recorded (monotone, not windowed).
        self.total = 0

    def record(self, stamp: Optional[float] = None) -> None:
        """Note one event (``stamp`` defaults to now)."""
        now = stamp if stamp is not None else time.monotonic()
        with self._lock:
            self.total += 1
            self._stamps.append(now)
            self._evict(now)

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        while self._stamps and self._stamps[0] < horizon:
            self._stamps.popleft()
        while len(self._stamps) > self.max_events:
            self._stamps.popleft()

    def count(self, now: Optional[float] = None) -> int:
        """Events inside the trailing window."""
        now = now if now is not None else time.monotonic()
        with self._lock:
            self._evict(now)
            return len(self._stamps)

    def rate(self, now: Optional[float] = None) -> float:
        """Events per second over the trailing window."""
        return self.count(now) / self.window_s

    def __repr__(self) -> str:
        return (
            f"RateWindow({self.window_s}s, total={self.total}, "
            f"windowed={self.count()})"
        )
