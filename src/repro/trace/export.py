"""Trace exporters: Chrome ``trace_event`` JSON and JSONL.

The Chrome format (one ``{"traceEvents": [...]}`` object) loads directly
in ``chrome://tracing`` and Perfetto: span categories map to processes,
span groups (cores, links, ranks) map to threads, and sampler windows
become counter tracks.  The JSONL format is one self-describing JSON
object per line (``meta`` / ``span`` / ``instant`` / ``sample``) for
ad-hoc analysis with standard line tools.

Timestamps: the simulator counts picoseconds; Chrome trace ``ts``/``dur``
are microseconds, so values are divided by 1e6 and ``displayTimeUnit`` is
set to ``ns``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.trace.recorder import TraceRecorder

_PS_PER_US = 1_000_000.0


def _track_ids(recorder: TraceRecorder):
    """Assign stable pid per category and tid per (group, lane)."""
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    for record in recorder.spans:
        cat, group, lane = record[0], record[2], record[3]
        pids.setdefault(cat, len(pids) + 1)
        tids.setdefault((cat, group, lane), len(tids) + 1)
    for record in recorder.instants:
        cat, group = record[0], record[2]
        pids.setdefault(cat, len(pids) + 1)
        tids.setdefault((cat, group, 0), len(tids) + 1)
    return pids, tids


def chrome_trace_events(recorder: TraceRecorder) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for one recorded run."""
    pids, tids = _track_ids(recorder)
    events: List[Dict[str, Any]] = []
    for cat, pid in pids.items():
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "name": "process_name",
                "args": {"name": cat},
            }
        )
    for (cat, group, lane), tid in tids.items():
        label = group if lane == 0 else f"{group}[{lane}]"
        events.append(
            {
                "ph": "M",
                "pid": pids[cat],
                "tid": tid,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
    for cat, name, group, lane, start_ps, end_ps, args in recorder.spans:
        event: Dict[str, Any] = {
            "ph": "X",
            "pid": pids[cat],
            "tid": tids[(cat, group, lane)],
            "name": name,
            "cat": cat,
            "ts": start_ps / _PS_PER_US,
            "dur": (end_ps - start_ps) / _PS_PER_US,
        }
        if args:
            event["args"] = args
        events.append(event)
    for cat, name, group, ts_ps, args in recorder.instants:
        event = {
            "ph": "i",
            "s": "t",
            "pid": pids[cat],
            "tid": tids[(cat, group, 0)],
            "name": name,
            "cat": cat,
            "ts": ts_ps / _PS_PER_US,
        }
        if args:
            event["args"] = args
        events.append(event)
    counter_pid = len(pids) + 1
    emitted_counter_meta = False
    for sampler in recorder.samplers:
        for t_ps, deltas in sampler.samples:
            for key, delta in deltas.items():
                if not emitted_counter_meta:
                    events.append(
                        {
                            "ph": "M",
                            "pid": counter_pid,
                            "name": "process_name",
                            "args": {"name": "timeseries"},
                        }
                    )
                    emitted_counter_meta = True
                events.append(
                    {
                        "ph": "C",
                        "pid": counter_pid,
                        "name": key,
                        "ts": t_ps / _PS_PER_US,
                        "args": {"delta": delta},
                    }
                )
    return events


def write_chrome_trace(recorder: TraceRecorder, path: str) -> None:
    """Write a ``chrome://tracing`` / Perfetto loadable JSON file."""
    document = {
        "displayTimeUnit": "ns",
        "otherData": {
            "spans": len(recorder.spans),
            "instants": len(recorder.instants),
            "dropped": recorder.dropped,
        },
        "traceEvents": chrome_trace_events(recorder),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh)


def write_jsonl(recorder: TraceRecorder, path: str) -> None:
    """Write one JSON object per line: meta, spans, instants, samples."""
    with open(path, "w", encoding="utf-8") as fh:
        meta = {
            "type": "meta",
            "time_unit": "ps",
            "categories": recorder.categories(),
            "spans": len(recorder.spans),
            "instants": len(recorder.instants),
            "dropped": recorder.dropped,
        }
        fh.write(json.dumps(meta) + "\n")
        for cat, name, group, lane, start_ps, end_ps, args in recorder.spans:
            row: Dict[str, Any] = {
                "type": "span",
                "cat": cat,
                "name": name,
                "group": group,
                "lane": lane,
                "start_ps": start_ps,
                "end_ps": end_ps,
            }
            if args:
                row["args"] = args
            fh.write(json.dumps(row) + "\n")
        for cat, name, group, ts_ps, args in recorder.instants:
            row = {
                "type": "instant",
                "cat": cat,
                "name": name,
                "group": group,
                "ts_ps": ts_ps,
            }
            if args:
                row["args"] = args
            fh.write(json.dumps(row) + "\n")
        for sampler in recorder.samplers:
            for t_ps, deltas in sampler.samples:
                fh.write(
                    json.dumps(
                        {
                            "type": "sample",
                            "t_ps": t_ps,
                            "window_ps": sampler.window_ps,
                            "deltas": deltas,
                        }
                    )
                    + "\n"
                )
