"""Windowed time-series sampling of :class:`~repro.sim.stats.StatRegistry`.

A :class:`TimeSeriesSampler` turns the registry's monotonically growing
counters into per-interval curves: every ``window_ps`` of simulated time
it snapshots the counters and stores the deltas, so bandwidth
(``*.bytes`` deltas per window), retry rates (``dl.retransmissions``
deltas), and occupancy-style counters all become plottable series instead
of end-of-run totals.

The sampler is driven by the simulator event loop through
:meth:`TraceRecorder.on_time_advance` — it injects no events of its own,
so it cannot perturb ``run(until=...)`` horizons, deadlock detection, or
the final simulation time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

#: picoseconds per nanosecond (rate conversions).
_PS_PER_NS = 1000.0


class TimeSeriesSampler:
    """Snapshots counter deltas at fixed simulated-time windows."""

    def __init__(
        self,
        stats,
        window_ps: int,
        prefixes: Optional[Iterable[str]] = None,
    ) -> None:
        if window_ps <= 0:
            raise SimulationError(f"sampler window must be positive, got {window_ps}")
        self.stats = stats
        self.window_ps = window_ps
        #: optional dotted-component prefixes restricting which counters
        #: are tracked (None tracks everything).
        self.prefixes = tuple(prefixes) if prefixes else None
        #: (window_end_ps, {counter: delta}) per completed window.
        self.samples: List[Tuple[int, Dict[str, float]]] = []
        #: actual width of each window in ``samples`` — ``window_ps`` for
        #: full windows, shorter for the trailing partial one (and for the
        #: first window after a finalize/resume realigns the boundaries).
        #: Rate conversions divide by this, not the nominal width.
        self.widths: List[int] = []
        self._last: Dict[str, float] = {}
        self._next_boundary = window_ps
        #: end of the most recently emitted window (width bookkeeping).
        self._last_emit_ps = 0
        self._finalized_at: Optional[int] = None

    def _snapshot(self) -> Dict[str, float]:
        if self.prefixes is None:
            return self.stats.counters()
        merged: Dict[str, float] = {}
        for prefix in self.prefixes:
            merged.update(self.stats.counters(prefix))
        return merged

    def _emit(self, boundary_ps: int) -> None:
        snap = self._snapshot()
        deltas = {
            key: value - self._last.get(key, 0.0)
            for key, value in snap.items()
            if value != self._last.get(key, 0.0)
        }
        self.samples.append((boundary_ps, deltas))
        self.widths.append(boundary_ps - self._last_emit_ps)
        self._last_emit_ps = boundary_ps
        self._last = snap

    def on_time_advance(self, now_ps: int) -> None:
        """Emit one sample per window boundary crossed by this advance."""
        while now_ps >= self._next_boundary:
            self._emit(self._next_boundary)
            self._next_boundary += self.window_ps

    def finalize(self, now_ps: int) -> None:
        """Emit the trailing partial window (idempotent per end time).

        A run ending exactly on a window boundary has nothing left to
        emit; otherwise the partial window is recorded with its *actual*
        width so rate conversions stay honest, and subsequent sampling
        (finalize-after-resume) realigns to ``now_ps``.
        """
        if self._finalized_at == now_ps:
            return
        self._finalized_at = now_ps
        if now_ps > self._last_emit_ps:
            self._emit(now_ps)
            self._next_boundary = now_ps + self.window_ps

    # -- series extraction -----------------------------------------------------

    def series(self, name: str) -> List[Tuple[int, float]]:
        """(window_end_ps, delta) for one counter across all windows."""
        return [(t, deltas.get(name, 0.0)) for t, deltas in self.samples]

    def rate_series(self, name: str) -> List[Tuple[int, float]]:
        """(window_end_ps, delta per ns) — for byte counters this is GB/s.

        Each window is divided by its *actual* width: the trailing
        partial window (a run rarely ends exactly on a boundary) would
        otherwise under-report its rate by ``width / window_ps``.
        """
        return [
            (t, delta * _PS_PER_NS / width)
            for (t, delta), width in zip(self.series(name), self.widths)
        ]

    def tracked_names(self) -> List[str]:
        """Every counter that changed in at least one window."""
        names = set()
        for _t, deltas in self.samples:
            names.update(deltas)
        return sorted(names)

    def __repr__(self) -> str:
        return (
            f"TimeSeriesSampler(window_ps={self.window_ps}, "
            f"samples={len(self.samples)})"
        )
