"""Structured trace recording for simulation runs.

A :class:`TraceRecorder` collects *spans* (durations with a start and end
in simulated picoseconds), *instants* (point events), and feeds windowed
samplers (:mod:`repro.trace.sampler`) from the simulator event loop.  The
default on every :class:`~repro.sim.engine.Simulator` is the shared
:data:`NULL_RECORDER`, whose methods are all no-ops and whose
``enabled`` flag is ``False`` — instrumentation sites guard their work
with ``if trace.enabled`` so untraced runs pay only an attribute check.

Span taxonomy (the ``cat`` field):

* ``network`` — packet lifecycles on the DL bridge and the data-link
  protocol model (route spans, per-hop retries, DLL sends),
* ``dram`` — command issue at the module / rank / FR-FCFS layers,
* ``host`` — forwarding-engine spans and polling notices,
* ``nmp`` — thread execution, barrier and broadcast stalls,
* ``idc`` — remote read/write/broadcast operations as seen by the
  mechanism layer.

Spans within one ``group`` (a track in the viewer, e.g. one core or one
link) are lane-allocated: concurrent spans in the same group get distinct
lanes so exported Chrome traces render without false nesting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: default cap on recorded events; recording stops (and counts drops)
#: beyond it so a runaway traced run cannot exhaust memory.
DEFAULT_MAX_EVENTS = 2_000_000


class Span:
    """An open span handle returned by :meth:`TraceRecorder.begin`."""

    __slots__ = ("cat", "name", "group", "lane", "start_ps", "args")

    def __init__(
        self,
        cat: str,
        name: str,
        group: str,
        lane: int,
        start_ps: int,
        args: Optional[Dict[str, Any]],
    ) -> None:
        self.cat = cat
        self.name = name
        self.group = group
        self.lane = lane
        self.start_ps = start_ps
        self.args = args


class NullRecorder:
    """Zero-overhead default: every method is a no-op.

    Hot paths check :attr:`enabled` before building span arguments, so a
    simulation without tracing does no extra allocation.
    """

    enabled = False

    def begin(self, cat: str, name: str, group: str, **args: Any) -> Optional[Span]:
        return None

    def end(self, span: Optional[Span], **args: Any) -> None:
        pass

    def complete(
        self, cat: str, name: str, group: str, start_ps: int, end_ps: int, **args: Any
    ) -> None:
        pass

    def instant(self, cat: str, name: str, group: str = "", **args: Any) -> None:
        pass

    def on_time_advance(self, now_ps: int) -> None:
        pass

    def finalize(self) -> None:
        pass


#: the process-wide no-op recorder every Simulator starts with.
NULL_RECORDER = NullRecorder()


class TraceRecorder(NullRecorder):
    """Records spans/instants against a simulator's clock."""

    enabled = True

    def __init__(self, sim: Any, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.sim = sim
        self.max_events = max_events
        #: finished spans: (cat, name, group, lane, start_ps, end_ps, args).
        self.spans: List[Tuple[str, str, str, int, int, int, Optional[dict]]] = []
        #: instants: (cat, name, group, ts_ps, args).
        self.instants: List[Tuple[str, str, str, int, Optional[dict]]] = []
        #: events discarded after :attr:`max_events` was reached.
        self.dropped = 0
        self._samplers: List[Any] = []
        self._lanes: Dict[str, List[bool]] = {}

    # -- spans -----------------------------------------------------------------

    def _alloc_lane(self, group: str) -> int:
        lanes = self._lanes.setdefault(group, [])
        for index, busy in enumerate(lanes):
            if not busy:
                lanes[index] = True
                return index
        lanes.append(True)
        return len(lanes) - 1

    def begin(self, cat: str, name: str, group: str, **args: Any) -> Optional[Span]:
        """Open a span starting now; close it with :meth:`end`."""
        return Span(cat, name, group, self._alloc_lane(group), self.sim.now, args or None)

    def end(self, span: Optional[Span], **args: Any) -> None:
        """Close a span at the current time (extra args are merged in)."""
        if span is None:
            return
        self._lanes[span.group][span.lane] = False
        if len(self.spans) >= self.max_events:
            self.dropped += 1
            return
        merged = span.args
        if args:
            merged = dict(merged or ())
            merged.update(args)
        self.spans.append(
            (span.cat, span.name, span.group, span.lane, span.start_ps, self.sim.now, merged)
        )

    def complete(
        self, cat: str, name: str, group: str, start_ps: int, end_ps: int, **args: Any
    ) -> None:
        """Record a span whose start/end are already known.

        Used by timeline-arithmetic components (the DRAM model computes
        completion times analytically rather than sleeping through them).
        """
        if len(self.spans) >= self.max_events:
            self.dropped += 1
            return
        self.spans.append((cat, name, group, 0, start_ps, end_ps, args or None))

    def instant(self, cat: str, name: str, group: str = "", **args: Any) -> None:
        """Record a point event at the current time."""
        if len(self.instants) >= self.max_events:
            self.dropped += 1
            return
        self.instants.append((cat, name, group, self.sim.now, args or None))

    # -- event-loop hook -------------------------------------------------------

    def add_sampler(self, sampler: Any) -> None:
        """Attach a windowed sampler driven by simulated-time advances."""
        self._samplers.append(sampler)

    @property
    def samplers(self) -> List[Any]:
        return list(self._samplers)

    def on_time_advance(self, now_ps: int) -> None:
        """Called by the event loop whenever simulated time moves forward."""
        for sampler in self._samplers:
            sampler.on_time_advance(now_ps)

    def finalize(self) -> None:
        """Flush samplers' partial final windows (call once after ``run``)."""
        for sampler in self._samplers:
            sampler.finalize(self.sim.now)

    # -- introspection ---------------------------------------------------------

    def categories(self) -> List[str]:
        """Sorted distinct span/instant categories recorded so far."""
        cats = {record[0] for record in self.spans}
        cats.update(record[0] for record in self.instants)
        return sorted(cats)

    def __repr__(self) -> str:
        return (
            f"TraceRecorder({len(self.spans)} spans, {len(self.instants)} "
            f"instants, dropped={self.dropped})"
        )
