"""Event-level packet network over a :class:`Topology`.

Each directed edge owns a :class:`~repro.sim.resource.BandwidthResource`
(one direction of a full-duplex SerDes link).  Packets move store-and-
forward: at every hop the packet occupies the link for
``wire_bytes / bandwidth`` plus a fixed per-hop router latency, so path
length, link contention, and congestion all emerge from the event model —
the effects Fig. 16/17 of the paper attribute to network diameter.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.errors import RoutingError
from repro.interconnect.topology import Topology
from repro.sim.engine import AllOf, SimEvent, Simulator
from repro.sim.resource import BandwidthResource
from repro.sim.stats import StatRegistry


class PacketNetwork:
    """A routed group network with per-direction link bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        bandwidth_gbps: float,
        hop_latency_ps: int,
        wire_latency_ps: int,
        stats: StatRegistry,
        name: str = "dl",
        error_rate: float = 0.0,
        retry_penalty_ps: int = 500_000,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise RoutingError(f"{name}: error rate {error_rate} outside [0, 1)")
        self.sim = sim
        self.topology = topology
        self.hop_latency_ps = hop_latency_ps
        self.stats = stats
        self.name = name
        #: per-hop probability of a CRC failure forcing a DLL retransmit.
        self.error_rate = error_rate
        #: ACK-timeout + retransmission serialisation cost per error.
        self.retry_penalty_ps = retry_penalty_ps
        self._error_counter = 0
        self._links: Dict[Tuple[int, int], BandwidthResource] = {}
        for a, b in topology.edges:
            for src, dst in ((a, b), (b, a)):
                self._links[(src, dst)] = BandwidthResource(
                    sim,
                    bytes_per_ns=bandwidth_gbps,
                    latency_ps=wire_latency_ps,
                    name=f"{name}.link{src}->{dst}",
                )

    @property
    def links(self) -> Dict[Tuple[int, int], BandwidthResource]:
        """Directed-edge -> link resource map (read-only use)."""
        return self._links

    def link(self, src: int, dst: int) -> BandwidthResource:
        """The directed link from ``src`` to ``dst`` (must be adjacent)."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise RoutingError(
                f"{self.name}: no link {src}->{dst} in {self.topology.name}"
            ) from None

    def hops(self, src: int, dst: int) -> int:
        """Shortest-path hop count between two positions."""
        return self.topology.hops(src, dst)

    def send(self, src: int, dst: int, wire_bytes: int) -> SimEvent:
        """Route one packet ``src -> dst``; event fires on delivery."""
        if src == dst:
            event = self.sim.event(name=f"{self.name}.send.self")
            self.sim.schedule(0, lambda _arg: event.succeed(wire_bytes), None)
            return event
        done = self.sim.event(name=f"{self.name}.send")
        path = self.topology.path(src, dst)
        self.sim.process(
            self._route_proc(path, wire_bytes, done), name=f"{self.name}.route"
        )
        return done

    def _hop_failed(self) -> bool:
        """Deterministic per-hop CRC-failure decision (reproducible)."""
        if not self.error_rate:
            return False
        self._error_counter += 1
        return ((self._error_counter * 0x9E3779B1) >> 8) % 10_000 < int(
            self.error_rate * 10_000
        )

    def _route_proc(self, path, wire_bytes: int, done: SimEvent):
        for a, b in zip(path, path[1:]):
            yield self.link(a, b).transfer(wire_bytes)
            if self._hop_failed():
                # DLL retry: ACK timeout, then the packet re-occupies the link
                self.stats.add("dl.retransmissions")
                yield self.retry_penalty_ps
                yield self.link(a, b).transfer(wire_bytes)
            yield self.hop_latency_ps
            self.stats.add("dl.hop_bytes", wire_bytes)
            self.stats.add("dl.hops")
        self.stats.add("dl.packets")
        done.succeed(wire_bytes)

    def stream(self, src: int, dst: int, wire_bytes: int) -> SimEvent:
        """Pipelined bulk transfer ``src -> dst``.

        Models wormhole-style pipelining of a long packet train: every link
        on the path is occupied for the full train duration concurrently,
        and delivery completes when the slowest link finishes plus the
        residual per-hop latencies.  Used for transfers large enough that
        per-packet store-and-forward simulation would be wasteful.
        """
        if src == dst:
            event = self.sim.event(name=f"{self.name}.stream.self")
            self.sim.schedule(0, lambda _arg: event.succeed(wire_bytes), None)
            return event
        done = self.sim.event(name=f"{self.name}.stream")
        path = self.topology.path(src, dst)
        transfers = [
            self.link(a, b).transfer(wire_bytes) for a, b in zip(path, path[1:])
        ]
        hops = len(transfers)
        self.stats.add("dl.hop_bytes", wire_bytes * hops)
        self.stats.add("dl.hops", hops)
        self.stats.add("dl.packets")

        def waiter():
            yield AllOf(transfers)
            yield self.hop_latency_ps * hops
            done.succeed(wire_bytes)

        self.sim.process(waiter(), name=f"{self.name}.stream.wait")
        return done

    def broadcast(self, root: int, wire_bytes: int) -> SimEvent:
        """Flood ``wire_bytes`` from ``root`` to every node; fires when all
        nodes have received the packet.

        The flood pipelines wormhole-style: a node forwards flits as they
        arrive, so a child finishes receiving one hop latency after its
        parent (or when its inbound link finishes serialising, whichever
        is later) — a chain flood costs one serialisation plus per-hop
        latencies, not hops x payload.
        """
        done = self.sim.event(name=f"{self.name}.broadcast")
        tree = self.topology.broadcast_tree(root)
        if not tree:
            self.sim.schedule(0, lambda _arg: done.succeed(0), None)
            return done
        arrival: Dict[int, SimEvent] = {root: self.sim.event()}
        arrival[root].succeed(None)

        def forward(parent: int, child: int):
            # the link reserves its occupancy as soon as the parent begins
            # receiving (flits stream through); completion needs both the
            # serialisation to finish and the parent's data to be there
            transfer = self.link(parent, child).transfer(wire_bytes)
            yield AllOf([arrival[parent], transfer])
            yield self.hop_latency_ps
            self.stats.add("dl.hop_bytes", wire_bytes)
            self.stats.add("dl.hops")
            arrival[child].succeed(None)

        children = []
        for parent, child in tree:
            arrival.setdefault(child, self.sim.event())
            children.append(
                self.sim.process(forward(parent, child), name=f"{self.name}.bc")
            )

        def finish():
            yield AllOf(children)
            self.stats.add("dl.broadcasts")
            done.succeed(wire_bytes)

        self.sim.process(finish(), name=f"{self.name}.bc.finish")
        return done

    def total_busy_ps(self) -> int:
        """Sum of busy time across every directed link."""
        return sum(link.busy_ps for link in self._links.values())

    def peak_occupancy(self) -> float:
        """Highest per-link occupancy (congestion indicator)."""
        return max((link.occupancy() for link in self._links.values()), default=0.0)

    def iter_link_stats(self) -> Iterable[Tuple[Tuple[int, int], BandwidthResource]]:
        """(directed edge, resource) pairs for reporting."""
        return self._links.items()
