"""Event-level packet network over a :class:`Topology`.

Each directed edge owns a :class:`~repro.sim.resource.BandwidthResource`
(one direction of a full-duplex SerDes link).  Packets move store-and-
forward: at every hop the packet occupies the link for
``wire_bytes / bandwidth`` plus a fixed per-hop router latency, so path
length, link contention, and congestion all emerge from the event model —
the effects Fig. 16/17 of the paper attribute to network diameter.

Degraded operation
------------------

Every undirected link carries dynamic health state (:class:`LinkState`):
physically up/down and a lane-degradation fraction.  Routing is adaptive —
each hop consults the topology's live routing tables, which the
:class:`~repro.faults.watchdog.LinkWatchdog` updates when it declares a
link dead after consecutive ACK timeouts.  Per-hop delivery runs a bounded
retry loop with exponential backoff covering both transient CRC failures
(the retransmission itself can fail again) and dead links (pure ACK
silence); exhaustion — or the loss of every route — raises
:class:`~repro.errors.LinkFailure` through the transfer's completion
event, which the DIMM-Link IDC layer catches and escalates to host
CPU-forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import LinkFailure, RoutingError
from repro.faults.watchdog import LinkWatchdog
from repro.interconnect.topology import Topology
from repro.sim.engine import AllOf, SimEvent, Simulator
from repro.sim.resource import BandwidthResource
from repro.sim.stats import StatRegistry

Edge = Tuple[int, int]

#: exponential-backoff ceiling, as a multiple of the base retry penalty.
MAX_BACKOFF_FACTOR = 8


@dataclass
class LinkState:
    """Dynamic health of one undirected (full-duplex) link."""

    #: physical ground truth — whether the SerDes lanes carry signal.
    up: bool = True
    #: routing-table view — set once the watchdog declares the link dead.
    marked_down: bool = False
    #: surviving fraction of nominal bandwidth (lane degradation).
    degrade: float = 1.0
    #: nominal per-direction bandwidth, for degrade/restore arithmetic.
    nominal_bytes_per_ns: float = 0.0
    #: when the current physical outage started (-1 when up).
    down_since_ps: int = -1
    #: accumulated physical downtime of completed outages.
    down_ps: int = 0
    #: per-direction resources (filled at network construction).
    directions: List[BandwidthResource] = field(default_factory=list)


class PacketNetwork:
    """A routed group network with per-direction link bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        bandwidth_gbps: float,
        hop_latency_ps: int,
        wire_latency_ps: int,
        stats: StatRegistry,
        name: str = "dl",
        error_rate: float = 0.0,
        retry_penalty_ps: int = 500_000,
        max_retries: int = 8,
        watchdog_threshold: int = 3,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise RoutingError(f"{name}: error rate {error_rate} outside [0, 1)")
        if max_retries < 1:
            raise RoutingError(f"{name}: max_retries must be at least 1")
        self.sim = sim
        self.topology = topology
        self.hop_latency_ps = hop_latency_ps
        self.stats = stats
        self.name = name
        #: per-hop probability of a CRC failure forcing a DLL retransmit.
        self.error_rate = error_rate
        #: ACK-timeout + retransmission serialisation cost per error; also
        #: the base of the exponential backoff.
        self.retry_penalty_ps = retry_penalty_ps
        #: retransmissions before a hop gives up with :class:`LinkFailure`.
        self.max_retries = max_retries
        self.max_backoff_ps = retry_penalty_ps * MAX_BACKOFF_FACTOR
        self._error_counter = 0
        self._links: Dict[Edge, BandwidthResource] = {}
        self._state: Dict[Edge, LinkState] = {}
        for a, b in topology.edges:
            state = LinkState(nominal_bytes_per_ns=bandwidth_gbps)
            self._state[(a, b)] = state
            for src, dst in ((a, b), (b, a)):
                link = BandwidthResource(
                    sim,
                    bytes_per_ns=bandwidth_gbps,
                    latency_ps=wire_latency_ps,
                    name=f"{name}.link{src}->{dst}",
                )
                self._links[(src, dst)] = link
                state.directions.append(link)
        self.watchdog = LinkWatchdog(threshold=watchdog_threshold, name=name)
        self.watchdog.on_dead = self._on_watchdog_dead
        # inter-DIMM lookahead: nothing a packet does at one hop can
        # schedule work at the next hop sooner than the SerDes propagation
        # plus router latency (the per-link BandwidthResources already
        # contribute wire_latency + 1 each; this is the full-hop bound)
        sim.register_lookahead(
            f"{name}.hop", wire_latency_ps + hop_latency_ps + 1
        )
        # event/process labels are fixed per network: build them once
        # instead of formatting a fresh string on every packet
        self._n_send_self = f"{name}.send.self"
        self._n_send = f"{name}.send"
        self._n_route = f"{name}.route"
        self._n_stream_self = f"{name}.stream.self"
        self._n_stream = f"{name}.stream"
        self._n_stream_route = f"{name}.stream.route"
        self._n_broadcast = f"{name}.broadcast"
        self._n_bc = f"{name}.bc"
        self._n_bc_finish = f"{name}.bc.finish"

    @property
    def links(self) -> Dict[Edge, BandwidthResource]:
        """Directed-edge -> link resource map (read-only use)."""
        return self._links

    def link(self, src: int, dst: int) -> BandwidthResource:
        """The directed link from ``src`` to ``dst`` (must be adjacent)."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise RoutingError(
                f"{self.name}: no link {src}->{dst} in {self.topology.name}"
            ) from None

    def hops(self, src: int, dst: int) -> int:
        """Shortest live-path hop count between two positions."""
        return self.topology.hops(src, dst)

    # -- link health -----------------------------------------------------------------

    def link_state(self, a: int, b: int) -> LinkState:
        """Health record of the undirected link ``a<->b``."""
        return self._state[self.topology.edge_key(a, b)]

    def fail_link(self, a: int, b: int) -> bool:
        """Physically kill the link ``a<->b`` (both directions).

        Routing tables are *not* updated here — in-flight senders discover
        the failure through ACK silence, and the watchdog flips the link
        once enough consecutive timeouts accumulate.  Returns True when
        the link was up.
        """
        state = self.link_state(a, b)
        if not state.up:
            return False
        state.up = False
        state.down_since_ps = self.sim.now
        return True

    def restore_link(self, a: int, b: int) -> bool:
        """Repair the link ``a<->b``: physical state, routing, watchdog."""
        key = self.topology.edge_key(a, b)
        state = self._state[key]
        if state.up:
            return False
        state.up = True
        state.down_ps += self.sim.now - state.down_since_ps
        state.down_since_ps = -1
        state.marked_down = False
        self.watchdog.reset(key)
        if self.topology.set_link_state(a, b, True):
            self.stats.add("dl.links_restored")
        return True

    def degrade_link(self, a: int, b: int, fraction: float) -> None:
        """Reduce the link to ``fraction`` of nominal bandwidth (both ways)."""
        if not 0.0 < fraction <= 1.0:
            raise LinkFailure(
                f"{self.name}: degrade fraction {fraction} outside (0, 1]"
            )
        state = self.link_state(a, b)
        state.degrade = fraction
        for link in state.directions:
            link.bytes_per_ns = state.nominal_bytes_per_ns * fraction
        self.stats.add("dl.link_degradations")

    def _on_watchdog_dead(self, edge: Edge) -> None:
        """Watchdog verdict: flip the link in the routing tables."""
        state = self._state[edge]
        state.marked_down = True
        self.stats.add("dl.links_marked_down")
        self.topology.set_link_state(edge[0], edge[1], False)

    def availability(self) -> Dict[Edge, float]:
        """Per-link fraction of simulated time the link was physically up."""
        now = self.sim.now
        out: Dict[Edge, float] = {}
        for edge, state in self._state.items():
            down = state.down_ps
            if not state.up and state.down_since_ps >= 0:
                down += now - state.down_since_ps
            out[edge] = 1.0 - down / now if now > 0 else 1.0
        return out

    def finalize_stats(self) -> float:
        """Write per-link availability into the registry; return the minimum."""
        worst = 1.0
        for (a, b), value in self.availability().items():
            if value < 1.0:
                self.stats.set(f"{self.name}.link{a}-{b}.availability", value)
            worst = min(worst, value)
        return worst

    # -- delivery --------------------------------------------------------------------

    def send(self, src: int, dst: int, wire_bytes: int) -> SimEvent:
        """Route one packet ``src -> dst``; event fires on delivery.

        On an unrecoverable failure (retry exhaustion or no live route)
        the event *fails* with :class:`LinkFailure` — callers waiting on
        it catch the exception at their ``yield``.
        """
        if src == dst:
            event = self.sim.event(name=self._n_send_self)
            self.sim.schedule(0, event.succeed, wire_bytes)
            return event
        done = self.sim.event(name=self._n_send)
        self.sim.process(
            self._route_proc(src, dst, wire_bytes, done), name=self._n_route
        )
        return done

    def _hop_failed(self) -> bool:
        """Deterministic per-hop CRC-failure decision (reproducible)."""
        if not self.error_rate:
            return False
        self._error_counter += 1
        return ((self._error_counter * 0x9E3779B1) >> 8) % 10_000 < int(
            self.error_rate * 10_000
        )

    def _next_hop_or_fail(self, node: int, dst: int) -> int:
        try:
            return self.topology.next_hop(node, dst)
        except RoutingError as exc:
            self.stats.add("dl.unroutable")
            raise LinkFailure(
                f"{self.name}: no live route {node}->{dst}"
            ) from exc

    def _backoff_ps(self, attempt: int) -> int:
        # cap the exponent before shifting: 2**(attempt-1) for a large
        # attempt count would allocate a huge int only for min() to throw
        # it away.  Any shift past the ceiling's bit length already
        # saturates, so the clamped result is equal for every attempt.
        shift = min(attempt - 1, MAX_BACKOFF_FACTOR.bit_length())
        return min(self.retry_penalty_ps << shift, self.max_backoff_ps)

    def _hop_with_retry(self, a: int, b: int, wire_bytes: int):
        """Deliver one hop ``a -> b`` under the bounded retry/backoff loop.

        Covers both failure modes: a CRC-corrupted frame (link alive; the
        retransmission is itself subject to the same error rate) and a
        physically dead link (pure ACK silence, reported to the watchdog).
        Raises :class:`LinkFailure` once ``max_retries`` is exhausted or
        the link gets marked down under us.
        """
        edge = self.topology.edge_key(a, b)
        attempt = 0
        while True:
            state = self._state[edge]
            if state.marked_down:
                raise LinkFailure(f"{self.name}: link {a}<->{b} is down")
            if state.up:
                yield self.link(a, b).transfer(wire_bytes)
                if not self._hop_failed():
                    self.watchdog.report_success(edge)
                    return
                # CRC failure — the frame is retransmitted below, and the
                # retransmission rolls the same per-hop error dice again
            else:
                # dead link: nothing comes back; the sender only learns
                # from ACK silence, which the watchdog accumulates
                self.stats.add("dl.ack_timeouts")
                self.watchdog.report_timeout(edge)
            attempt += 1
            if attempt > self.max_retries:
                raise LinkFailure(
                    f"{self.name}: link {a}<->{b} gave up after "
                    f"{self.max_retries} retries"
                )
            backoff = self._backoff_ps(attempt)
            self.stats.add("dl.retransmissions")
            self.stats.add("dl.backoff_ps", backoff)
            trace = self.sim.trace
            if trace.enabled:
                trace.instant(
                    "network",
                    "retry",
                    f"{self.name}.link{a}-{b}",
                    attempt=attempt,
                    backoff_ps=backoff,
                )
            yield backoff

    def _route_proc(self, src: int, dst: int, wire_bytes: int, done: SimEvent):
        """Adaptive store-and-forward routing: re-resolve the next hop at
        every step so mid-flight route recomputation takes effect."""
        trace = self.sim.trace
        span = (
            trace.begin(
                "network",
                "packet",
                f"{self.name}.route",
                src=src,
                dst=dst,
                bytes=wire_bytes,
            )
            if trace.enabled
            else None
        )
        try:
            node = src
            steps = 0
            while node != dst:
                nxt = self._next_hop_or_fail(node, dst)
                yield from self._hop_with_retry(node, nxt, wire_bytes)
                yield self.hop_latency_ps
                self.stats.add("dl.hop_bytes", wire_bytes)
                self.stats.add("dl.hops")
                node = nxt
                steps += 1
                if steps > 2 * self.topology.n:
                    raise LinkFailure(
                        f"{self.name}: routing loop {src}->{dst} under churn"
                    )
        except LinkFailure as exc:
            self.stats.add("dl.send_failures")
            trace.end(span, status="failed")
            done.fail(exc)
            return
        self.stats.add("dl.packets")
        trace.end(span, status="delivered", hops=steps)
        done.succeed(wire_bytes)

    def stream(self, src: int, dst: int, wire_bytes: int) -> SimEvent:
        """Pipelined bulk transfer ``src -> dst``.

        Models wormhole-style pipelining of a long packet train: every link
        on the path is occupied for the full train duration concurrently,
        and delivery completes when the slowest link finishes plus the
        residual per-hop latencies.  Used for transfers large enough that
        per-packet store-and-forward simulation would be wasteful.

        A physically dead link on the path stalls the train: the head
        flits vanish, the sender times out, and the whole train is
        re-issued (with backoff) over whatever route is then live.  Like
        :meth:`send`, the returned event fails with :class:`LinkFailure`
        on exhaustion.
        """
        if src == dst:
            event = self.sim.event(name=self._n_stream_self)
            self.sim.schedule(0, event.succeed, wire_bytes)
            return event
        done = self.sim.event(name=self._n_stream)
        self.sim.process(
            self._stream_proc(src, dst, wire_bytes, done),
            name=self._n_stream_route,
        )
        return done

    def _stream_proc(self, src: int, dst: int, wire_bytes: int, done: SimEvent):
        trace = self.sim.trace
        span = (
            trace.begin(
                "network",
                "stream",
                f"{self.name}.stream",
                src=src,
                dst=dst,
                bytes=wire_bytes,
            )
            if trace.enabled
            else None
        )
        attempt = 0
        while True:
            try:
                path = self.topology.path(src, dst)
            except RoutingError as exc:
                self.stats.add("dl.unroutable")
                self.stats.add("dl.send_failures")
                trace.end(span, status="failed")
                done.fail(LinkFailure(f"{self.name}: no live route {src}->{dst}"))
                return
            edge_key = self.topology.edge_key
            keys = [edge_key(a, b) for a, b in zip(path, path[1:])]
            dead = [key for key in keys if not self._state[key].up]
            if not dead:
                transfers = [
                    self.link(a, b).transfer(wire_bytes)
                    for a, b in zip(path, path[1:])
                ]
                hops = len(transfers)
                yield AllOf(transfers)
                yield self.hop_latency_ps * hops
                self.stats.add("dl.hop_bytes", wire_bytes * hops)
                self.stats.add("dl.hops", hops)
                self.stats.add("dl.packets")
                trace.end(span, status="delivered", hops=hops)
                done.succeed(wire_bytes)
                return
            for edge in dead:
                self.stats.add("dl.ack_timeouts")
                self.watchdog.report_timeout(edge)
            attempt += 1
            if attempt > self.max_retries:
                self.stats.add("dl.send_failures")
                trace.end(span, status="failed")
                done.fail(
                    LinkFailure(
                        f"{self.name}: stream {src}->{dst} gave up after "
                        f"{self.max_retries} retries"
                    )
                )
                return
            backoff = self._backoff_ps(attempt)
            self.stats.add("dl.retransmissions")
            self.stats.add("dl.backoff_ps", backoff)
            yield backoff

    def broadcast(self, root: int, wire_bytes: int) -> SimEvent:
        """Flood ``wire_bytes`` from ``root`` to every node; fires when all
        nodes have received the packet.

        The flood pipelines wormhole-style: a node forwards flits as they
        arrive, so a child finishes receiving one hop latency after its
        parent (or when its inbound link finishes serialising, whichever
        is later) — a chain flood costs one serialisation plus per-hop
        latencies, not hops x payload.

        If the flood cannot reach every node (a partitioned group, or a
        tree link dying under the flood), the event fails with
        :class:`LinkFailure`; the IDC layer then re-issues the whole group
        delivery through the host.
        """
        done = self.sim.event(name=self._n_broadcast)
        try:
            tree = self.topology.broadcast_tree(root)
        except RoutingError as exc:
            self.stats.add("dl.unroutable")
            failure = LinkFailure(f"{self.name}: flood from {root} cut off")
            failure.__cause__ = exc
            self.sim.schedule(0, done.fail, failure)
            return done
        if not tree:
            self.sim.schedule(0, done.succeed, 0)
            return done
        arrival: Dict[int, SimEvent] = {root: self.sim.event()}
        arrival[root].succeed(None)

        def forward(parent: int, child: int):
            # the link reserves its occupancy as soon as the parent begins
            # receiving (flits stream through); completion needs both the
            # serialisation to finish and the parent's data to be there
            edge = self.topology.edge_key(parent, child)
            state = self._state[edge]
            clean = False
            if state.up and not state.marked_down:
                transfer = self.link(parent, child).transfer(wire_bytes)
                yield AllOf([arrival[parent], transfer])
                clean = not self._hop_failed()
            else:
                yield arrival[parent]
            if clean:
                self.watchdog.report_success(edge)
            else:
                # corrupted or dead first copy: drop to the per-hop
                # retry/backoff loop (raises LinkFailure on exhaustion)
                yield from self._hop_with_retry(parent, child, wire_bytes)
            yield self.hop_latency_ps
            self.stats.add("dl.hop_bytes", wire_bytes)
            self.stats.add("dl.hops")
            arrival[child].succeed(None)

        children = []
        for parent, child in tree:
            arrival.setdefault(child, self.sim.event())
            children.append(
                self.sim.process(forward(parent, child), name=self._n_bc)
            )

        trace = self.sim.trace
        span = (
            trace.begin(
                "network",
                "broadcast",
                f"{self.name}.broadcast",
                root=root,
                bytes=wire_bytes,
            )
            if trace.enabled
            else None
        )

        def finish():
            try:
                yield AllOf(children)
            except LinkFailure as exc:
                self.stats.add("dl.send_failures")
                trace.end(span, status="failed")
                done.fail(exc)
                return
            self.stats.add("dl.broadcasts")
            trace.end(span, status="delivered")
            done.succeed(wire_bytes)

        self.sim.process(finish(), name=self._n_bc_finish)
        return done

    def total_busy_ps(self) -> int:
        """Sum of busy time across every directed link."""
        return sum(link.busy_ps for link in self._links.values())

    def peak_occupancy(self) -> float:
        """Highest per-link occupancy (congestion indicator)."""
        return max((link.occupancy() for link in self._links.values()), default=0.0)

    def iter_link_stats(self) -> Iterable[Tuple[Edge, BandwidthResource]]:
        """(directed edge, resource) pairs for reporting."""
        return self._links.items()
