"""DL-group topologies and routing tables (Sec. VI, Fig. 17).

The paper's shipping design connects the DIMMs of a group as a linear
chain ("half-ring"); Sec. VI explores Ring, Mesh, and Torus alternatives.
A :class:`Topology` is an undirected graph over group-local positions
``0..n-1`` with deterministic shortest-path routing (BFS, lowest-index
tie-break) and BFS broadcast trees.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import ConfigError, RoutingError

TOPOLOGY_NAMES = ("half_ring", "ring", "mesh", "torus")


def _mesh_dims(n: int) -> Tuple[int, int]:
    """Factor ``n`` into the most-square (rows, cols) grid."""
    best = (1, n)
    for rows in range(1, int(n ** 0.5) + 1):
        if n % rows == 0:
            best = (rows, n // rows)
    return best


def build_edges(name: str, n: int) -> List[Tuple[int, int]]:
    """Undirected edge list for a named topology over ``n`` nodes.

    Degenerate sizes fall back gracefully rather than erroring:

    * a ``ring`` with ``n < 3`` degrades to a chain (a 2-node "ring" would
      need a redundant parallel link; the bridge has one),
    * a ``torus`` drops the wrap-around edge of any dimension of width
      ``<= 2`` (the wrap would duplicate an existing mesh edge), so e.g. a
      2x2 torus has exactly the 2x2 mesh's edges.
    """
    if n <= 0:
        raise ConfigError(f"topology needs at least one node, got {n}")
    if name == "half_ring":
        return [(i, i + 1) for i in range(n - 1)]
    if name == "ring":
        if n < 3:
            return [(i, i + 1) for i in range(n - 1)]
        # wrap edge kept canonical (low, high) like every other edge
        return [(i, i + 1) for i in range(n - 1)] + [(0, n - 1)]
    if name in ("mesh", "torus"):
        rows, cols = _mesh_dims(n)
        edges = []
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                if c + 1 < cols:
                    edges.append((node, node + 1))
                elif name == "torus" and cols > 2:
                    edges.append((node, r * cols))
                if r + 1 < rows:
                    edges.append((node, node + cols))
                elif name == "torus" and rows > 2:
                    edges.append((node, c))
        return sorted(set(tuple(sorted(e)) for e in edges if e[0] != e[1]))
    raise ConfigError(f"unknown topology {name!r} (choose from {TOPOLOGY_NAMES})")


class Topology:
    """A routed topology over ``n`` group-local node positions.

    ``edges`` is the nominal (as-built) wiring.  Each edge also carries a
    dynamic up/down state: :meth:`set_link_state` flips a link and
    recomputes every routing table over the surviving edges, so routing
    adapts to failures (and repairs) at simulation time.
    """

    def __init__(self, name: str, n: int) -> None:
        self.name = name
        self.n = n
        self.edges = build_edges(name, n)
        # the nominal wiring never changes after construction: both the
        # canonical-key map (either direction -> sorted key) and the edge
        # set are built once and shared by every edge_key() call
        self._edge_keys: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for edge in self.edges:
            self._edge_keys[edge] = edge
            self._edge_keys[(edge[1], edge[0])] = edge
        self._down: Set[Tuple[int, int]] = set()
        self.route_recomputes = 0
        self._rebuild_routes()

    def _rebuild_routes(self) -> None:
        """Recompute adjacency + routing tables over the live edges.

        This is the single invalidation point for every derived routing
        structure: next-hop tables, distance tables, and the memoized
        path / broadcast-tree caches.  ``set_link_state`` funnels every
        link-state change through here, so cached routes can never
        outlive the topology state they were computed from.
        """
        self._adjacency: Dict[int, List[int]] = {i: [] for i in range(self.n)}
        for a, b in self.live_edges:
            self._adjacency[a].append(b)
            self._adjacency[b].append(a)
        for neighbors in self._adjacency.values():
            neighbors.sort()
        # routing table: _next_hop[src][dst] -> neighbor on a shortest path
        # (and _dist[src][dst] -> hop count, -1 when unreachable)
        self._next_hop: List[List[int]] = []
        self._dist: List[List[int]] = []
        for src in range(self.n):
            next_hops, dist = self._bfs_next_hops(src)
            self._next_hop.append(next_hops)
            self._dist.append(dist)
        self._path_cache: Dict[Tuple[int, int], List[int]] = {}
        self._tree_cache: Dict[int, List[Tuple[int, int]]] = {}

    @property
    def live_edges(self) -> List[Tuple[int, int]]:
        """The nominal edges currently marked up."""
        return [e for e in self.edges if e not in self._down]

    def edge_key(self, a: int, b: int) -> Tuple[int, int]:
        """Canonical (sorted) key of an existing nominal edge."""
        try:
            return self._edge_keys[(a, b)]
        except KeyError:
            self._check(a)
            self._check(b)
            raise RoutingError(f"{self.name}: no edge {a}<->{b}") from None

    def link_up(self, a: int, b: int) -> bool:
        """Whether the edge ``a<->b`` is currently marked up."""
        return self.edge_key(a, b) not in self._down

    def set_link_state(self, a: int, b: int, up: bool) -> bool:
        """Mark the edge ``a<->b`` up or down; recompute routes on change.

        Returns True when the state actually changed.
        """
        key = self.edge_key(a, b)
        if up:
            if key not in self._down:
                return False
            self._down.discard(key)
        else:
            if key in self._down:
                return False
            self._down.add(key)
        self.route_recomputes += 1
        self._rebuild_routes()
        return True

    def reachable(self, src: int, dst: int) -> bool:
        """Whether a live route ``src -> dst`` currently exists."""
        self._check(src)
        self._check(dst)
        return src == dst or self._next_hop[src][dst] != -1

    def component(self, root: int) -> Set[int]:
        """All nodes reachable from ``root`` over live edges (incl. root)."""
        self._check(root)
        return {root} | {d for d in range(self.n) if self._next_hop[root][d] != -1}

    def _bfs_next_hops(self, src: int) -> Tuple[List[int], List[int]]:
        parent = [-1] * self.n
        dist = [-1] * self.n
        dist[src] = 0
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for neighbor in self._adjacency[node]:
                if dist[neighbor] == -1:
                    dist[neighbor] = dist[node] + 1
                    parent[neighbor] = node
                    queue.append(neighbor)
        next_hops = [-1] * self.n
        for dst in range(self.n):
            if dst == src or dist[dst] == -1:
                continue
            node = dst
            while parent[node] != src:
                node = parent[node]
            next_hops[dst] = node
        return next_hops, dist

    def neighbors(self, node: int) -> Sequence[int]:
        """Adjacent nodes of ``node``."""
        self._check(node)
        return tuple(self._adjacency[node])

    def next_hop(self, src: int, dst: int) -> int:
        """First hop on a shortest path from ``src`` to ``dst``."""
        self._check(src)
        self._check(dst)
        if src == dst:
            raise RoutingError(f"next_hop of {src} to itself")
        hop = self._next_hop[src][dst]
        if hop == -1:
            raise RoutingError(f"no path from {src} to {dst} in {self.name}")
        return hop

    def path(self, src: int, dst: int) -> List[int]:
        """Full shortest path ``[src, ..., dst]``.

        Memoized until the next link-state change; the caller gets a
        private copy, so mutating the returned list is safe.
        """
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached[:]
        self._check(src)
        self._check(dst)
        path = [src]
        node = src
        guard = 0
        while node != dst:
            node = self.next_hop(node, dst)
            path.append(node)
            guard += 1
            if guard > self.n:
                raise RoutingError(f"routing loop {src}->{dst} in {self.name}")
        self._path_cache[(src, dst)] = path
        return path[:]

    def hops(self, src: int, dst: int) -> int:
        """Shortest-path hop count."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        distance = self._dist[src][dst]
        if distance == -1:
            raise RoutingError(f"no path from {src} to {dst} in {self.name}")
        return distance

    def diameter(self) -> int:
        """Maximum shortest-path distance between any node pair."""
        return max(
            (self.hops(a, b) for a in range(self.n) for b in range(self.n) if a != b),
            default=0,
        )

    def average_distance(self) -> float:
        """Mean shortest-path distance over distinct pairs."""
        pairs = [(a, b) for a in range(self.n) for b in range(self.n) if a != b]
        if not pairs:
            return 0.0
        return sum(self.hops(a, b) for a, b in pairs) / len(pairs)

    def broadcast_tree(
        self, root: int, require_all: bool = True
    ) -> List[Tuple[int, int]]:
        """BFS tree edges ``(parent, child)`` in propagation order.

        The tree spans live edges only.  With ``require_all`` (default) an
        unreachable node raises :class:`RoutingError`; otherwise the tree
        covers just the root's connected component.
        """
        self._check(root)
        order = self._tree_cache.get(root)
        if order is None:
            seen = {root}
            order = []
            queue = deque([root])
            while queue:
                node = queue.popleft()
                for neighbor in self._adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        order.append((node, neighbor))
                        queue.append(neighbor)
            self._tree_cache[root] = order
        if require_all and len(order) != self.n - 1:
            raise RoutingError(f"{self.name}: broadcast from {root} cannot reach all")
        return order[:]

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise RoutingError(f"node {node} out of range [0, {self.n})")

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, n={self.n}, edges={len(self.edges)})"
