"""Link-level network substrate: topologies, routing, packet movement."""

from repro.interconnect.network import PacketNetwork
from repro.interconnect.topology import TOPOLOGY_NAMES, Topology, build_edges

__all__ = ["PacketNetwork", "TOPOLOGY_NAMES", "Topology", "build_edges"]
