"""DIMM-Link on disaggregated memory (Sec. VI "future work").

The paper argues DIMM-Link also fits disaggregated memory: DIMMs are
organised as *memory blades* attached over PCIe/CXL/Ethernet, DIMM-Link
augments the *intra-blade* IDC capability, and the existing fabric
protocol (CXL.mem or RDMA) carries *inter-blade* transfers.

This module implements that organisation: each blade is a full
:class:`~repro.nmp.system.NMPSystem` (DL bridge, local MCs, DRAM)
embedded in one shared simulator, blades are joined by a fabric with a
technology-dependent bandwidth/latency point, and
:meth:`DisaggregatedMemory.transfer` routes between any two DIMMs in the
cluster — DL hops inside a blade, the fabric between blades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import SystemConfig
from repro.errors import ConfigError, RoutingError
from repro.protocol.packet import wire_bytes_for_transfer
from repro.sim.engine import SimEvent, Simulator
from repro.sim.resource import BandwidthResource
from repro.sim.stats import StatRegistry
from repro.sim.time import ns


@dataclass(frozen=True)
class FabricTech:
    """An inter-blade interconnect technology."""

    name: str
    bandwidth_gbps: float
    latency_ns: float
    #: per-transfer software/protocol overhead at each endpoint.
    endpoint_overhead_ns: float


#: CXL 3.0 x8-ish link with hardware coherence (lowest latency).
CXL = FabricTech("cxl", bandwidth_gbps=64.0, latency_ns=300.0, endpoint_overhead_ns=80.0)
#: one-sided RDMA over 200G fabric.
RDMA = FabricTech("rdma", bandwidth_gbps=25.0, latency_ns=1500.0, endpoint_overhead_ns=600.0)
#: commodity Ethernet with a software stack.
ETHERNET = FabricTech(
    "ethernet", bandwidth_gbps=12.5, latency_ns=8000.0, endpoint_overhead_ns=4000.0
)

FABRICS: Dict[str, FabricTech] = {f.name: f for f in (CXL, RDMA, ETHERNET)}


def fabric(name: str) -> FabricTech:
    """Look up an inter-blade fabric technology."""
    try:
        return FABRICS[name]
    except KeyError:
        raise ConfigError(
            f"unknown fabric {name!r}; available: {sorted(FABRICS)}"
        ) from None


class DisaggregatedMemory:
    """A cluster of DIMM-NMP memory blades joined by a fabric."""

    def __init__(
        self,
        num_blades: int = 2,
        blade_config: str = "8D-4C",
        fabric_name: str = "cxl",
    ) -> None:
        if num_blades <= 0:
            raise ConfigError("need at least one blade")
        from repro.nmp.system import NMPSystem  # local import: avoids a cycle

        self.sim = Simulator()
        self.stats = StatRegistry()
        self.fabric_tech = fabric(fabric_name)
        self.blades: List[NMPSystem] = [
            NMPSystem(
                SystemConfig.named(blade_config),
                idc="dimm_link",
                sim=self.sim,
                stats=self.stats.scope(f"blade{index}"),
            )
            for index in range(num_blades)
        ]
        self.dimms_per_blade = self.blades[0].config.num_dimms
        # full-duplex fabric port per blade
        self._ports: List[Tuple[BandwidthResource, BandwidthResource]] = [
            (
                BandwidthResource(
                    self.sim,
                    self.fabric_tech.bandwidth_gbps,
                    latency_ps=ns(self.fabric_tech.latency_ns),
                    name=f"blade{index}.tx",
                ),
                BandwidthResource(
                    self.sim,
                    self.fabric_tech.bandwidth_gbps,
                    latency_ps=ns(self.fabric_tech.latency_ns),
                    name=f"blade{index}.rx",
                ),
            )
            for index in range(num_blades)
        ]

    def locate(self, global_dimm: int) -> Tuple[int, int]:
        """Global DIMM id -> (blade, blade-local DIMM)."""
        blade, local = divmod(global_dimm, self.dimms_per_blade)
        if blade >= len(self.blades):
            raise RoutingError(f"global DIMM {global_dimm} beyond the cluster")
        return blade, local

    def transfer(self, src_dimm: int, dst_dimm: int, nbytes: int) -> SimEvent:
        """Move ``nbytes`` between any two DIMMs in the cluster.

        Same blade: a DIMM-Link remote write.  Different blades: DL to the
        source blade's port DIMM, the fabric, then DL to the destination.
        """
        src_blade, src_local = self.locate(src_dimm)
        dst_blade, dst_local = self.locate(dst_dimm)
        if src_blade == dst_blade:
            self.stats.add("disagg.intra_blade_bytes", nbytes)
            return self.blades[src_blade].idc.remote_write(
                src_local, dst_local, 0, nbytes
            )
        done = self.sim.event(name="disagg.transfer")
        self.sim.process(
            self._inter_blade(src_blade, src_local, dst_blade, dst_local, nbytes, done),
            name="disagg.xfer",
        )
        return done

    def _inter_blade(self, src_blade, src_local, dst_blade, dst_local, nbytes, done):
        tech = self.fabric_tech
        wire = wire_bytes_for_transfer(nbytes)
        src = self.blades[src_blade]
        dst = self.blades[dst_blade]
        # DL to the source blade's fabric-port DIMM (its group master)
        port_out = src.config.master_dimm(src.config.group_of(src_local))
        if port_out != src_local:
            yield src.idc.bridge.stream(src_local, port_out, wire)
        yield ns(tech.endpoint_overhead_ns)
        yield self._ports[src_blade][0].transfer(wire)
        yield self._ports[dst_blade][1].transfer(wire)
        yield ns(tech.endpoint_overhead_ns)
        # DL from the destination blade's port DIMM to the target
        port_in = dst.config.master_dimm(dst.config.group_of(dst_local))
        if port_in != dst_local:
            yield dst.idc.bridge.stream(port_in, dst_local, wire)
        yield dst.dimms[dst_local].mc.local_access(0, nbytes, True)
        self.stats.add("disagg.inter_blade_bytes", nbytes)
        done.succeed(nbytes)

    def measure_bandwidth(self, src_dimm: int, dst_dimm: int, nbytes: int) -> float:
        """Achieved GB/s for one transfer (drains the simulator)."""
        start = self.sim.now
        done = []
        self.transfer(src_dimm, dst_dimm, nbytes).add_callback(
            lambda ev: done.append(self.sim.now)
        )
        self.sim.run()
        if not done:
            raise RoutingError("transfer did not complete")
        elapsed = done[0] - start
        return nbytes * 1000 / elapsed
