"""DL-Controller: per-DIMM packetization/decoding front-end (Fig. 2 ❷).

The DL-Controller's Network Interface packetizes requests, checks CRCs,
and decodes arriving packets.  In the event model these are fixed ASIC
latencies per packet (the FPGA prototype needs 18 cycles at 100 MHz
without the HLS CRC; an ASIC implementation is far faster — Sec. V-A),
plus the per-transfer segmentation rules of the transaction layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocol.packet import MAX_PAYLOAD, wire_bytes_for_transfer
from repro.sim.stats import StatRegistry
from repro.sim.time import ns


@dataclass(frozen=True)
class DLControllerTiming:
    """ASIC latencies of the DL-Controller datapath."""

    #: packetize one request (NW-Interface + CRC generation).
    packetize_ns: float = 8.0
    #: CRC check + decode + hand-off to the local MC or core.
    decode_ns: float = 8.0


class DLController:
    """Per-DIMM controller state: counts traffic and charges NI latencies."""

    def __init__(
        self,
        dimm_id: int,
        stats: StatRegistry,
        timing: DLControllerTiming = DLControllerTiming(),
    ) -> None:
        self.dimm_id = dimm_id
        self.stats = stats
        self.timing = timing

    @property
    def packetize_ps(self) -> int:
        """Packetization latency in simulator units."""
        return ns(self.timing.packetize_ns)

    @property
    def decode_ps(self) -> int:
        """Decode latency in simulator units."""
        return ns(self.timing.decode_ns)

    def packetize(self, nbytes: int) -> int:
        """Account packetizing an ``nbytes`` transfer; returns wire bytes."""
        wire = wire_bytes_for_transfer(nbytes)
        packets = max(1, -(-max(nbytes, 1) // MAX_PAYLOAD))
        self.stats.add("dlc.tx_packets", packets)
        self.stats.add("dlc.tx_wire_bytes", wire)
        return wire

    def receive(self, nbytes: int) -> None:
        """Account receiving an ``nbytes`` transfer."""
        packets = max(1, -(-max(nbytes, 1) // MAX_PAYLOAD))
        self.stats.add("dlc.rx_packets", packets)
