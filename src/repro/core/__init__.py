"""DIMM-Link itself: bridge, controller, hybrid routing, sync, SerDes."""

from repro.core.bridge import DLBridge
from repro.core.controller import DLController, DLControllerTiming
from repro.core.dimmlink import DIMMLinkIDC
from repro.core.routing import (
    INTER_GROUP_BC,
    INTER_GROUP_P2P,
    INTRA_GROUP_BC,
    INTRA_GROUP_P2P,
    BroadcastPlan,
    P2PPlan,
    distance,
    plan_broadcast,
    plan_p2p,
)
from repro.core.serdes import GRS, RIBBON_CABLE, SMA_CABLE, SerDesTech, table2, tech
from repro.core.sync import SYNC_MODES, SyncManager

__all__ = [
    "DLBridge",
    "DLController",
    "DLControllerTiming",
    "DIMMLinkIDC",
    "INTER_GROUP_BC",
    "INTER_GROUP_P2P",
    "INTRA_GROUP_BC",
    "INTRA_GROUP_P2P",
    "BroadcastPlan",
    "P2PPlan",
    "distance",
    "plan_broadcast",
    "plan_p2p",
    "GRS",
    "RIBBON_CABLE",
    "SMA_CABLE",
    "SerDesTech",
    "table2",
    "tech",
    "SYNC_MODES",
    "SyncManager",
]
