"""The DIMM-Link IDC mechanism (the paper's contribution, Sec. III).

Executes the hybrid-routing plans on the event simulator:

* intra-group transfers move as DL packets over the group's bridge
  network (packetize -> route -> decode -> local DRAM at the far end),
* inter-group transfers are registered with the polling proxy (when the
  polling strategy uses one), noticed by the host, and forwarded through
  the memory channels by the FWD controller,
* broadcasts flood the source group and are host-forwarded once per
  remote group to that group's gateway (master) DIMM, which floods it on.

Traffic is classified into ``idc.intra_group_bytes`` vs.
``idc.forwarded_bytes`` for Fig. 11's breakdown.

Degraded-mode failover
----------------------

The hybrid-routing design makes the host path a *functional superset* of
the bridge: any intra-group transfer can also travel through the memory
channels.  Every intra-group operation therefore catches
:class:`~repro.errors.LinkFailure` (raised by the packet network once its
bounded retry/backoff loop gives up, or when no live route remains) and
re-issues the whole operation through host CPU-forwarding.  The
escalations are counted as ``dl.rerouted_to_host`` / ``dl.rerouted_bytes``
so resilience experiments can see exactly how much traffic fell back.
"""

from __future__ import annotations

from repro.core.bridge import DLBridge
from repro.core.controller import DLController
from repro.core.routing import distance
from repro.errors import LinkFailure, RoutingError
from repro.idc.base import IDCMechanism
from repro.protocol.packet import FLIT_BYTES, wire_bytes_for_transfer
from repro.sim.engine import AllOf, SimEvent

#: wire size of a single-flit control packet (read request, sync message).
CONTROL_WIRE_BYTES = FLIT_BYTES
#: payload sizes at or above this stream through the bridge (pipelined)
#: instead of store-and-forward per hop.
STREAM_THRESHOLD = 2048


class DIMMLinkIDC(IDCMechanism):
    """DIMM-Link inter-DIMM communication."""

    name = "dimm_link"

    def attach(self, system) -> None:
        super().attach(system)
        self.bridge = DLBridge(system.sim, system.config, system.stats)
        self.controllers = [
            DLController(d, system.stats.scope(f"dimm{d}"))
            for d in range(system.config.num_dimms)
        ]
        self.sim = system.sim
        self.stats = system.stats

    # -- helpers -------------------------------------------------------------------

    def _dl_transfer(self, src: int, dst: int, wire_bytes: int) -> SimEvent:
        if wire_bytes >= STREAM_THRESHOLD:
            return self.bridge.stream(src, dst, wire_bytes)
        return self.bridge.send(src, dst, wire_bytes)

    def _register_at_proxy(self, src: int):
        """Send the forwarding request to the group's polling proxy.

        If the bridge can no longer reach the proxy, the registration is
        skipped: the host's polling loop still visits the DIMM's own
        request register directly, just on the slower non-proxy cadence —
        which the polling model already charges through ``notice``.
        """
        polling = self._require_system().polling
        if not getattr(polling, "uses_proxy", False):
            return
        proxy = polling.proxy_of(src)
        if proxy != src:
            try:
                yield self.bridge.send(src, proxy, CONTROL_WIRE_BYTES)
            except LinkFailure:
                self.stats.add("dl.proxy_unreachable")
                return
        self.stats.add("idc.proxy_registrations")

    def _count_reroute(self, nbytes: int, operations: int = 1) -> None:
        """Account one degraded-mode escalation to host forwarding."""
        self.stats.add("dl.rerouted_to_host", operations)
        self.stats.add("dl.rerouted_bytes", nbytes)
        if self.sim.trace.enabled:
            self.sim.trace.instant(
                "idc", "reroute_to_host", "idc.dimm_link", bytes=nbytes
            )

    # -- IDCMechanism ---------------------------------------------------------------

    def remote_read(self, src_dimm, dst_dimm, offset, nbytes) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="dl.read")
        if self.bridge.same_group(src_dimm, dst_dimm):
            self.sim.process(
                self._intra_read(src_dimm, dst_dimm, offset, nbytes, done),
                name="dl.read",
            )
        else:
            self.sim.process(
                self._inter_read(system, src_dimm, dst_dimm, offset, nbytes, done),
                name="dl.read.fwd",
            )
        self.trace_op(done, "remote_read", src=src_dimm, dst=dst_dimm, bytes=nbytes)
        return done

    def _intra_read(self, src, dst, offset, nbytes, done: SimEvent):
        system = self._require_system()
        src_ctl, dst_ctl = self.controllers[src], self.controllers[dst]
        yield src_ctl.packetize_ps
        src_ctl.packetize(0)
        try:
            yield self.bridge.send(src, dst, CONTROL_WIRE_BYTES)
            yield dst_ctl.decode_ps
            yield system.dimms[dst].mc.local_access(offset, nbytes, False)
            yield dst_ctl.packetize_ps
            wire = dst_ctl.packetize(nbytes)
            yield self._dl_transfer(dst, src, wire)
            yield src_ctl.decode_ps
            src_ctl.receive(nbytes)
            self.stats.add("idc.intra_group_bytes", nbytes)
        except LinkFailure:
            # hybrid-routing failover: re-issue the whole read through the
            # host (the request may have died at any stage; the forwarded
            # retry is self-contained either way)
            self._count_reroute(nbytes)
            yield from self._forwarded_read(system, src, dst, offset, nbytes)
        done.succeed(nbytes)

    def _forwarded_read(self, system, src, dst, offset, nbytes):
        """Host-forwarded read body (inter-group path and failover path)."""
        src_ctl = self.controllers[src]
        yield from self._register_at_proxy(src)
        yield system.forwarder.forward(src, dst, CONTROL_WIRE_BYTES)
        yield self.controllers[dst].decode_ps
        yield system.dimms[dst].mc.local_access(offset, nbytes, False)
        wire = self.controllers[dst].packetize(nbytes)
        # the host expects the response after forwarding the request
        yield system.forwarder.forward(dst, src, wire, notice_dimm=-1)
        yield src_ctl.decode_ps
        src_ctl.receive(nbytes)
        self.stats.add("idc.forwarded_bytes", nbytes)

    def _inter_read(self, system, src, dst, offset, nbytes, done: SimEvent):
        src_ctl = self.controllers[src]
        yield src_ctl.packetize_ps
        src_ctl.packetize(0)
        yield from self._forwarded_read(system, src, dst, offset, nbytes)
        done.succeed(nbytes)

    def remote_write(self, src_dimm, dst_dimm, offset, nbytes) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="dl.write")
        if self.bridge.same_group(src_dimm, dst_dimm):
            self.sim.process(
                self._intra_write(src_dimm, dst_dimm, offset, nbytes, done),
                name="dl.write",
            )
        else:
            self.sim.process(
                self._inter_write(system, src_dimm, dst_dimm, offset, nbytes, done),
                name="dl.write.fwd",
            )
        self.trace_op(done, "remote_write", src=src_dimm, dst=dst_dimm, bytes=nbytes)
        return done

    def _intra_write(self, src, dst, offset, nbytes, done: SimEvent):
        system = self._require_system()
        src_ctl, dst_ctl = self.controllers[src], self.controllers[dst]
        yield src_ctl.packetize_ps
        wire = src_ctl.packetize(nbytes)
        try:
            yield self._dl_transfer(src, dst, wire)
            yield dst_ctl.decode_ps
            dst_ctl.receive(nbytes)
            yield system.dimms[dst].mc.local_access(offset, nbytes, True)
            self.stats.add("idc.intra_group_bytes", nbytes)
        except LinkFailure:
            self._count_reroute(nbytes)
            yield from self._forwarded_write(system, src, dst, offset, nbytes, wire)
        done.succeed(nbytes)

    def _forwarded_write(self, system, src, dst, offset, nbytes, wire):
        """Host-forwarded write body (inter-group path and failover path)."""
        yield from self._register_at_proxy(src)
        yield system.forwarder.forward(src, dst, wire)
        yield self.controllers[dst].decode_ps
        self.controllers[dst].receive(nbytes)
        yield system.dimms[dst].mc.local_access(offset, nbytes, True)
        self.stats.add("idc.forwarded_bytes", nbytes)

    def _inter_write(self, system, src, dst, offset, nbytes, done: SimEvent):
        src_ctl = self.controllers[src]
        yield src_ctl.packetize_ps
        wire = src_ctl.packetize(nbytes)
        yield from self._forwarded_write(system, src, dst, offset, nbytes, wire)
        done.succeed(nbytes)

    def broadcast(self, src_dimm, offset, nbytes) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="dl.broadcast")
        self.sim.process(
            self._broadcast(system, src_dimm, offset, nbytes, done), name="dl.bc"
        )
        self.trace_op(done, "broadcast", src=src_dimm, bytes=nbytes)
        return done

    def _flood_group(self, system, root, offset, nbytes):
        """Flood the root's group, then receivers store the data locally.

        If the flood cannot reach every group member over the bridge (a
        dead link severed the broadcast tree), the whole group delivery
        falls back to per-peer host forwarding.
        """
        wire = wire_bytes_for_transfer(nbytes)
        group_index, _pos = self.bridge.locate(root)
        peers = [d for d in system.config.groups[group_index] if d != root]
        try:
            yield self.bridge.broadcast(root, wire)
        except (LinkFailure, RoutingError):
            self._count_reroute(nbytes * len(peers), operations=len(peers))

            def to_peer(peer, first):
                yield system.forwarder.forward(
                    root, peer, wire, notice_dimm=None if first else -1
                )
                self.stats.add("idc.forwarded_bytes", nbytes)
                yield self.controllers[peer].decode_ps
                yield system.dimms[peer].mc.local_access(offset, nbytes, True)

            yield AllOf(
                [
                    self.sim.process(to_peer(peer, index == 0), name="dl.bc.fb")
                    for index, peer in enumerate(peers)
                ]
            )
            return
        writes = [
            system.dimms[d].mc.local_access(offset, nbytes, True) for d in peers
        ]
        self.stats.add("idc.intra_group_bytes", nbytes * len(peers))
        yield AllOf(writes)

    def _broadcast(self, system, src, offset, nbytes, done: SimEvent):
        yield self.controllers[src].packetize_ps
        wire = self.controllers[src].packetize(nbytes)
        branches = [
            self.sim.process(
                self._flood_group(system, src, offset, nbytes), name="dl.bc.home"
            )
        ]
        gateways = [
            system.config.master_dimm(g)
            for g in range(len(system.config.groups))
            if g != system.config.group_of(src)
        ]
        if gateways:
            yield from self._register_at_proxy(src)

        def to_group(gateway, first):
            yield system.forwarder.forward(
                src, gateway, wire, notice_dimm=None if first else -1
            )
            self.stats.add("idc.forwarded_bytes", nbytes)
            yield self.controllers[gateway].decode_ps
            yield system.dimms[gateway].mc.local_access(offset, nbytes, True)
            yield from self._flood_group(system, gateway, offset, nbytes)

        for index, gateway in enumerate(gateways):
            branches.append(
                self.sim.process(to_group(gateway, index == 0), name="dl.bc.fwd")
            )
        yield AllOf(branches)
        self.stats.add("idc.broadcast_ops")
        done.succeed(nbytes)

    def message(self, src_dimm, dst_dimm, nbytes, expected: bool = False) -> SimEvent:
        system = self._require_system()
        done = self.sim.event(name="dl.msg")

        def forwarded():
            if not expected:
                yield from self._register_at_proxy(src_dimm)
            yield system.forwarder.forward(
                src_dimm,
                dst_dimm,
                CONTROL_WIRE_BYTES,
                notice_dimm=-1 if expected else None,
            )

        def proc():
            yield self.controllers[src_dimm].packetize_ps
            if self.bridge.same_group(src_dimm, dst_dimm):
                try:
                    yield self.bridge.send(src_dimm, dst_dimm, CONTROL_WIRE_BYTES)
                except LinkFailure:
                    self._count_reroute(CONTROL_WIRE_BYTES)
                    yield from forwarded()
            else:
                yield from forwarded()
            yield self.controllers[dst_dimm].decode_ps
            self.stats.add("idc.messages")
            done.succeed(nbytes)

        self.sim.process(proc(), name="dl.msg")
        return done

    def hop_distance(self, src_dimm: int, dst_dimm: int) -> float:
        return distance(self._require_system().config, src_dimm, dst_dimm)

    def finalize_stats(self) -> None:
        self.stats.set("dl.link_availability_min", self.bridge.finalize_stats())
