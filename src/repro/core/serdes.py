"""SerDes technology models (Table II).

The DL-Bridge's physical links can be built from different SerDes
technologies; the paper adopts NVIDIA's Ground-Referenced Signalling (GRS)
for its bandwidth/energy and uses its limited reach (~80 mm) to justify
the per-side DL-group organization (Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class SerDesTech:
    """One SerDes technology option for the DL-Bridge."""

    name: str
    media: str
    signal_rate_gbps_per_pin: float
    reach_mm: float
    energy_pj_per_bit: float

    def link_bandwidth_gbps(self, pins: int) -> float:
        """Aggregate one-direction link bandwidth over ``pins`` lanes (GB/s)."""
        if pins <= 0:
            raise ConfigError(f"pin count must be positive, got {pins}")
        return self.signal_rate_gbps_per_pin * pins / 8.0

    def pins_for_bandwidth(self, gbps: float) -> int:
        """Lanes needed to reach ``gbps`` of one-direction bandwidth."""
        if gbps <= 0:
            raise ConfigError(f"bandwidth must be positive, got {gbps}")
        pins = int(-(-gbps * 8.0 // self.signal_rate_gbps_per_pin))
        return max(1, pins)


#: SMA-cable transceiver [10] in Table II.
SMA_CABLE = SerDesTech(
    name="sma_cable",
    media="SMA Cable",
    signal_rate_gbps_per_pin=6.0,
    reach_mm=953.0,
    energy_pj_per_bit=0.58,
)

#: Ribbon-cable link [25] in Table II.
RIBBON_CABLE = SerDesTech(
    name="ribbon_cable",
    media="Ribbon Cable",
    signal_rate_gbps_per_pin=16.0,
    reach_mm=500.0,
    energy_pj_per_bit=2.58,
)

#: Ground-Referenced Signalling [69] — the paper's choice (25 Gb/s/pin,
#: 80 mm reach, 1.17 pJ/b).
GRS = SerDesTech(
    name="grs",
    media="PCB",
    signal_rate_gbps_per_pin=25.0,
    reach_mm=80.0,
    energy_pj_per_bit=1.17,
)

_TECHS: Dict[str, SerDesTech] = {t.name: t for t in (SMA_CABLE, RIBBON_CABLE, GRS)}


def tech(name: str) -> SerDesTech:
    """Look up a SerDes technology by name."""
    try:
        return _TECHS[name]
    except KeyError:
        raise ConfigError(
            f"unknown SerDes tech {name!r}; available: {sorted(_TECHS)}"
        ) from None


def table2() -> Dict[str, SerDesTech]:
    """All Table II technologies (name -> tech)."""
    return dict(_TECHS)
