"""Inter-DIMM synchronization (Sec. III-D "Support for Synchronization").

Message-passing barriers over the system's IDC transport, in two flavours:

* ``central`` — every thread's arrival is reported to one master DIMM,
  which then notifies every participating DIMM on release.  This is what
  the baselines (and DIMM-Link-Central in Fig. 14) do.
* ``hierarchical`` — arrivals aggregate locally (a master core per DIMM),
  then per DL group (a master DIMM at the middle of the group), and
  finally across groups (a global master), with releases cascading back
  down.  This is DIMM-Link-Hier, and it cuts both message count and the
  number of host-forwarded (inter-group) messages.

The cost of each message is whatever the bound IDC mechanism charges, so
the same manager exercises MCN (host-forwarded sync), AIM (bus sync), and
DIMM-Link (DL packets) faithfully.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List

from repro.config import SystemConfig
from repro.errors import ConfigError, SimulationError
from repro.idc.base import IDCMechanism
from repro.sim.engine import SimEvent, Simulator
from repro.sim.resource import BandwidthResource
from repro.sim.stats import StatRegistry
from repro.sim.time import ns

#: payload of one synchronization message (fits a single flit packet).
SYNC_MSG_BYTES = 8
#: intra-DIMM aggregation latency (core -> master core, on-chip).
LOCAL_SYNC_PS = ns(20.0)
#: serialized processing time a master core spends per sync message it
#: receives or issues (the SynCron-style master bottleneck that makes
#: centralized synchronization scale poorly, Fig. 14).
MASTER_PROC_PS = ns(50.0)

SYNC_MODES = ("central", "hierarchical")


class _Generation:
    """Per-barrier-generation state."""

    def __init__(self) -> None:
        self.waiters: Dict[int, List[SimEvent]] = defaultdict(list)  # dimm -> events
        self.dimm_arrivals: Counter = Counter()
        self.arrived_threads = 0
        self.group_arrivals: Counter = Counter()
        self.released = False


class SyncManager:
    """Barrier service for one kernel run."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        idc: IDCMechanism,
        stats: StatRegistry,
        mode: str = "hierarchical",
    ) -> None:
        if mode not in SYNC_MODES:
            raise ConfigError(f"unknown sync mode {mode!r}; choose from {SYNC_MODES}")
        self.sim = sim
        self.config = config
        self.idc = idc
        self.stats = stats
        self.mode = mode
        self.global_master = config.master_dimm(0)
        self._thread_homes: List[int] = []
        self._threads_per_dimm: Counter = Counter()
        self._dimms_per_group: Counter = Counter()
        self._generations: Dict[int, _Generation] = {}
        self._thread_counts: Dict[int, int] = {}
        self._master_cores: Dict[int, BandwidthResource] = {}

    def set_participants(self, thread_homes: List[int]) -> None:
        """Declare the run's threads as (thread index -> home DIMM)."""
        if not thread_homes:
            raise ConfigError("a barrier needs at least one participant")
        self._thread_homes = list(thread_homes)
        self._threads_per_dimm = Counter(thread_homes)
        self._dimms_per_group = Counter(
            self.config.group_of(d) for d in self._threads_per_dimm
        )
        self._generations.clear()
        self._thread_counts = {t: 0 for t in range(len(thread_homes))}

    @property
    def total_threads(self) -> int:
        """Participant count."""
        return len(self._thread_homes)

    def barrier(self, thread_id: int) -> SimEvent:
        """Enter the barrier; the event fires when this thread is released."""
        if thread_id not in self._thread_counts:
            raise SimulationError(f"unknown barrier participant {thread_id}")
        generation = self._thread_counts[thread_id]
        self._thread_counts[thread_id] += 1
        state = self._generations.setdefault(generation, _Generation())
        home = self._thread_homes[thread_id]
        event = self.sim.event(name=f"barrier.g{generation}.t{thread_id}")
        state.waiters[home].append(event)
        self.sim.process(
            self._arrival(state, generation, home), name=f"sync.arrive.{thread_id}"
        )
        return event

    # -- arrival paths ------------------------------------------------------------

    def _master_core(self, dimm: int) -> BandwidthResource:
        """The serializing master core of a DIMM (SynCron-style)."""
        core = self._master_cores.get(dimm)
        if core is None:
            core = BandwidthResource(
                self.sim, bytes_per_ns=1.0, name=f"sync.master{dimm}"
            )
            self._master_cores[dimm] = core
        return core

    def _arrival(self, state: _Generation, generation: int, home: int):
        yield LOCAL_SYNC_PS  # report to the DIMM's master core
        if self.mode == "central":
            yield from self._central_arrival(state, generation, home)
        else:
            yield from self._hier_arrival(state, generation, home)

    def _central_arrival(self, state: _Generation, generation: int, home: int):
        if home != self.global_master:
            self.stats.add("sync.messages")
            yield self.idc.message(home, self.global_master, SYNC_MSG_BYTES)
        # the master core handles every arrival serially
        yield self._master_core(self.global_master).occupy(MASTER_PROC_PS)
        state.arrived_threads += 1
        if state.arrived_threads == self.total_threads:
            self._release_central(state, generation)

    def _hier_arrival(self, state: _Generation, generation: int, home: int):
        state.dimm_arrivals[home] += 1
        if state.dimm_arrivals[home] != self._threads_per_dimm[home]:
            return
        # last thread of this DIMM: notify the group master
        group = self.config.group_of(home)
        group_master = self.config.master_dimm(group)
        if home != group_master:
            self.stats.add("sync.messages")
            yield self.idc.message(home, group_master, SYNC_MSG_BYTES)
        yield self._master_core(group_master).occupy(MASTER_PROC_PS)
        state.group_arrivals[group] += 1
        if state.group_arrivals[group] != self._dimms_per_group[group]:
            return
        # last DIMM of the group: notify the global master
        if group_master != self.global_master:
            self.stats.add("sync.messages")
            self.stats.add("sync.inter_group_messages")
            yield self.idc.message(group_master, self.global_master, SYNC_MSG_BYTES)
            yield self._master_core(self.global_master).occupy(MASTER_PROC_PS)
        state.arrived_threads += 1  # counts completed groups in hier mode
        if state.arrived_threads == len(self._dimms_per_group):
            self._release_hier(state, generation)

    # -- release paths --------------------------------------------------------------

    def _release_central(self, state: _Generation, generation: int) -> None:
        state.released = True
        self.stats.add("sync.barriers")
        for dimm in state.waiters:
            self.sim.process(
                self._release_dimm(state, dimm, via=self.global_master),
                name=f"sync.release.g{generation}.d{dimm}",
            )

    def _release_hier(self, state: _Generation, generation: int) -> None:
        state.released = True
        self.stats.add("sync.barriers")
        for group, _count in self._dimms_per_group.items():
            self.sim.process(
                self._release_group(state, group),
                name=f"sync.release.g{generation}.grp{group}",
            )

    def _release_group(self, state: _Generation, group: int):
        group_master = self.config.master_dimm(group)
        if group_master != self.global_master:
            self.stats.add("sync.messages")
            self.stats.add("sync.inter_group_messages")
            yield self._master_core(self.global_master).occupy(MASTER_PROC_PS)
            # the host just forwarded the arrival, so it expects the release
            yield self.idc.message(
                self.global_master, group_master, SYNC_MSG_BYTES, expected=True
            )
        for dimm in state.waiters:
            if self.config.group_of(dimm) == group:
                self.sim.process(
                    self._release_dimm(state, dimm, via=group_master),
                    name=f"sync.release.d{dimm}",
                )

    def _release_dimm(self, state: _Generation, dimm: int, via: int):
        if dimm != via:
            self.stats.add("sync.messages")
            yield self._master_core(via).occupy(MASTER_PROC_PS)
            yield self.idc.message(via, dimm, SYNC_MSG_BYTES, expected=True)
        yield LOCAL_SYNC_PS  # master core releases local threads
        for event in state.waiters[dimm]:
            event.succeed(None)
