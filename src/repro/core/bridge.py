"""DL-Bridge: the physical inter-DIMM network of each DL group.

A :class:`DLBridge` instantiates one :class:`~repro.interconnect.network.
PacketNetwork` per DL group, with the group's DIMMs mapped to group-local
positions.  The bridge is the Fig. 2 PCB with its bidirectional SerDes
links; topology defaults to the shipping half-ring chain and can be any of
Fig. 17's alternatives.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import SystemConfig
from repro.errors import RoutingError
from repro.interconnect.network import PacketNetwork
from repro.interconnect.topology import Topology
from repro.sim.engine import SimEvent, Simulator
from repro.sim.stats import StatRegistry
from repro.sim.time import ns


class DLBridge:
    """All DL-group networks of a system plus the DIMM<->position maps."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        stats: StatRegistry,
    ) -> None:
        self.sim = sim
        self.config = config
        self.stats = stats
        self.networks: List[PacketNetwork] = []
        self._position: Dict[int, Tuple[int, int]] = {}
        link = config.link
        for group_index, group in enumerate(config.groups):
            topology = Topology(config.topology, len(group))
            network = PacketNetwork(
                sim,
                topology,
                bandwidth_gbps=link.bandwidth_gbps,
                hop_latency_ps=ns(link.hop_latency_ns),
                wire_latency_ps=ns(link.wire_latency_ns),
                stats=stats,
                name=f"grp{group_index}",
                error_rate=link.error_rate,
                retry_penalty_ps=ns(link.retry_penalty_ns),
                max_retries=link.max_retries,
                watchdog_threshold=link.watchdog_threshold,
            )
            self.networks.append(network)
            for position, dimm_id in enumerate(group):
                self._position[dimm_id] = (group_index, position)

    def locate(self, dimm_id: int) -> Tuple[int, int]:
        """(group index, group-local position) of a DIMM."""
        try:
            return self._position[dimm_id]
        except KeyError:
            raise RoutingError(f"DIMM {dimm_id} is not on any DL bridge") from None

    def same_group(self, a: int, b: int) -> bool:
        """Whether two DIMMs share a DL group (can route without the host)."""
        return self.locate(a)[0] == self.locate(b)[0]

    def network_of(self, dimm_id: int) -> PacketNetwork:
        """The group network serving a DIMM."""
        return self.networks[self.locate(dimm_id)[0]]

    def hops(self, a: int, b: int) -> int:
        """Intra-group hop count (raises if not in the same group)."""
        group_a, pos_a = self.locate(a)
        group_b, pos_b = self.locate(b)
        if group_a != group_b:
            raise RoutingError(f"DIMMs {a} and {b} are in different groups")
        return self.networks[group_a].hops(pos_a, pos_b)

    def send(self, src_dimm: int, dst_dimm: int, wire_bytes: int) -> SimEvent:
        """Route a packet between two same-group DIMMs."""
        group, src_pos = self.locate(src_dimm)
        _group, dst_pos = self.locate(dst_dimm)
        return self.networks[group].send(src_pos, dst_pos, wire_bytes)

    def stream(self, src_dimm: int, dst_dimm: int, wire_bytes: int) -> SimEvent:
        """Pipelined bulk transfer between two same-group DIMMs."""
        group, src_pos = self.locate(src_dimm)
        _group, dst_pos = self.locate(dst_dimm)
        return self.networks[group].stream(src_pos, dst_pos, wire_bytes)

    def broadcast(self, root_dimm: int, wire_bytes: int) -> SimEvent:
        """Flood a packet through the root DIMM's group."""
        group, root_pos = self.locate(root_dimm)
        return self.networks[group].broadcast(root_pos, wire_bytes)

    def total_link_busy_ps(self) -> int:
        """Aggregate busy time over every link of every group."""
        return sum(network.total_busy_ps() for network in self.networks)

    # -- fault application (driven by repro.faults.FaultInjector) --------------------

    def _link_endpoints(self, dimm_a: int, dimm_b: int) -> Tuple[PacketNetwork, int, int]:
        group_a, pos_a = self.locate(dimm_a)
        group_b, pos_b = self.locate(dimm_b)
        if group_a != group_b:
            raise RoutingError(
                f"DIMMs {dimm_a} and {dimm_b} share no bridge link "
                f"(different groups)"
            )
        return self.networks[group_a], pos_a, pos_b

    def fail_link_between(self, dimm_a: int, dimm_b: int) -> bool:
        """Physically kill the bridge link between two adjacent DIMMs."""
        network, pos_a, pos_b = self._link_endpoints(dimm_a, dimm_b)
        return network.fail_link(pos_a, pos_b)

    def restore_link_between(self, dimm_a: int, dimm_b: int) -> bool:
        """Repair the bridge link between two adjacent DIMMs."""
        network, pos_a, pos_b = self._link_endpoints(dimm_a, dimm_b)
        return network.restore_link(pos_a, pos_b)

    def degrade_link_between(self, dimm_a: int, dimm_b: int, fraction: float) -> None:
        """Lane-degrade the link between two adjacent DIMMs."""
        network, pos_a, pos_b = self._link_endpoints(dimm_a, dimm_b)
        network.degrade_link(pos_a, pos_b, fraction)

    def fail_dimm_links(self, dimm_id: int) -> int:
        """Kill every bridge link adjacent to a DIMM (its DL interface died).

        Returns how many links were newly taken down.
        """
        group, pos = self.locate(dimm_id)
        network = self.networks[group]
        downed = 0
        for a, b in network.topology.edges:
            if pos in (a, b) and network.fail_link(a, b):
                downed += 1
        return downed

    def fail_group(self, group_index: int) -> int:
        """Kill every link of a group (the bridge PCB itself failed)."""
        network = self.networks[group_index]
        downed = 0
        for a, b in network.topology.edges:
            if network.fail_link(a, b):
                downed += 1
        return downed

    def finalize_stats(self) -> float:
        """Flush per-link availability stats; return the worst availability."""
        return min(
            (network.finalize_stats() for network in self.networks), default=1.0
        )
