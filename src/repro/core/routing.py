"""Hybrid routing plans (Sec. III-C, Fig. 5).

Pure planning logic — given the system configuration, classify a transfer
into one of the four IDC patterns and describe the media it will cross:

* (a) intra-group P2P: DIMM-Link hops only,
* (b) inter-group P2P: host CPU forwarding,
* (c) intra-group broadcast: DL flood along the group's broadcast tree,
* (d) inter-group broadcast: host forward to a gateway DIMM per remote
  group, then intra-group floods.

The :class:`~repro.core.dimmlink.DIMMLinkIDC` mechanism executes these
plans on the event simulator; keeping the planning pure makes the routing
rules independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import SystemConfig
from repro.interconnect.topology import Topology

#: patterns of Fig. 5.
INTRA_GROUP_P2P = "intra_group_p2p"
INTER_GROUP_P2P = "inter_group_p2p"
INTRA_GROUP_BC = "intra_group_broadcast"
INTER_GROUP_BC = "inter_group_broadcast"

#: relative distance charged for a host-forwarded (inter-group) transfer
#: by the distance-aware mapper; calibrated from the ratio of profiled
#: forwarding latency (~1 us) to per-hop DL latency (~12 ns) as in Sec. V-B.
INTER_GROUP_DISTANCE = 40.0


@dataclass(frozen=True)
class P2PPlan:
    """Route description for one point-to-point transfer."""

    kind: str
    src: int
    dst: int
    #: DL hops inside the (shared) group; 0 for inter-group transfers.
    dl_hops: int
    #: whether the host CPU must forward the payload.
    forwarded: bool


@dataclass(frozen=True)
class BroadcastPlan:
    """Route description for a system-wide broadcast."""

    src: int
    kind: str
    #: gateway DIMM (group master) per remote group, in group order.
    gateways: List[int] = field(default_factory=list)


def plan_p2p(config: SystemConfig, src: int, dst: int) -> P2PPlan:
    """Classify and plan a P2P transfer (Fig. 5-(a)/(b))."""
    src_group = config.group_of(src)
    dst_group = config.group_of(dst)
    if src_group == dst_group:
        group = config.groups[src_group]
        topology = Topology(config.topology, len(group))
        hops = (
            0
            if src == dst
            else topology.hops(group.index(src), group.index(dst))
        )
        return P2PPlan(
            kind=INTRA_GROUP_P2P, src=src, dst=dst, dl_hops=hops, forwarded=False
        )
    return P2PPlan(kind=INTER_GROUP_P2P, src=src, dst=dst, dl_hops=0, forwarded=True)


def plan_broadcast(config: SystemConfig, src: int) -> BroadcastPlan:
    """Classify and plan a broadcast (Fig. 5-(c)/(d))."""
    src_group = config.group_of(src)
    gateways = [
        config.master_dimm(g)
        for g in range(len(config.groups))
        if g != src_group
    ]
    kind = INTRA_GROUP_BC if not gateways else INTER_GROUP_BC
    return BroadcastPlan(src=src, kind=kind, gateways=gateways)


def distance(config: SystemConfig, a: int, b: int) -> float:
    """The mapping distance function ``dist(j, k)`` of Algorithm 1.

    Same DIMM costs 0; same group costs the DL hop count; crossing groups
    costs :data:`INTER_GROUP_DISTANCE` (host forwarding).
    """
    if a == b:
        return 0.0
    plan = plan_p2p(config, a, b)
    if plan.forwarded:
        return INTER_GROUP_DISTANCE
    return float(plan.dl_hops)
