"""Host-side models: CPU baseline, memory channels, polling, forwarding."""

from repro.host.cpu import HostCPUSystem, HostCore
from repro.host.forwarding import ForwardController
from repro.host.memchannel import MemoryChannel
from repro.host.polling import (
    POLLING_STRATEGIES,
    BaselinePolling,
    InterruptPolling,
    PollingStrategy,
    ProxyInterruptPolling,
    ProxyPolling,
    make_polling,
)

__all__ = [
    "HostCPUSystem",
    "HostCore",
    "ForwardController",
    "MemoryChannel",
    "POLLING_STRATEGIES",
    "BaselinePolling",
    "InterruptPolling",
    "PollingStrategy",
    "ProxyInterruptPolling",
    "ProxyPolling",
    "make_polling",
]
