"""Host memory channel model.

A DDR4 channel is a multi-drop bus time-shared by the host and every DIMM
on the channel.  All host<->DIMM traffic — baseline CPU memory access,
CPU-forwarded IDC packets, polling reads, ABC-DIMM broadcast commands —
serialises on the channel's :class:`~repro.sim.resource.BandwidthResource`,
whose busy accounting yields the paper's "memory bus occupation" metric
(Fig. 15-(b)).
"""

from __future__ import annotations

from typing import List

from repro.config import ChannelConfig
from repro.sim.engine import SimEvent, Simulator
from repro.sim.resource import BandwidthResource
from repro.sim.stats import StatRegistry
from repro.sim.time import ns


class MemoryChannel:
    """One host memory channel and the DIMM ids it serves."""

    def __init__(
        self,
        sim: Simulator,
        channel_id: int,
        dimm_ids: List[int],
        config: ChannelConfig,
        stats: StatRegistry,
    ) -> None:
        self.sim = sim
        self.channel_id = channel_id
        self.dimm_ids = list(dimm_ids)
        self.config = config
        self.stats = stats
        self.bus = BandwidthResource(
            sim,
            bytes_per_ns=config.bandwidth_gbps,
            latency_ps=ns(config.bus_latency_ns),
            name=f"ch{channel_id}.bus",
        )
        # per-kind stat keys, interned once — transfer() runs per beat
        self._kind_keys = {"data": "bus.data_bytes"}

    def transfer(self, nbytes: int, kind: str = "data") -> SimEvent:
        """Move ``nbytes`` over the channel (host<->any DIMM on it)."""
        key = self._kind_keys.get(kind)
        if key is None:
            key = self._kind_keys[kind] = f"bus.{kind}_bytes"
        self.stats.add(key, nbytes)
        self.stats.add("bus.bytes", nbytes)
        return self.bus.transfer(nbytes)

    def occupancy(self) -> float:
        """Busy fraction of this channel's bus (incl. background polling)."""
        return self.bus.occupancy()

    def set_polling_load(self, fraction: float) -> None:
        """Account a constant polling occupancy on this channel."""
        self.bus.set_background_load(fraction)

    def __repr__(self) -> str:
        return f"MemoryChannel({self.channel_id}, dimms={self.dimm_ids})"
