"""Host-CPU baseline system (the paper's 16-core OoO reference).

Runs the same workload op streams on host cores: every access crosses the
DIMM's memory channel (HA mode), with a fixed LLC hit fraction served
on-chip.  Threads beyond the core count time-multiplex, scaling compute
time; memory contention emerges from the shared channel buses and the
DRAM bank model.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.config import SystemConfig
from repro.dram.module import DRAMModule
from repro.dram.timing import preset
from repro.errors import DeadlockError, WorkloadError
from repro.host.memchannel import MemoryChannel
from repro.nmp.executor import ThreadExecutor
from repro.nmp.results import RunResult
from repro.sim.engine import SimEvent, Simulator
from repro.sim.stats import StatRegistry
from repro.sim.time import ns
from repro.workloads.ops import Broadcast, Write

#: outstanding-miss window per host hardware thread.
HOST_WINDOW = 10
#: latency of the software barrier release after the last arrival.
SW_BARRIER_PS = ns(150.0)


def _deterministic_hit(counter: int, hit_rate: float) -> bool:
    return ((counter * 0x9E3779B1) >> 8) % 1000 < int(hit_rate * 1000)


class _SoftwareBarrier:
    """Shared-memory sense-reversing barrier for the CPU baseline."""

    def __init__(self, sim: Simulator, participants: int) -> None:
        self.sim = sim
        self.participants = participants
        self._arrived = 0
        self._waiters: List[SimEvent] = []

    def enter(self) -> SimEvent:
        event = self.sim.event(name="cpu.barrier")
        self._arrived += 1
        self._waiters.append(event)
        if self._arrived == self.participants:
            waiters, self._waiters = self._waiters, []
            self._arrived = 0
            self.sim.schedule(
                SW_BARRIER_PS, lambda _arg: [w.succeed(None) for w in waiters], None
            )
        return event


class HostCore(ThreadExecutor):
    """One host hardware thread executing a workload thread."""

    def __init__(
        self,
        sim: Simulator,
        system: "HostCPUSystem",
        index: int,
        compute_scale: float,
        stats: StatRegistry,
        home_dimm: int = 0,
    ) -> None:
        host = system.config.host
        super().__init__(
            sim,
            freq_ghz=host.freq_ghz * host.ipc,
            window=HOST_WINDOW,
            stats=stats,
            name=f"cpu.core{index}",
            compute_scale=compute_scale,
        )
        self.system = system
        #: the DIMM this thread's block would naturally live on — the
        #: "toucher" identity page-placement policies see.  The host has
        #: no locality (every access crosses a channel), but migrating
        #: toward the toucher still models the OS packing a thread's
        #:  working set onto one module.
        self.home_dimm = home_dimm
        self._access_counter = 0

    def memory_access(self, op) -> Tuple[Optional[SimEvent], bool]:
        host = self.system.config.host
        is_write = isinstance(op, Write)
        target, migration = self.resolve_target(op, self.home_dimm)
        if migration is not None:
            return self._migrate_then_access(op, target, migration, is_write), False
        self._access_counter += 1
        if not is_write and _deterministic_hit(self._access_counter, host.llc_hit_rate):
            self.stats.add("core.cache_hits")
            hit = self.sim.event(name=f"{self.name}.llc")
            self.sim.schedule(
                ns(host.llc_latency_ns), lambda _arg: hit.succeed(op.nbytes), None
            )
            return hit, False
        return self.system.memory_request(target, op.offset, op.nbytes, is_write), False

    def _migrate_then_access(
        self, op, target: int, migration: Tuple[int, int], is_write: bool
    ) -> SimEvent:
        """Copy the page across channels (read old, write new), then access."""
        from repro.dram.address import PAGE_BYTES, page_offset

        src, dst = migration
        done = self.sim.event(name=f"{self.name}.migrated")

        def proc():
            begin = self.sim.now
            trace = self.sim.trace
            span = (
                trace.begin(
                    "placement", "migrate", self.name, page=op.page, src=src, dst=dst
                )
                if trace.enabled
                else None
            )
            yield self.system.memory_request(src, page_offset(op.page), PAGE_BYTES, False)
            yield self.system.memory_request(dst, page_offset(op.page), PAGE_BYTES, True)
            self.stats.add("placement.migrations")
            self.stats.add("placement.migrated_bytes", PAGE_BYTES)
            self.stats.add("placement.migration_ps", self.sim.now - begin)
            if span is not None:
                trace.end(span)
            yield self.system.memory_request(target, op.offset, op.nbytes, is_write)
            done.succeed(op.nbytes)

        self.sim.process(proc(), name=f"{self.name}.migrate")
        return done

    def broadcast(self, op: Broadcast) -> SimEvent:
        # shared memory: a broadcast is just the producer's single write
        return self.system.memory_request(0, op.offset, op.nbytes, True)

    def barrier(self, thread_id: int) -> SimEvent:
        return self.system.barrier.enter()


class HostCPUSystem:
    """The 16-core CPU baseline machine."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.stats = StatRegistry()
        import dataclasses

        # the host sustains only a fraction of peak channel bandwidth on
        # these kernels' irregular access patterns (HostConfig docstring)
        derated = dataclasses.replace(
            config.channel,
            bandwidth_gbps=config.channel.bandwidth_gbps
            * config.host.channel_efficiency,
        )
        self.channels = [
            MemoryChannel(
                self.sim, ch, config.dimms_on_channel(ch), derated, self.stats
            )
            for ch in range(config.num_channels)
        ]
        timing = preset(config.dram_preset)
        self.drams = [
            DRAMModule(
                self.sim,
                timing,
                ranks=config.ranks_per_dimm,
                stats=self.stats.scope(f"dimm{d}"),
                name=f"dimm{d}.dram",
            )
            for d in range(config.num_dimms)
        ]
        self.barrier: _SoftwareBarrier | None = None

    def memory_request(
        self, dimm: int, offset: int, nbytes: int, is_write: bool
    ) -> SimEvent:
        """One host memory access: channel bus + DRAM on the target DIMM."""
        done = self.sim.event(name="cpu.mem")
        channel = self.channels[self.config.channel_of(dimm)]
        dram = self.drams[dimm]

        def proc():
            # command/data cross the channel; the DRAM access overlaps the
            # burst, so charge bus occupancy plus the bank completion time.
            yield channel.transfer(nbytes, kind="data")
            yield dram.access(offset, nbytes, is_write)
            done.succeed(nbytes)

        self.sim.process(proc(), name="cpu.mem")
        return done

    def run(
        self,
        thread_factories: List[Callable[[], Iterator]],
        placement: Optional[List[int]] = None,
        workload_name: str = "kernel",
        pagetable=None,
    ) -> RunResult:
        """Execute a kernel on the host cores (placement is ignored)."""
        if not thread_factories:
            raise WorkloadError("kernel needs at least one thread")
        num_threads = len(thread_factories)
        num_dimms = self.config.num_dimms
        compute_scale = max(1.0, num_threads / self.config.host.cores)
        self.barrier = _SoftwareBarrier(self.sim, num_threads)
        processes = []
        for index, factory in enumerate(thread_factories):
            home = index * num_dimms // num_threads
            core = HostCore(
                self.sim, self, index, compute_scale, self.stats, home_dimm=home
            )
            core.pagetable = pagetable
            processes.append(core.run_thread(index, factory()))
        start = self.sim.now
        self.sim.run()
        unfinished = [p.name for p in processes if not p.finished]
        if unfinished:
            blocked = self.sim.blocked_processes()
            raise DeadlockError(
                f"kernel deadlocked; stuck threads: {unfinished}",
                blocked=blocked,
                time_ps=self.sim.now,
            )
        ends = [p.value - start for p in processes]
        return RunResult(
            system_name=f"cpu-{self.config.name}",
            mechanism="cpu",
            workload=workload_name,
            time_ps=max(ends),
            thread_end_ps=ends,
            stats=self.stats,
            bus_occupancy=[channel.occupancy() for channel in self.channels],
        )
