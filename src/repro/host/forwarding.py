"""Host forwarding controller (FWD Controller, Fig. 6 ❽).

Moves packets from one DIMM's packet buffer to another's through the host.
Following the paper's methodology — "we view the host CPU as a routing
node that takes certain cycles to forward a packet" (Sec. V-B) — the host
is modelled as a pipelined forwarding engine: every forwarded packet pays
a fixed GEM5-profiled latency, while sustained throughput is bounded by
the engine's copy bandwidth and a per-packet processing floor, plus the
source/destination channel buses the data must cross.  The engine is
shared by all forwards, so heavy CPU-forwarded traffic queues — the core
inefficiency of CPU-forwarded IDC (Sec. II-B).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SystemConfig
from repro.host.memchannel import MemoryChannel
from repro.host.polling import PollingStrategy
from repro.sim.engine import SimEvent, Simulator
from repro.sim.resource import BandwidthResource
from repro.sim.stats import StatRegistry
from repro.sim.time import ns

#: sustained host copy bandwidth for forwarding (memcpy through LLC).
ENGINE_GBPS = 18.0
#: per-packet processing floor (decode DST, manage buffers).
ENGINE_PER_OP_NS = 5.0


class ForwardController:
    """Host-side packet forwarding between DIMMs."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        channels: List[MemoryChannel],
        polling: PollingStrategy,
        stats: StatRegistry,
        engine_gbps: float = ENGINE_GBPS,
    ) -> None:
        self.sim = sim
        self.config = config
        self.channels = channels
        self.polling = polling
        self.stats = stats
        self.engine = BandwidthResource(
            sim,
            bytes_per_ns=engine_gbps,
            latency_ps=ns(config.host.forward_latency_ns),
            name="host.fwd.engine",
        )
        # per-op engine cost in ps, converted once instead of per forward
        self._per_op_ps = ns(ENGINE_PER_OP_NS)

    def forward(
        self,
        src_dimm: int,
        dst_dimm: int,
        wire_bytes: int,
        notice_dimm: Optional[int] = None,
    ) -> SimEvent:
        """Forward ``wire_bytes`` of packets from ``src_dimm`` to ``dst_dimm``.

        ``notice_dimm`` is the DIMM whose request register triggers host
        attention (defaults to the source).  Pass ``notice_dimm=-1`` to skip
        the polling delay — used for response packets the host already
        expects after forwarding the matching request.
        """
        done = self.sim.event(name="host.fwd")
        self.sim.process(
            self._forward_proc(src_dimm, dst_dimm, wire_bytes, notice_dimm, done),
            name="host.fwd",
        )
        return done

    def _forward_proc(
        self,
        src_dimm: int,
        dst_dimm: int,
        wire_bytes: int,
        notice_dimm: Optional[int],
        done: SimEvent,
    ):
        start = self.sim.now
        trace = self.sim.trace
        span = (
            trace.begin(
                "host",
                "forward",
                "host.fwd",
                src=src_dimm,
                dst=dst_dimm,
                bytes=wire_bytes,
            )
            if trace.enabled
            else None
        )
        if notice_dimm != -1:
            yield self.polling.notice(
                src_dimm if notice_dimm is None else notice_dimm
            )
        src_channel = self.channels[self.config.channel_of(src_dimm)]
        dst_channel = self.channels[self.config.channel_of(dst_dimm)]
        # read the packet from the source DIMM's packet buffer
        yield src_channel.transfer(wire_bytes, kind="fwd")
        # the routing-node engine: per-packet cost + copy bandwidth +
        # the fixed GEM5-profiled forward latency (pipelined)
        yield self.engine.transfer(wire_bytes, extra_ps=self._per_op_ps)
        yield dst_channel.transfer(wire_bytes, kind="fwd")
        self.stats.add("fwd.ops")
        self.stats.add("fwd.bytes", wire_bytes)
        self.stats.histogram("fwd.latency_ns").record((self.sim.now - start) / 1000)
        trace.end(span)
        done.succeed(wire_bytes)
