"""Host polling strategies (Sec. IV-A, Table III).

The host learns about pending forwarding requests in one of four ways:

* ``baseline`` — a polling thread continuously scans *every* DIMM's
  request register.  Polls occupy the memory buses whether or not any
  request exists, so each channel carries a constant background load.
* ``baseline+interrupt`` — DIMMs raise ALERT_N; the host then scans all
  DIMMs of the interrupting channel.  No background load, but every event
  pays interrupt delivery + context-switch latency.
* ``proxy`` — requests are registered (via DIMM-Link) at one proxy DIMM
  per DL group; the host only polls proxies, on a relaxed repoll period.
* ``proxy+interrupt`` — ALERT_N plus a single proxy read per event.

Each strategy exposes :meth:`notice` — an event firing once the host has
noticed a request registered *now* at a DIMM — and configures whatever
constant bus load its scanning causes.  The strategy object is shared by
every IDC mechanism that relies on CPU forwarding.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Tuple

from repro.config import HostConfig, SystemConfig
from repro.errors import ConfigError
from repro.host.memchannel import MemoryChannel
from repro.sim.engine import SimEvent, Simulator
from repro.sim.stats import StatRegistry
from repro.sim.time import ns

POLLING_STRATEGIES = ("baseline", "baseline+interrupt", "proxy", "proxy+interrupt")


class PollingStrategy(Protocol):
    """Interface every polling strategy implements."""

    name: str
    #: whether requests must first be registered at the group proxy.
    uses_proxy: bool

    def configure(self, channels: List[MemoryChannel]) -> None:
        """Apply background bus loads / capture channel handles."""

    def notice(self, dimm_id: int) -> SimEvent:
        """Event firing when the host notices a request registered now."""


class _Base:
    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        stats: StatRegistry,
    ) -> None:
        self.sim = sim
        self.config = config
        self.host: HostConfig = config.host
        self.stats = stats
        self.channels: List[MemoryChannel] = []
        # notice() runs on every forwarded packet: convert the configured
        # nanosecond knobs to picoseconds once
        self._visit_ps = ns(self.host.poll_visit_ns)
        self._interrupt_ps = ns(self.host.interrupt_latency_ns)
        self._repoll_ps = ns(self.host.proxy_repoll_ns)

    def configure(self, channels: List[MemoryChannel]) -> None:
        self.channels = list(channels)

    def _fire_after(self, delay_ps: int) -> SimEvent:
        event = self.sim.event(name="poll.notice")
        self.sim.schedule(delay_ps, event.succeed, None)
        self.stats.add("poll.notices")
        self.stats.histogram("poll.notice_delay_ns").record(delay_ps / 1000)
        if self.sim.trace.enabled:
            self.sim.trace.instant(
                "host", "poll.notice", "host.poll", delay_ps=delay_ps
            )
        return event


class BaselinePolling(_Base):
    """Continuous per-channel scan of all DIMM request registers.

    Every channel's polling loop reads one of its DIMMs every
    ``poll_visit_ns`` (channels poll in parallel through the MC queues), so
    each bus carries a constant ``poll_busy / poll_visit`` polling load —
    the ~32% "Base" occupancy of Fig. 15-(b) — regardless of DIMM count.
    """

    name = "baseline"
    uses_proxy = False

    def __init__(self, sim: Simulator, config: SystemConfig, stats: StatRegistry) -> None:
        super().__init__(sim, config, stats)
        #: dimm_id -> (k*visit, loop) for its channel's round-robin scan.
        self._scan_slots: Dict[int, Tuple[int, int]] = {}

    def configure(self, channels: List[MemoryChannel]) -> None:
        super().configure(channels)
        visit = self._visit_ps
        busy = ns(self.host.poll_busy_ns)
        for channel in channels:
            channel.set_polling_load(min(0.95, busy / visit))

    def notice(self, dimm_id: int) -> SimEvent:
        visit = self._visit_ps
        slot = self._scan_slots.get(dimm_id)
        if slot is None:
            dimms_here = self.config.dimms_on_channel(
                self.config.channel_of(dimm_id)
            )
            slot = self._scan_slots[dimm_id] = (
                dimms_here.index(dimm_id) * visit,
                visit * len(dimms_here),
            )
        # round-robin within the channel: DIMM at index k is visited at
        # t = k*visit (mod loop)
        phase = (slot[0] - self.sim.now) % slot[1]
        return self._fire_after(phase + visit)


class InterruptPolling(_Base):
    """ALERT_N interrupt, then a scan of the interrupting channel."""

    name = "baseline+interrupt"
    uses_proxy = False

    def notice(self, dimm_id: int) -> SimEvent:
        channel = self.channels[self.config.channel_of(dimm_id)]
        done = self.sim.event(name="poll.notice")

        def proc():
            yield self._interrupt_ps
            # ALERT_N is shared: scan every DIMM on the channel to find
            # the requester (Sec. IV-A).
            for _ in channel.dimm_ids:
                yield channel.transfer(self.host.poll_read_bytes, kind="poll")
                self.stats.add("poll.scan_reads")
            self.stats.add("poll.notices")
            if self.sim.trace.enabled:
                self.sim.trace.instant(
                    "host", "poll.interrupt", "host.poll", dimm=dimm_id
                )
            done.succeed(None)

        self.sim.process(proc(), name="poll.interrupt")
        return done


class ProxyPolling(_Base):
    """Poll only the proxy DIMM of each DL group (Sec. IV-A)."""

    name = "proxy"
    uses_proxy = True

    def __init__(self, sim: Simulator, config: SystemConfig, stats: StatRegistry) -> None:
        super().__init__(sim, config, stats)
        self._proxies: Dict[int, int] = {
            g: config.master_dimm(g) for g in range(len(config.groups))
        }

    def proxy_of(self, dimm_id: int) -> int:
        """The proxy DIMM for a DIMM's group."""
        return self._proxies[self.config.group_of(dimm_id)]

    def configure(self, channels: List[MemoryChannel]) -> None:
        super().configure(channels)
        busy = ns(self.host.poll_busy_ns)
        repoll = self._repoll_ps
        for proxy in self._proxies.values():
            channel = channels[self.config.channel_of(proxy)]
            channel.set_polling_load(min(0.95, busy / repoll))

    def notice(self, dimm_id: int) -> SimEvent:
        proxy = self.proxy_of(dimm_id)
        group = self.config.group_of(proxy)
        # proxies are visited on a staggered repoll schedule
        phase = (group * self._visit_ps - self.sim.now) % self._repoll_ps
        return self._fire_after(phase + self._visit_ps)


class ProxyInterruptPolling(ProxyPolling):
    """ALERT_N interrupt plus a single proxy read (lowest bus cost)."""

    name = "proxy+interrupt"
    uses_proxy = True

    def configure(self, channels: List[MemoryChannel]) -> None:
        _Base.configure(self, channels)  # no background load

    def notice(self, dimm_id: int) -> SimEvent:
        proxy = self.proxy_of(dimm_id)
        channel = self.channels[self.config.channel_of(proxy)]
        done = self.sim.event(name="poll.notice")

        def proc():
            yield self._interrupt_ps
            yield channel.transfer(self.host.poll_read_bytes, kind="poll")
            self.stats.add("poll.scan_reads")
            self.stats.add("poll.notices")
            if self.sim.trace.enabled:
                self.sim.trace.instant(
                    "host", "poll.interrupt", "host.poll", dimm=dimm_id
                )
            done.succeed(None)

        self.sim.process(proc(), name="poll.proxy_interrupt")
        return done


def make_polling(
    strategy: str, sim: Simulator, config: SystemConfig, stats: StatRegistry
) -> PollingStrategy:
    """Factory over :data:`POLLING_STRATEGIES` names."""
    classes = {
        "baseline": BaselinePolling,
        "baseline+interrupt": InterruptPolling,
        "proxy": ProxyPolling,
        "proxy+interrupt": ProxyInterruptPolling,
    }
    try:
        cls = classes[strategy]
    except KeyError:
        raise ConfigError(
            f"unknown polling strategy {strategy!r}; choose from {POLLING_STRATEGIES}"
        ) from None
    return cls(sim, config, stats)
