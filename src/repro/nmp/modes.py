"""Coarse-grained execution flow: Host-Access / NMP-Access modes.

Sec. II-A / III-E: before and after kernel execution the DIMMs are in HA
mode (the host owns the DRAMs and stages inputs/results over the memory
channels); during execution they are in NA mode (the local MCs own the
DRAMs; the host only polls and forwards).  Mode switches hand the DRAM
over (precharge-all + a control handshake) and NMP caches are flushed before
returning to HA so the host reads up-to-date results (software-assisted
coherence).

:class:`ExecutionFlow` wraps an :class:`~repro.nmp.system.NMPSystem` with
this protocol and accounts the offload overheads separately, so kernels
can be reported with or without staging costs.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.errors import SimulationError
from repro.nmp.results import RunResult
from repro.nmp.system import NMPSystem, ThreadFactory
from repro.sim.engine import AllOf
from repro.sim.time import ns, us

#: host <-> local MC control handshake per mode switch.
MODE_SWITCH_PS = ns(500.0)
#: per-DIMM NMP cache flush before returning to HA mode (128 KB L2).
CACHE_FLUSH_PS = us(2.0)


class Mode(enum.Enum):
    """Who owns the DRAMs."""

    HOST_ACCESS = "HA"
    NMP_ACCESS = "NA"


class ExecutionFlow:
    """Drives one offload: HA -> stage in -> NA kernel -> flush -> HA."""

    def __init__(self, system: NMPSystem) -> None:
        self.system = system
        self.mode = Mode.HOST_ACCESS
        #: simulated time spent staging data and switching modes.
        self.offload_ps = 0

    def _stage(self, nbytes_per_dimm: int, is_write: bool) -> int:
        """Host moves data to/from every DIMM over its channel; returns
        the elapsed simulated time."""
        sim = self.system.sim
        start = sim.now
        transfers = []
        for dimm in self.system.dimms:
            channel = self.system.channels[dimm.channel_id]
            transfers.append(channel.transfer(nbytes_per_dimm, kind="data"))
            transfers.append(
                dimm.dram.access(0, max(64, nbytes_per_dimm), is_write)
            )

        def wait():
            yield AllOf(transfers)

        sim.run_process(wait(), name="offload.stage")
        return sim.now - start

    def enter_na(self, input_bytes_per_dimm: int = 0) -> None:
        """Stage inputs and hand the DRAMs to the local MCs."""
        if self.mode is Mode.NMP_ACCESS:
            raise SimulationError("already in NA mode")
        if input_bytes_per_dimm:
            self.offload_ps += self._stage(input_bytes_per_dimm, is_write=True)
        for dimm in self.system.dimms:
            dimm.dram.precharge_all()
        self._advance(MODE_SWITCH_PS)
        self.mode = Mode.NMP_ACCESS

    def exit_na(self, result_bytes_per_dimm: int = 0) -> None:
        """Flush NMP caches, hand DRAMs back, and read out results."""
        if self.mode is Mode.HOST_ACCESS:
            raise SimulationError("not in NA mode")
        self._advance(CACHE_FLUSH_PS + MODE_SWITCH_PS)
        for dimm in self.system.dimms:
            dimm.dram.precharge_all()
        self.mode = Mode.HOST_ACCESS
        if result_bytes_per_dimm:
            self.offload_ps += self._stage(result_bytes_per_dimm, is_write=False)

    def _advance(self, duration_ps: int) -> None:
        sim = self.system.sim
        target = sim.now + duration_ps
        sim.schedule(duration_ps, lambda _arg: None, None)
        sim.run(until=target)
        self.offload_ps += duration_ps

    def run_kernel(
        self,
        thread_factories: List[ThreadFactory],
        placement: Optional[List[int]] = None,
        input_bytes_per_dimm: int = 0,
        result_bytes_per_dimm: int = 0,
        workload_name: str = "kernel",
    ) -> RunResult:
        """Full offload: stage in, execute in NA mode, stage out.

        The returned result's ``profile_ps`` field is unused here; the
        staging overhead is exposed as :attr:`offload_ps`.
        """
        self.enter_na(input_bytes_per_dimm)
        result = self.system.run(
            thread_factories, placement=placement, workload_name=workload_name
        )
        self.exit_na(result_bytes_per_dimm)
        return result
