"""One NMP DIMM: DRAM ranks + buffer chip (local MC, NMP cores, DL port).

This is the centralized-buffer-chip organization the paper targets
(Sec. II-A): the buffer chip hosts the local memory controller, the NMP
cores, and — on DIMM-Link systems — the DL-Controller.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.dram.module import DRAMModule
from repro.dram.timing import preset
from repro.nmp.core import NMPCore
from repro.nmp.localmc import LocalMemoryController
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry


class DIMM:
    """A near-memory-processing DIMM."""

    def __init__(
        self,
        sim: Simulator,
        dimm_id: int,
        config: SystemConfig,
        stats: StatRegistry,
    ) -> None:
        self.sim = sim
        self.dimm_id = dimm_id
        self.config = config
        self.stats = stats.scope(f"dimm{dimm_id}")
        self.dram = DRAMModule(
            sim,
            preset(config.dram_preset),
            ranks=config.ranks_per_dimm,
            stats=self.stats,
            name=f"dimm{dimm_id}.dram",
        )
        self.mc = LocalMemoryController(sim, dimm_id, self.dram, self.stats)
        self.cores = [
            NMPCore(sim, dimm_id, index, config.nmp, self.mc, self.stats)
            for index in range(config.nmp.cores_per_dimm)
        ]

    @property
    def channel_id(self) -> int:
        """The host memory channel this DIMM sits on."""
        return self.config.channel_of(self.dimm_id)

    @property
    def group_id(self) -> int:
        """The DL group this DIMM belongs to."""
        return self.config.group_of(self.dimm_id)

    def __repr__(self) -> str:
        return f"DIMM({self.dimm_id}, ch={self.channel_id}, grp={self.group_id})"
