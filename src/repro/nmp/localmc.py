"""Local memory controller of an NMP DIMM (Fig. 6 ❶-❹).

NMP cores submit memory requests here.  The controller buffers them in a
bounded transaction buffer, decodes the target DIMM, and arbitrates: local
requests go to the DIMM's DRAM through the local DDR interface; remote
requests are handed to the system's IDC mechanism via the DL interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import SimEvent, Simulator
from repro.sim.resource import SlotResource
from repro.sim.stats import StatRegistry
from repro.sim.time import ns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dram.module import DRAMModule
    from repro.idc.base import IDCMechanism

#: arbitration + address-decode latency per request.
ARBITER_LATENCY_PS = ns(3.0)
#: transaction-buffer entries per DIMM (Fig. 6 ❶).
TRANSACTION_BUFFER_ENTRIES = 64


class LocalMemoryController:
    """Per-DIMM request arbiter between local DRAM and the IDC path."""

    def __init__(
        self,
        sim: Simulator,
        dimm_id: int,
        dram: "DRAMModule",
        stats: StatRegistry,
    ) -> None:
        self.sim = sim
        self.dimm_id = dimm_id
        self.dram = dram
        self.stats = stats
        self.idc: "IDCMechanism | None" = None
        self.buffer = SlotResource(
            sim, TRANSACTION_BUFFER_ENTRIES, name=f"dimm{dimm_id}.txnbuf"
        )

    def bind_idc(self, idc: "IDCMechanism") -> None:
        """Connect the DL interface to the system's IDC mechanism."""
        self.idc = idc

    def submit(
        self, target_dimm: int, offset: int, nbytes: int, is_write: bool
    ) -> SimEvent:
        """Submit one request; the event fires on completion."""
        done = self.sim.event(name=f"dimm{self.dimm_id}.mc")
        self.sim.process(
            self._serve(target_dimm, offset, nbytes, is_write, done),
            name=f"dimm{self.dimm_id}.mc",
        )
        return done

    def _serve(
        self, target_dimm: int, offset: int, nbytes: int, is_write: bool, done: SimEvent
    ):
        yield self.buffer.acquire()
        yield ARBITER_LATENCY_PS
        if target_dimm == self.dimm_id:
            self.stats.add("idc.local_bytes", nbytes)
            yield self.dram.access(offset, nbytes, is_write)
        else:
            if self.idc is None:
                raise RuntimeError(
                    f"dimm{self.dimm_id}: remote request without an IDC mechanism"
                )
            if is_write:
                yield self.idc.remote_write(self.dimm_id, target_dimm, offset, nbytes)
            else:
                yield self.idc.remote_read(self.dimm_id, target_dimm, offset, nbytes)
        self.buffer.release()
        done.succeed(nbytes)

    def local_access(self, offset: int, nbytes: int, is_write: bool) -> SimEvent:
        """Direct local DRAM access (used by the IDC receive path)."""
        self.stats.add("idc.remote_served_bytes", nbytes)
        return self.dram.access(offset, nbytes, is_write)
