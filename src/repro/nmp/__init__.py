"""NMP-side models: DIMMs, cores, local MCs, system assembly, results."""

from repro.nmp.core import NMPCore
from repro.nmp.dimm import DIMM
from repro.nmp.executor import ThreadExecutor
from repro.nmp.localmc import LocalMemoryController
from repro.nmp.results import RunResult
from repro.nmp.system import NMPSystem

__all__ = [
    "NMPCore",
    "DIMM",
    "ThreadExecutor",
    "LocalMemoryController",
    "RunResult",
    "NMPSystem",
]
