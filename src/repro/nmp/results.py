"""Run results: the measurements an experiment reads off a finished run.

A :class:`RunResult` round-trips through plain JSON dicts
(:meth:`RunResult.to_json_dict` / :meth:`RunResult.from_json_dict`) so the
sweep runner can persist finished simulations in the on-disk results
cache and ship them across process boundaries losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.stats import StatRegistry
from repro.sim.time import to_ms, to_us


@dataclass
class RunResult:
    """Outcome of executing one kernel on one system."""

    system_name: str
    mechanism: str
    workload: str
    #: kernel makespan (last thread completion), picoseconds.
    time_ps: int
    #: per-thread completion times, picoseconds.
    thread_end_ps: List[int]
    stats: StatRegistry
    #: per-channel bus occupancy at kernel end (incl. polling background).
    bus_occupancy: List[float] = field(default_factory=list)
    #: extra time spent in the profiling phase (distance-aware mapping).
    profile_ps: int = 0
    #: polling strategy the run used ("none" for CPU baselines).
    polling: str = "none"

    # -- derived metrics -----------------------------------------------------------

    @property
    def total_ps(self) -> int:
        """Kernel plus profiling time (what Fig. 10 charges DL-opt)."""
        return self.time_ps + self.profile_ps

    @property
    def time_us(self) -> float:
        """Makespan in microseconds."""
        return to_us(self.time_ps)

    @property
    def time_ms(self) -> float:
        """Makespan in milliseconds."""
        return to_ms(self.time_ps)

    def speedup_over(self, baseline: "RunResult") -> float:
        """Baseline time / this time (includes profiling overhead)."""
        return baseline.total_ps / self.total_ps

    @property
    def stall_remote_ps(self) -> float:
        """Total core cycles stalled on IDC (non-overlapped IDC time)."""
        return self.stats.sum_suffix("core.stall_remote_ps")

    @property
    def nonoverlapped_idc_ratio(self) -> float:
        """Fraction of aggregate thread time stalled on IDC (Fig. 10 line)."""
        total_thread = self.stats.sum_suffix("core.thread_ps")
        if total_thread <= 0:
            return 0.0
        return (
            self.stats.sum_suffix("core.stall_remote_ps")
            + self.stats.sum_suffix("core.stall_sync_ps")
        ) / total_thread

    @property
    def traffic_breakdown(self) -> Dict[str, float]:
        """Bytes by path: local / DL intra-group / host-forwarded (Fig. 11)."""
        return {
            "local": self.stats.sum_suffix("idc.local_bytes"),
            "intra_group": self.stats.sum_suffix("idc.intra_group_bytes")
            + self.stats.sum_suffix("idc.dedicated_bus_bytes")
            + self.stats.sum_suffix("idc.channel_bc_bytes"),
            "forwarded": self.stats.sum_suffix("idc.forwarded_bytes"),
        }

    @property
    def forwarded_fraction(self) -> float:
        """Share of non-local traffic that crossed the host CPU."""
        breakdown = self.traffic_breakdown
        remote = breakdown["intra_group"] + breakdown["forwarded"]
        if remote <= 0:
            return 0.0
        return breakdown["forwarded"] / remote

    @property
    def mean_bus_occupancy(self) -> float:
        """Average memory-bus occupancy over channels (Fig. 15-(b))."""
        if not self.bus_occupancy:
            return 0.0
        return sum(self.bus_occupancy) / len(self.bus_occupancy)

    def counter(self, suffix: str) -> float:
        """Aggregate counter across scopes (convenience passthrough)."""
        return self.stats.sum_suffix(suffix)

    # -- serialization -------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of the full result, stats included."""
        return {
            "system_name": self.system_name,
            "mechanism": self.mechanism,
            "workload": self.workload,
            "time_ps": self.time_ps,
            "thread_end_ps": list(self.thread_end_ps),
            "stats": self.stats.to_json_dict(),
            "bus_occupancy": list(self.bus_occupancy),
            "profile_ps": self.profile_ps,
            "polling": self.polling,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Rebuild a value-equal result from :meth:`to_json_dict` output."""
        return cls(
            system_name=str(data["system_name"]),
            mechanism=str(data["mechanism"]),
            workload=str(data["workload"]),
            time_ps=int(data["time_ps"]),  # type: ignore[arg-type]
            thread_end_ps=[int(v) for v in data["thread_end_ps"]],  # type: ignore[union-attr]
            stats=StatRegistry.from_json_dict(data["stats"]),  # type: ignore[arg-type]
            bus_occupancy=[float(v) for v in data["bus_occupancy"]],  # type: ignore[union-attr]
            profile_ps=int(data["profile_ps"]),  # type: ignore[arg-type]
            polling=str(data["polling"]),
        )

    def __repr__(self) -> str:
        return (
            f"RunResult({self.workload} on {self.mechanism}/{self.system_name}: "
            f"{self.time_us:.1f}us)"
        )
