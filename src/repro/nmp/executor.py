"""Generic thread executor: turns an op stream into simulated time.

Both NMP cores and baseline host cores execute the same workload op
streams (:mod:`repro.workloads.ops`).  This base class implements the
shared machinery — the bounded outstanding-request window, request
draining, and stall-time attribution (local vs. remote/IDC, which is where
Fig. 10's "non-overlapped IDC cycles" metric comes from) — while
subclasses define how each op class actually costs time on their system.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import WorkloadError
from repro.sim.engine import AllOf, Process, SimEvent, Simulator
from repro.sim.resource import SlotResource
from repro.sim.stats import StatRegistry
from repro.sim.time import cycles
from repro.workloads.ops import Barrier, Broadcast, Compute, Flush, Read, Stamp, Write


class ThreadExecutor(abc.ABC):
    """Executes one software thread's op stream on one core."""

    def __init__(
        self,
        sim: Simulator,
        freq_ghz: float,
        window: int,
        stats: StatRegistry,
        name: str = "core",
        compute_scale: float = 1.0,
    ) -> None:
        self.sim = sim
        self.freq_ghz = freq_ghz
        self.stats = stats
        self.name = name
        #: >1.0 slows compute (host cores time-multiplexing many threads).
        self.compute_scale = compute_scale
        self._window = SlotResource(sim, window, name=f"{name}.window")
        self._pending: Dict[int, Tuple[SimEvent, bool]] = {}
        self._next_id = 0
        self._outstanding_remote = 0
        #: optional shared page table (repro.mapping.pagetable.PageTable);
        #: None keeps the legacy static-shard addressing untouched.
        self.pagetable = None

    def resolve_target(self, op, toucher: int) -> Tuple[int, Optional[Tuple[int, int]]]:
        """Serving DIMM for a Read/Write, plus a pending page migration.

        Without a page table (or for ops that carry no page id) this is
        exactly the legacy behaviour: the op's static ``dimm``.
        """
        if self.pagetable is None or op.page is None:
            return op.dimm, None
        return self.pagetable.resolve(op.page, toucher)

    # -- hooks ----------------------------------------------------------------

    @abc.abstractmethod
    def memory_access(self, op) -> Tuple[Optional[SimEvent], bool]:
        """Issue a Read/Write.  Returns (completion event | None, is_remote).

        Returning ``None`` means the access was satisfied immediately
        (e.g. a cache hit whose latency the hook already charged).
        """

    @abc.abstractmethod
    def broadcast(self, op: Broadcast) -> SimEvent:
        """Issue a broadcast; event fires when all receivers have the data."""

    @abc.abstractmethod
    def barrier(self, thread_id: int) -> SimEvent:
        """Enter the global barrier; event fires on release."""

    # -- execution --------------------------------------------------------------

    def run_thread(self, thread_id: int, ops: Iterable) -> Process:
        """Start executing ``ops`` as a simulation process."""
        return self.sim.process(
            self._thread_proc(thread_id, ops), name=f"{self.name}.t{thread_id}"
        )

    def _thread_proc(self, thread_id: int, ops: Iterable):
        start = self.sim.now
        interval_start = start
        trace = self.sim.trace
        thread_span = (
            trace.begin("nmp", "thread", self.name, thread=thread_id)
            if trace.enabled
            else None
        )
        for op in ops:
            if isinstance(op, Compute):
                duration = cycles(op.cycles * self.compute_scale, self.freq_ghz)
                self.stats.add("core.busy_ps", duration)
                yield duration
            elif isinstance(op, (Read, Write)):
                yield from self._issue_memory(op)
            elif isinstance(op, Broadcast):
                yield from self._drain()
                blocked_from = self.sim.now
                span = (
                    trace.begin("nmp", "broadcast", self.name, thread=thread_id)
                    if trace.enabled
                    else None
                )
                yield self.broadcast(op)
                trace.end(span)
                self.stats.add("core.stall_remote_ps", self.sim.now - blocked_from)
                self.stats.add("core.broadcasts")
            elif isinstance(op, Barrier):
                yield from self._drain()
                blocked_from = self.sim.now
                span = (
                    trace.begin("nmp", "barrier", self.name, thread=thread_id)
                    if trace.enabled
                    else None
                )
                yield self.barrier(thread_id)
                trace.end(span)
                self.stats.add("core.stall_sync_ps", self.sim.now - blocked_from)
                self.stats.add("core.barriers")
            elif isinstance(op, Flush):
                yield from self._drain()
            elif isinstance(op, Stamp):
                yield from self._drain()
                self.stats.histogram(op.key).record(self.sim.now - interval_start)
                interval_start = self.sim.now
            else:
                raise WorkloadError(f"unknown op {op!r}")
        yield from self._drain()
        self.stats.add("core.thread_ps", self.sim.now - start)
        self.stats.add("core.threads")
        trace.end(thread_span)
        return self.sim.now

    def _issue_memory(self, op):
        blocked_from = self.sim.now
        yield self._window.acquire()
        self._attribute_stall(self.sim.now - blocked_from)
        event, is_remote = self.memory_access(op)
        self.stats.add("core.mem_ops")
        if is_remote:
            self.stats.add("core.remote_ops")
            self.stats.add("core.remote_bytes", op.nbytes)
        if event is None:
            self._window.release()
            return
        request_id = self._next_id
        self._next_id += 1
        self._pending[request_id] = (event, is_remote)
        if is_remote:
            self._outstanding_remote += 1
        event.add_callback(lambda _ev, rid=request_id: self._on_complete(rid))

    def _on_complete(self, request_id: int) -> None:
        _event, is_remote = self._pending.pop(request_id)
        if is_remote:
            self._outstanding_remote -= 1
        self._window.release()

    def _drain(self):
        while self._pending:
            blocked_from = self.sim.now
            events = [event for event, _remote in self._pending.values()]
            remote_fraction = self._remote_fraction()
            yield AllOf(events)
            self._split_stall(self.sim.now - blocked_from, remote_fraction)

    def _remote_fraction(self) -> float:
        if not self._pending:
            return 0.0
        return self._outstanding_remote / len(self._pending)

    def _attribute_stall(self, blocked_ps: int) -> None:
        if blocked_ps <= 0:
            return
        self._split_stall(blocked_ps, self._remote_fraction())

    def _split_stall(self, blocked_ps: int, remote_fraction: float) -> None:
        if blocked_ps <= 0:
            return
        remote_part = int(blocked_ps * remote_fraction)
        self.stats.add("core.stall_remote_ps", remote_part)
        self.stats.add("core.stall_local_ps", blocked_ps - remote_part)
