"""DIMM-NMP system assembly and kernel execution.

:class:`NMPSystem` builds the full machine of Table V — memory channels,
NMP DIMMs, the host polling/forwarding services, and exactly one IDC
mechanism — and runs workload kernels on it in the coarse-grained NA mode
(the host only polls and forwards; NMP cores own the DRAMs).

A system instance owns its own :class:`~repro.sim.engine.Simulator`, so
each run is hermetic and deterministic.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterator, List, Optional, Union

from repro.config import SystemConfig
from repro.core.sync import SyncManager
from repro.errors import ConfigError, DeadlockError, WorkloadError
from repro.faults import FaultSchedule
from repro.host.forwarding import ForwardController
from repro.host.memchannel import MemoryChannel
from repro.host.polling import make_polling
from repro.idc import make_mechanism
from repro.idc.base import IDCMechanism
from repro.nmp.dimm import DIMM
from repro.nmp.results import RunResult
from repro.sim.engine import Simulator
from repro.sim.stats import StatRegistry

ThreadFactory = Callable[[], Iterator]

#: default polling strategy per mechanism (MCN has no proxy hardware).
_DEFAULT_POLLING = {
    "mcn": "baseline",
    "abc": "baseline",
    "aim": "baseline",
    "dimm_link": "proxy",
}


class NMPSystem:
    """One configured DIMM-NMP machine ready to execute kernels."""

    def __init__(
        self,
        config: SystemConfig,
        idc: Union[str, IDCMechanism] = "dimm_link",
        polling: Optional[str] = None,
        sync_mode: str = "hierarchical",
        sim: Optional[Simulator] = None,
        stats: Optional[StatRegistry] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        self.config = config
        # a private simulator by default; pass shared ones to embed this
        # system in a larger model (e.g. a disaggregated-memory blade)
        self.sim = sim if sim is not None else Simulator()
        self.stats = stats if stats is not None else StatRegistry()
        self.sync_mode = sync_mode
        self.idc = make_mechanism(idc) if isinstance(idc, str) else idc
        polling_name = polling or _DEFAULT_POLLING.get(self.idc.name, "baseline")
        if polling_name.startswith("proxy") and self.idc.name != "dimm_link":
            raise ConfigError(
                f"polling strategy {polling_name!r} needs DIMM-Link proxies; "
                f"mechanism is {self.idc.name!r}"
            )
        self.channels = [
            MemoryChannel(
                self.sim, ch, config.dimms_on_channel(ch), config.channel, self.stats
            )
            for ch in range(config.num_channels)
        ]
        self.polling = make_polling(polling_name, self.sim, config, self.stats)
        self.polling.configure(self.channels)
        self.forwarder = ForwardController(
            self.sim, config, self.channels, self.polling, self.stats
        )
        self.dimms = [DIMM(self.sim, d, config, self.stats) for d in range(config.num_dimms)]
        self.idc.attach(self)
        for dimm in self.dimms:
            dimm.mc.bind_idc(self.idc)
        # arms the fault timers on mechanisms with a DL bridge; a no-op
        # (None) on bridge-less mechanisms, whose media cannot fail here
        self.faults = faults.install(self) if faults is not None else None

    # -- placement -----------------------------------------------------------------

    def natural_placement(self, num_threads: int) -> List[int]:
        """Block placement: thread i on DIMM ``i // threads_per_dimm``."""
        per_dimm = self.config.nmp.cores_per_dimm
        placement = [min(i // per_dimm, self.config.num_dimms - 1) for i in range(num_threads)]
        self._validate_placement(placement)
        return placement

    def _validate_placement(self, placement: List[int]) -> None:
        per_dimm = Counter(placement)
        limit = self.config.nmp.cores_per_dimm
        for dimm_id, count in per_dimm.items():
            if not 0 <= dimm_id < self.config.num_dimms:
                raise WorkloadError(f"placement targets unknown DIMM {dimm_id}")
            if count > limit:
                raise WorkloadError(
                    f"placement puts {count} threads on DIMM {dimm_id} "
                    f"(limit {limit})"
                )

    # -- execution -------------------------------------------------------------------

    def run(
        self,
        thread_factories: List[ThreadFactory],
        placement: Optional[List[int]] = None,
        workload_name: str = "kernel",
        pagetable=None,
    ) -> RunResult:
        """Execute one kernel: one op stream per thread, placed on DIMMs.

        ``pagetable`` (a :class:`repro.mapping.pagetable.PageTable`) is
        shared by every core; paged ops then resolve — and possibly
        migrate — through it.  ``None`` keeps static-shard addressing.
        """
        if not thread_factories:
            raise WorkloadError("kernel needs at least one thread")
        if placement is None:
            placement = self.natural_placement(len(thread_factories))
        if len(placement) != len(thread_factories):
            raise WorkloadError(
                f"{len(placement)} placements for {len(thread_factories)} threads"
            )
        self._validate_placement(placement)

        sync = SyncManager(self.sim, self.config, self.idc, self.stats, self.sync_mode)
        sync.set_participants(placement)

        core_cursor: Counter = Counter()
        processes = []
        for thread_id, (factory, dimm_id) in enumerate(zip(thread_factories, placement)):
            core = self.dimms[dimm_id].cores[core_cursor[dimm_id]]
            core_cursor[dimm_id] += 1
            core.bind(self.idc, sync)
            core.pagetable = pagetable
            processes.append(core.run_thread(thread_id, factory()))
        start = self.sim.now
        self.sim.run()
        self.idc.finalize_stats()
        unfinished = [p.name for p in processes if not p.finished]
        if unfinished:
            blocked = self.sim.blocked_processes()
            raise DeadlockError(
                f"kernel deadlocked; stuck threads: {unfinished}",
                blocked=blocked,
                time_ps=self.sim.now,
            )
        ends = [p.value - start for p in processes]
        return RunResult(
            system_name=self.config.name,
            mechanism=self.idc.name,
            workload=workload_name,
            time_ps=max(ends),
            thread_end_ps=ends,
            stats=self.stats,
            bus_occupancy=[channel.occupancy() for channel in self.channels],
            polling=self.polling.name,
        )
