"""NMP core model (the general-purpose cores in each DIMM's buffer chip).

An :class:`NMPCore` executes a thread placed on its DIMM: local accesses
go through the DIMM's local memory controller (with a small deterministic
cache-hit fraction for thread-private/read-only data, Sec. III-E); remote
accesses and broadcasts go through the system's IDC mechanism; barriers go
through the synchronization manager.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.config import NMPConfig
from repro.nmp.executor import ThreadExecutor
from repro.sim.engine import SimEvent, Simulator
from repro.sim.stats import StatRegistry
from repro.sim.time import ns
from repro.workloads.ops import Broadcast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sync import SyncManager
    from repro.idc.base import IDCMechanism
    from repro.nmp.localmc import LocalMemoryController


def _deterministic_hit(counter: int, hit_rate: float) -> bool:
    """Reproducible pseudo-random cache-hit decision (Weyl-style hash)."""
    return ((counter * 0x9E3779B1) >> 8) % 1000 < int(hit_rate * 1000)


class NMPCore(ThreadExecutor):
    """One of the ``cores_per_dimm`` NMP cores on a DIMM."""

    def __init__(
        self,
        sim: Simulator,
        dimm_id: int,
        core_index: int,
        config: NMPConfig,
        mc: "LocalMemoryController",
        stats: StatRegistry,
    ) -> None:
        super().__init__(
            sim,
            freq_ghz=config.freq_ghz,
            window=config.outstanding_window,
            stats=stats,
            name=f"dimm{dimm_id}.core{core_index}",
        )
        self.dimm_id = dimm_id
        self.core_index = core_index
        self.config = config
        self.mc = mc
        self.idc: "IDCMechanism | None" = None
        self.sync: "SyncManager | None" = None
        self._access_counter = 0

    def bind(self, idc: "IDCMechanism", sync: "SyncManager") -> None:
        """Connect the core to the run's IDC mechanism and barrier service."""
        self.idc = idc
        self.sync = sync

    # -- ThreadExecutor hooks ---------------------------------------------------

    def memory_access(self, op) -> Tuple[Optional[SimEvent], bool]:
        from repro.workloads.ops import Write

        is_write = isinstance(op, Write)
        target, migration = self.resolve_target(op, self.dimm_id)
        if migration is not None:
            return self._migrate_then_access(op, target, migration, is_write), True
        is_remote = target != self.dimm_id
        if not is_remote and not is_write:
            self._access_counter += 1
            if _deterministic_hit(self._access_counter, self.config.local_hit_rate):
                self.stats.add("core.cache_hits")
                hit = self.sim.event(name=f"{self.name}.hit")
                self.sim.schedule(
                    ns(self.config.cache_latency_ns),
                    lambda _arg: hit.succeed(op.nbytes),
                    None,
                )
                return hit, False
        return self.mc.submit(target, op.offset, op.nbytes, is_write), is_remote

    def _migrate_then_access(
        self, op, target: int, migration: Tuple[int, int], is_write: bool
    ) -> SimEvent:
        """Pull the page from its old owner over the IDC, then access it.

        The page table already switched ownership; this charges the
        ``PAGE_BYTES`` copy (new owner reads the page from the old one
        through the active IDC mechanism) before the triggering access,
        which is then served by the new owner — usually locally.
        """
        from repro.dram.address import PAGE_BYTES, page_offset

        if self.idc is None:
            raise RuntimeError(f"{self.name}: core not bound to an IDC mechanism")
        src, dst = migration
        done = self.sim.event(name=f"{self.name}.migrated")

        def proc():
            begin = self.sim.now
            trace = self.sim.trace
            span = (
                trace.begin(
                    "placement", "migrate", self.name, page=op.page, src=src, dst=dst
                )
                if trace.enabled
                else None
            )
            yield self.idc.remote_read(dst, src, page_offset(op.page), PAGE_BYTES)
            self.stats.add("placement.migrations")
            self.stats.add("placement.migrated_bytes", PAGE_BYTES)
            self.stats.add("placement.migration_ps", self.sim.now - begin)
            if span is not None:
                trace.end(span)
            yield self.mc.submit(target, op.offset, op.nbytes, is_write)
            done.succeed(op.nbytes)

        self.sim.process(proc(), name=f"{self.name}.migrate")
        return done

    def broadcast(self, op: Broadcast) -> SimEvent:
        if self.idc is None:
            raise RuntimeError(f"{self.name}: core not bound to an IDC mechanism")
        return self.idc.broadcast(self.dimm_id, op.offset, op.nbytes)

    def barrier(self, thread_id: int) -> SimEvent:
        if self.sync is None:
            raise RuntimeError(f"{self.name}: core not bound to a sync manager")
        return self.sync.barrier(thread_id)
