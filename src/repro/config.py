"""System configuration (the paper's Table V, as dataclasses).

Configurations are named like the paper: ``"4D-2C"`` means 4 NMP DIMMs over
2 memory channels.  :func:`SystemConfig.named` parses those strings and
applies the paper's grouping rule (one DL group for 4D-2C, two groups —
one per CPU side — otherwise).
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigError

#: DDR4-2400 channel bandwidth in GB/s (64-bit bus at 2400 MT/s).
DDR4_2400_CHANNEL_GBPS = 19.2


@dataclass(frozen=True)
class HostConfig:
    """The host CPU used both as baseline and as inter-group forwarder."""

    cores: int = 16
    freq_ghz: float = 3.0
    #: issue width used by the baseline-CPU compute model (IPC ceiling).
    ipc: float = 2.0
    #: average time the host needs to decode+forward one DL packet
    #: (stands in for the paper's GEM5-profiled forwarding cost: register
    #: read decode, destination lookup, uncached MMIO write setup).
    forward_latency_ns: float = 250.0
    #: per-channel polling visit period: each channel's polling loop reads
    #: one of its DIMMs' request registers every ``poll_visit_ns`` (the
    #: turnaround time of an isolated register read); channels poll in
    #: parallel through the memory controller queues.
    poll_visit_ns: float = 400.0
    #: bus busy time per polling read (command + 64B data on the bus).
    poll_busy_ns: float = 130.0
    #: bytes read from a DIMM's polling register per poll.
    poll_read_bytes: int = 64
    #: minimum interval between re-polls of the same proxy DIMM (the
    #: polling-proxy loop is deliberately slower since it visits few
    #: targets; keeps proxy-channel occupancy low, Fig. 15-(b)).
    proxy_repoll_ns: float = 600.0
    #: interrupt (ALERT_N) delivery + context-switch latency.
    interrupt_latency_ns: float = 1500.0
    #: host LLC per-access latency used by the CPU baseline memory model.
    llc_latency_ns: float = 12.0
    #: host LLC hit rate assumed for baseline runs of the NMP workloads
    #: (low: the kernels stream working sets far larger than the LLC).
    llc_hit_rate: float = 0.15
    #: fraction of peak channel bandwidth the host sustains on the
    #: irregular 64B-granule access patterns of these kernels (row misses,
    #: rank turnarounds); the NMP runtime coalesces accesses DIMM-side
    #: instead, which is a structural advantage of near-memory execution.
    channel_efficiency: float = 0.5


@dataclass(frozen=True)
class NMPConfig:
    """Per-DIMM near-memory processor (centralized buffer chip, Sec. II-A)."""

    cores_per_dimm: int = 4
    freq_ghz: float = 2.5
    #: outstanding remote/local request window per core (MSHR-like).
    outstanding_window: int = 16
    #: shared L2 size — only used for the hit-rate heuristic below.
    l2_kb: int = 128
    #: fraction of *local* accesses served by the NMP cache hierarchy.
    local_hit_rate: float = 0.25
    #: latency of an NMP cache hit.
    cache_latency_ns: float = 4.0


@dataclass(frozen=True)
class LinkConfig:
    """One DIMM-Link SerDes link (defaults follow GRS, Table II)."""

    bandwidth_gbps: float = 25.0
    #: per-hop router traversal + serialisation latency.
    hop_latency_ns: float = 10.0
    #: SerDes propagation latency across the bridge segment.
    wire_latency_ns: float = 2.0
    #: energy per bit moved on the link (GRS: 1.17 pJ/b).
    energy_pj_per_bit: float = 1.17
    #: credits per link direction (packets in flight before backpressure).
    credits: int = 8
    #: per-hop CRC-failure probability (failure-injection studies; the
    #: data-link layer retries, costing ``retry`` latency + re-occupancy).
    error_rate: float = 0.0
    #: ACK-timeout penalty per retransmission (also the exponential-
    #: backoff base of the bounded retry loop).
    retry_penalty_ns: float = 500.0
    #: retransmissions per hop before the DLL gives up with a
    #: :class:`~repro.errors.LinkFailure` (escalated to host forwarding).
    max_retries: int = 8
    #: consecutive ACK timeouts before the watchdog declares a link dead
    #: and flips it in the routing tables.
    watchdog_threshold: int = 3

    def scaled(self, bandwidth_gbps: float) -> "LinkConfig":
        """A copy with a different link bandwidth (Fig. 16 sweeps)."""
        return dataclasses.replace(self, bandwidth_gbps=bandwidth_gbps)


@dataclass(frozen=True)
class ChannelConfig:
    """A host memory channel (shared bus between its DIMMs and the host)."""

    bandwidth_gbps: float = DDR4_2400_CHANNEL_GBPS
    #: command/addressing latency added per bus transaction.
    bus_latency_ns: float = 7.5


@dataclass
class SystemConfig:
    """Full DIMM-NMP system description.

    ``groups`` lists the DIMM ids in each DL group, in physical
    (bridge-adjacency) order.
    """

    num_dimms: int = 16
    num_channels: int = 8
    ranks_per_dimm: int = 4
    topology: str = "half_ring"
    host: HostConfig = field(default_factory=HostConfig)
    nmp: NMPConfig = field(default_factory=NMPConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    groups: List[List[int]] = field(default_factory=list)
    dram_preset: str = "DDR4_2400_LRDIMM"

    def __post_init__(self) -> None:
        if self.num_dimms <= 0:
            raise ConfigError(f"num_dimms must be positive, got {self.num_dimms}")
        if self.num_channels <= 0:
            raise ConfigError(
                f"num_channels must be positive, got {self.num_channels}"
            )
        if self.num_dimms % self.num_channels != 0:
            raise ConfigError(
                f"{self.num_dimms} DIMMs not divisible across "
                f"{self.num_channels} channels"
            )
        if self.topology not in ("half_ring", "ring", "mesh", "torus"):
            raise ConfigError(f"unknown topology {self.topology!r}")
        if not self.groups:
            self.groups = default_groups(self.num_dimms)
        flat = [d for group in self.groups for d in group]
        if sorted(flat) != list(range(self.num_dimms)):
            raise ConfigError(f"groups {self.groups} do not cover all DIMMs")

    @property
    def dimms_per_channel(self) -> int:
        """DIMMs sharing each memory channel (DPC)."""
        return self.num_dimms // self.num_channels

    @property
    def name(self) -> str:
        """Paper-style short name, e.g. ``16D-8C``."""
        return f"{self.num_dimms}D-{self.num_channels}C"

    def channel_of(self, dimm_id: int) -> int:
        """The memory channel a DIMM sits on (channel-major layout)."""
        self._check_dimm(dimm_id)
        return dimm_id // self.dimms_per_channel

    def dimms_on_channel(self, channel_id: int) -> List[int]:
        """All DIMM ids on a channel."""
        if not 0 <= channel_id < self.num_channels:
            raise ConfigError(f"channel {channel_id} out of range")
        dpc = self.dimms_per_channel
        return list(range(channel_id * dpc, (channel_id + 1) * dpc))

    def group_of(self, dimm_id: int) -> int:
        """Index of the DL group containing the DIMM."""
        self._check_dimm(dimm_id)
        for index, group in enumerate(self.groups):
            if dimm_id in group:
                return index
        raise ConfigError(f"DIMM {dimm_id} not in any group")

    def position_in_group(self, dimm_id: int) -> Tuple[int, int]:
        """(group index, position along the bridge) for a DIMM."""
        group_index = self.group_of(dimm_id)
        return group_index, self.groups[group_index].index(dimm_id)

    def master_dimm(self, group_index: int) -> int:
        """The paper's heuristic master/proxy: the middle DIMM of a group."""
        group = self.groups[group_index]
        return group[len(group) // 2]

    def _check_dimm(self, dimm_id: int) -> None:
        if not 0 <= dimm_id < self.num_dimms:
            raise ConfigError(f"DIMM {dimm_id} out of range")

    @classmethod
    def named(cls, name: str, **overrides: object) -> "SystemConfig":
        """Build a config from a paper-style ``<N>D-<C>C`` name."""
        match = re.fullmatch(r"(\d+)D-(\d+)C", name.strip(), flags=re.IGNORECASE)
        if not match:
            raise ConfigError(f"config name {name!r} is not of the form '<N>D-<C>C'")
        num_dimms, num_channels = int(match.group(1)), int(match.group(2))
        return cls(num_dimms=num_dimms, num_channels=num_channels, **overrides)  # type: ignore[arg-type]


def default_groups(num_dimms: int) -> List[List[int]]:
    """The paper's grouping: one group for <=4 DIMMs, else two (per side)."""
    if num_dimms <= 4:
        return [list(range(num_dimms))]
    half = num_dimms // 2
    return [list(range(half)), list(range(half, num_dimms))]


#: The four paper configurations used in Figs. 10/16.
PAPER_CONFIG_NAMES = ("4D-2C", "8D-4C", "12D-6C", "16D-8C")
