"""Named crash-injection points for the fabric's chaos tests.

Every durable transition in the journal/lease protocol passes through a
named :func:`trip` call.  Normally these are no-ops; the chaos suite
arms them — in-process via :func:`arm`, or across process boundaries via
the ``DIMMLINK_FABRIC_FAULTS`` environment variable — to simulate a
crash at exactly that instruction and then assert the protocol recovers.

Two failure modes per point:

* ``raise`` (default) — :class:`InjectedFaultError` is raised, once (the
  point disarms itself), modelling a worker that dies mid-operation and
  is restarted.
* ``exit`` — the process dies immediately with ``os._exit`` (no cleanup,
  no ``finally`` blocks), modelling SIGKILL/power loss.  Selected by
  suffixing the point name with ``:exit`` in the environment variable.

``DIMMLINK_FABRIC_FAULTS`` is a comma-separated list, e.g.::

    DIMMLINK_FABRIC_FAULTS=journal.append.before_fsync:exit
"""

from __future__ import annotations

import os
from typing import Dict, Set

from repro.errors import ReproError

ENV_VAR = "DIMMLINK_FABRIC_FAULTS"

#: process exit status of an ``:exit``-mode fault (distinct from real codes).
EXIT_STATUS = 32

#: filesystem-protocol points (journal/lease/broker durable transitions).
FS_POINTS = (
    "journal.enqueue.before_link",
    "journal.enqueue.after_link",
    "journal.append.partial",
    "journal.append.before_write",
    "journal.append.before_fsync",
    "journal.append.after_fsync",
    "lease.claim.after_create",
    "lease.steal.after_rename",
    "lease.renew.before_write",
    "lease.release.before_unlink",
    "broker.claim.after_lease",
    "broker.complete.before_done",
    "broker.fail.before_transition",
    "worker.publish.after_cache_put",
)

#: network points of the service layer (:mod:`repro.service` and
#: :mod:`repro.fabric.netbroker`).  Each models one way a socket hop can
#: betray its peers mid-protocol:
#:
#: * ``net.frame.torn_write`` — half a length-prefixed frame reaches the
#:   wire, then the sender dies (TCP segment boundary + crash).
#: * ``net.conn.half_open`` — the peer reads a request and never
#:   replies, keeping the connection open (silent NAT/firewall drop).
#: * ``net.heartbeat.drop_ack`` — a lease renew is *applied* server-side
#:   but its ACK never reaches the worker.
#: * ``net.outcome.delayed`` — an outcome (complete/fail) reply is
#:   delayed past the client's timeout, provoking an idempotent retry.
#: * ``net.server.exit_mid_reply`` — the server journals a transition
#:   and dies before the reply bytes leave the process.
#: * ``net.client.reconnect_storm`` — the client tears the connection
#:   down right after a successful exchange (flapping link), forcing
#:   back-to-back reconnects.
NET_POINTS = (
    "net.frame.torn_write",
    "net.conn.half_open",
    "net.heartbeat.drop_ack",
    "net.outcome.delayed",
    "net.server.exit_mid_reply",
    "net.client.reconnect_storm",
)

#: every point the protocol exposes, for exhaustive chaos parametrization.
POINTS = FS_POINTS + NET_POINTS


class InjectedFaultError(ReproError):
    """A chaos fault point fired (simulated worker crash)."""


def _from_env() -> Dict[str, str]:
    armed: Dict[str, str] = {}
    for token in os.environ.get(ENV_VAR, "").split(","):
        token = token.strip()
        if not token:
            continue
        name, _, mode = token.partition(":")
        armed[name] = mode or "raise"
    return armed


#: armed point name -> mode ("raise" | "exit"); seeded from the env so
#: worker subprocesses inherit their chaos schedule.
_armed: Dict[str, str] = _from_env()

#: raise-mode points that already fired (one-shot semantics).
_fired: Set[str] = set()


def arm(name: str, mode: str = "raise") -> None:
    """Arm one point; ``mode`` is ``"raise"`` or ``"exit"``."""
    _armed[name] = mode
    _fired.discard(name)


def disarm(name: str) -> None:
    _armed.pop(name, None)
    _fired.discard(name)


def reset() -> None:
    """Disarm everything (test teardown)."""
    _armed.clear()
    _fired.clear()


def armed(name: str) -> bool:
    """Is ``name`` armed and still pending (not yet fired)?"""
    return name in _armed and name not in _fired


def trip(name: str) -> None:
    """Fire ``name`` if armed: raise once, or hard-exit the process."""
    if not armed(name):
        return
    if _armed[name] == "exit":
        os._exit(EXIT_STATUS)
    _fired.add(name)
    raise InjectedFaultError(f"injected fault at {name}")
