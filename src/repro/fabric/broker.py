"""The work broker: a durable spec queue with no coordinator process.

A broker is just a directory on a filesystem every worker can reach::

    <root>/broker.json     queue policy (retry budget, lease TTL, backoff)
    <root>/journal/        one append-only JSONL journal per spec
    <root>/leases/         TTL'd lease files (who is executing what)
    <root>/cache/          shared ResultsCache + farm-wide dead letters
                           (default; any shared cache dir works)

All coordination happens through filesystem atomics (see
:mod:`repro.fabric.journal` and :mod:`repro.fabric.lease`); every
operation here is safe to crash at any point and safe to race from any
number of processes or hosts:

* :meth:`WorkBroker.submit` enqueues a spec grid exactly once,
  deduplicated against finished cache entries, in-flight journals, and
  known-dead quarantine.
* :meth:`WorkBroker.claim` hands one runnable spec to a worker: it takes
  the lease, charges an attempt, and journals ``leased``.  Expired
  leases (crashed workers) are reclaimed here — the spec loops back to
  ``pending`` with capped exponential backoff, or to ``dead`` (and the
  farm-wide :class:`~repro.experiments.deadletter.DeadLetterStore`) once
  its attempt budget is spent.
* :meth:`WorkBroker.complete` / :meth:`WorkBroker.fail` journal the
  outcome and release the lease — in that order, so a crash in between
  leaves an orphaned lease that merely expires, never a lost outcome.

Queue policy lives in ``broker.json``, written by whoever touches the
broker first and read by everyone after, so submitters and workers on
different hosts can't disagree about retry budgets or TTLs.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.experiments.deadletter import DeadLetterStore
from repro.fabric import faultpoints
from repro.fabric.journal import SpecJournal, SpecRecord
from repro.fabric.lease import DEFAULT_TTL_S, LeaseManager
from repro.fsio import atomic_write_text
from repro.results_cache import ResultsCache

CONFIG_FILENAME = "broker.json"

#: first retry delay of a failed/reclaimed spec; doubles per attempt.
DEFAULT_BACKOFF_S = 0.25
DEFAULT_BACKOFF_CAP_S = 5.0

#: extra attempts granted to a failing spec before quarantine.
DEFAULT_RETRIES = 2


@dataclass(frozen=True)
class BrokerConfig:
    """Farm-wide queue policy, persisted in ``broker.json``."""

    retries: int = DEFAULT_RETRIES
    lease_ttl_s: float = DEFAULT_TTL_S
    backoff_s: float = DEFAULT_BACKOFF_S
    backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (capped exponential)."""
        return min(self.backoff_cap_s, self.backoff_s * (2 ** max(0, attempt - 1)))


@dataclass
class SubmitReport:
    """What one :meth:`WorkBroker.submit` call did with its grid."""

    #: distinct specs in the submitted grid.
    total: int = 0
    #: newly journaled as pending.
    enqueued: int = 0
    #: already finished: a results-cache entry existed, journaled done.
    cached: int = 0
    #: already journaled done by an earlier run.
    done: int = 0
    #: already pending/leased (another submitter or a live worker).
    inflight: int = 0
    #: skipped: quarantined dead (resubmit with ``retry_dead`` to force).
    dead: int = 0
    #: re-enqueued despite quarantine (``retry_dead=True``).
    revived: int = 0
    #: cache keys of the grid, in submit order.
    keys: List[str] = dataclasses.field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.total} spec(s): {self.enqueued} enqueued, "
            f"{self.cached + self.done} already done, "
            f"{self.inflight} in flight, {self.dead} dead"
            + (f" ({self.revived} revived)" if self.revived else "")
        )


class WorkBroker:
    """File-based spec queue shared by submitters and workers."""

    def __init__(
        self,
        root: Union[str, Path],
        config: Optional[BrokerConfig] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        durable: bool = True,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.config = self._load_or_init_config(config, durable)
        self.journal = SpecJournal(self.root / "journal", durable=durable)
        self.leases = LeaseManager(
            self.root / "leases", ttl_s=self.config.lease_ttl_s, durable=durable
        )
        cache_dir = Path(cache_dir) if cache_dir is not None else self.root / "cache"
        #: shared, idempotent result store — the exactly-once half of the
        #: fabric's at-least-once execution.
        self.cache = ResultsCache(cache_dir)
        #: farm-wide quarantine, next to the shared cache.
        self.dead_letters = DeadLetterStore(cache_dir)

    def _load_or_init_config(
        self, config: Optional[BrokerConfig], durable: bool
    ) -> BrokerConfig:
        """The persisted policy wins; first toucher writes it."""
        path = self.root / CONFIG_FILENAME
        try:
            payload = json.loads(path.read_text())
            known = {f.name for f in dataclasses.fields(BrokerConfig)}
            return BrokerConfig(
                **{k: v for k, v in payload.items() if k in known}
            )
        except (OSError, ValueError, TypeError):
            pass
        config = config or BrokerConfig()
        atomic_write_text(
            path,
            json.dumps(dataclasses.asdict(config), indent=2, sort_keys=True),
            durable=durable,
        )
        return config

    # -- submit ----------------------------------------------------------------------

    def submit(self, specs: Sequence, retry_dead: bool = False) -> SubmitReport:
        """Enqueue a grid, deduplicated against everything already known.

        ``specs`` are :class:`~repro.experiments.runner.RunSpec`-shaped
        objects (``cache_key()`` + ``to_json_dict()``).  Safe to call
        concurrently from many submitters: the journal's exclusive
        enqueue makes every spec land exactly once, and duplicate keys
        within the grid collapse.
        """
        report = SubmitReport()
        self.dead_letters.refresh()  # see quarantines from other hosts
        records = self.journal.replay()
        seq = len(records)
        seen = set()
        for spec in specs:
            key = spec.cache_key()
            if key in seen:
                continue
            seen.add(key)
            report.total += 1
            report.keys.append(key)
            record = records.get(key) or self.journal.read(key)
            if record is not None:
                if record.state == "done":
                    report.done += 1
                elif record.state == "dead":
                    if retry_dead:
                        self.journal.append(
                            key, "pending", attempts=0, not_before=0.0,
                            error="revived by resubmit (retry_dead)",
                        )
                        report.revived += 1
                        report.enqueued += 1
                    else:
                        report.dead += 1
                else:
                    report.inflight += 1
                continue
            if not retry_dead and key in self.dead_letters:
                # quarantined by a pre-fabric run: honor it without a journal
                report.dead += 1
                continue
            spec_dict = spec.to_json_dict()
            if self.cache.get(key) is not None:
                # already simulated: journal it straight to done so
                # progress counts and drained() see the whole grid
                if self.journal.enqueue(key, spec_dict, seq=seq):
                    self.journal.append(key, "done", worker="<cache>")
                report.cached += 1
            elif self.journal.enqueue(key, spec_dict, seq=seq):
                report.enqueued += 1
            else:
                report.inflight += 1  # lost the enqueue race: someone else did
            seq += 1
        return report

    # -- worker protocol -------------------------------------------------------------

    def claim(self, worker: str) -> Optional[SpecRecord]:
        """Take the lease on one runnable spec and journal ``leased``.

        Scans the queue in submit order.  Expired leases encountered on
        the way are reclaimed (back to ``pending`` with backoff, or
        ``dead`` once out of budget) — every claimer is also the
        janitor, so crashed workers need no supervisor to clean up
        after them.  Returns ``None`` when nothing is runnable right
        now (empty queue, everything leased, or retries parked on
        backoff).
        """
        now = time.time()
        records = sorted(
            (r for r in self.journal.replay().values() if r.live),
            key=lambda r: (r.seq, r.key),
        )
        for record in records:
            if record.state == "leased":
                self._reclaim_if_expired(record, worker, now)
                continue
            if record.not_before > now:
                continue
            if not self.leases.try_claim(record.key, worker):
                continue
            faultpoints.trip("broker.claim.after_lease")
            record.attempts += 1
            record.state = "leased"
            record.worker = worker
            self.journal.append(
                record.key, "leased", attempts=record.attempts, worker=worker
            )
            return record
        return None

    def _reclaim_if_expired(self, record: SpecRecord, worker: str, now: float) -> None:
        """Recover a ``leased`` spec whose worker stopped heartbeating."""
        held = self.leases.holder(record.key)
        if held is not None and now <= held[1]:
            return  # live lease: the owner is still heartbeating
        # lease expired (or its file is gone entirely — e.g. a crash
        # between outcome-append and release on a path that then lost
        # the outcome line to a torn write): steal it so exactly one
        # janitor journals the recovery transition
        if not self.leases.try_claim(record.key, worker):
            return
        faultpoints.trip("broker.claim.after_lease")
        try:
            error = (
                f"lease expired: worker {record.worker or '<unknown>'!r} "
                "stopped heartbeating (crash, SIGKILL, or partition)"
            )
            if record.attempts > self.config.retries:
                self._quarantine(record, error)
            else:
                self.journal.append(
                    record.key,
                    "pending",
                    attempts=record.attempts,
                    not_before=now + self.config.backoff(record.attempts),
                    error=error,
                )
        finally:
            self.leases.release(record.key, worker)

    def complete(self, key: str, worker: str) -> bool:
        """Journal ``done`` and release the lease.

        Idempotent: completing an already-done spec (double-executed after a
        lease was lost and reclaimed) is a no-op — the result itself was
        already deduplicated by the content-keyed cache.
        """
        record = self.journal.read(key)
        if record is None:
            return False
        if record.state != "done":
            faultpoints.trip("broker.complete.before_done")
            self.journal.append(key, "done", worker=worker)
        self.dead_letters.discard(key)
        self.leases.release(key, worker)
        return True

    def fail(self, key: str, worker: str, error: str, diagnosis: str = "") -> bool:
        """Journal a failed attempt: retry with backoff, or quarantine.

        The attempt was charged at claim time, so the budget check is
        simply ``attempts > retries``.  The transition is journaled
        *before* the lease is released — a crash in between leaves an
        orphaned lease that expires harmlessly.
        """
        record = self.journal.read(key)
        if record is None or record.state in ("done", "dead"):
            self.leases.release(key, worker)
            return False
        faultpoints.trip("broker.fail.before_transition")
        if record.attempts > self.config.retries:
            self._quarantine(record, error, diagnosis)
        else:
            self.journal.append(
                key,
                "pending",
                attempts=record.attempts,
                not_before=time.time() + self.config.backoff(record.attempts),
                error=error,
                diagnosis=diagnosis,
            )
        self.leases.release(key, worker)
        return True

    def relinquish(self, key: str, worker: str, reason: str = "worker drained") -> bool:
        """Hand a leased spec back *gracefully* (worker drain, not death).

        Journals the spec straight back to ``pending`` with no backoff
        stamp and the attempt **uncharged** — a deliberately drained
        worker is not a failing spec, so the retry budget is untouched
        and any other worker can claim it immediately instead of
        waiting out the lease TTL.  The journal transition lands before
        the lease release (crash in between = an orphaned lease that
        merely expires).
        """
        record = self.journal.read(key)
        if record is None:
            return False
        if record.state != "leased" or record.worker != worker:
            # completed/reclaimed already: nothing to hand back
            self.leases.release(key, worker)
            return False
        self.journal.append(
            key,
            "pending",
            attempts=max(0, record.attempts - 1),
            not_before=0.0,
            worker="",
            error=reason,
        )
        self.leases.release(key, worker)
        return True

    def expire(self, key: str, reason: str) -> bool:
        """Quarantine a *pending* spec whose request deadline passed.

        Used by the service layer: a spec nobody has started that can no
        longer finish in time goes to ``dead`` (and the dead-letter
        store) instead of burning a worker on a result the client will
        discard.  Leased specs are left alone — their execution is
        already paid for and publishing the result is harmless.
        """
        record = self.journal.read(key)
        if record is None or record.state != "pending":
            return False
        janitor = "<deadline>"
        if not self.leases.try_claim(key, janitor):
            return False  # a worker is claiming it right now: let it run
        try:
            record = self.journal.read(key)
            if record is None or record.state != "pending":
                return False
            self._quarantine(record, reason)
            return True
        finally:
            self.leases.release(key, janitor)

    def _quarantine(
        self, record: SpecRecord, error: str, diagnosis: str = ""
    ) -> None:
        """``dead`` transition + farm-wide dead-letter record."""
        self.journal.append(
            record.key,
            "dead",
            attempts=record.attempts,
            error=error,
            diagnosis=diagnosis,
        )
        self.dead_letters.record(
            record.key, record.spec, record.attempts, error, diagnosis
        )

    def resubmit(self, key: str) -> bool:
        """Force a journaled spec back to ``pending`` (fresh budget).

        Recovery hook for e.g. a ``done`` spec whose cache entry was
        later quarantined as corrupt: the sweep re-runs it instead of
        wedging on a result that no longer exists.
        """
        record = self.journal.read(key)
        if record is None:
            return False
        self.journal.append(
            key, "pending", attempts=0, not_before=0.0, error="resubmitted"
        )
        return True

    # -- progress --------------------------------------------------------------------

    def records(self) -> Dict[str, SpecRecord]:
        """The folded queue state (key -> record)."""
        return self.journal.replay()

    def counts(self, keys: Optional[Iterable[str]] = None) -> Dict[str, int]:
        """``{done, leased, pending, dead, total}``, optionally restricted
        to one submission's ``keys`` (unknown keys count as pending)."""
        records = self.journal.replay()
        tally = {"pending": 0, "leased": 0, "done": 0, "dead": 0, "total": 0}
        if keys is None:
            views: Iterable[Optional[SpecRecord]] = records.values()
        else:
            views = (records.get(key) for key in keys)
        for record in views:
            tally["total"] += 1
            tally[record.state if record is not None else "pending"] += 1
        return tally

    def drained(self, keys: Optional[Iterable[str]] = None) -> bool:
        """No live (pending/leased) work left (in ``keys``, or anywhere)."""
        tally = self.counts(keys)
        return tally["pending"] == 0 and tally["leased"] == 0

    def __repr__(self) -> str:
        tally = self.counts()
        return (
            f"WorkBroker({str(self.root)!r}, "
            + ", ".join(f"{k}={v}" for k, v in sorted(tally.items()))
            + ")"
        )
