"""Crash-safe distributed sweep fabric.

A file-based work broker (no coordinator process) plus a pull-based
worker loop: many processes — on one host or many hosts sharing a
filesystem — drain one sweep of :class:`~repro.experiments.runner.RunSpec`
grid points.  The design is three small, independently testable pieces:

* :mod:`~repro.fabric.journal` — the durable spec queue: one append-only
  JSONL file per spec with fsync'd state transitions
  ``pending → leased → done/dead``.
* :mod:`~repro.fabric.lease` — mutual exclusion: TTL'd lease files
  claimed with atomic exclusive-create and renewed by worker
  heartbeats; an expired lease is stolen with an atomic rename.
* :mod:`~repro.fabric.broker` / :mod:`~repro.fabric.worker` — the
  protocol: claim, heartbeat, complete/fail, reclaim-with-backoff, and
  farm-wide quarantine into the persistent
  :class:`~repro.experiments.deadletter.DeadLetterStore`.

Execution is **at-least-once** (a crashed worker's spec is reclaimed and
re-run) but results are **exactly-once**: workers publish through the
content-addressed :class:`~repro.results_cache.ResultsCache`, whose
atomic same-content writes make a duplicate completion a harmless no-op.

:mod:`~repro.fabric.faultpoints` provides the named crash-injection
hooks the chaos suite uses to kill the protocol at every transition.
"""

from repro.fabric.broker import BrokerConfig, SubmitReport, WorkBroker
from repro.fabric.journal import SpecJournal, SpecRecord
from repro.fabric.lease import LeaseManager
from repro.fabric.worker import Worker

__all__ = [
    "BrokerConfig",
    "LeaseManager",
    "SpecJournal",
    "SpecRecord",
    "SubmitReport",
    "WorkBroker",
    "Worker",
]
