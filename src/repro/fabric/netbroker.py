"""Socket-backed work broker for shared-nothing farms.

A :class:`NetBroker` presents the same surface a
:class:`~repro.fabric.worker.Worker` drives on a file broker — ``claim``
/ ``complete`` / ``fail`` / ``relinquish``, a ``leases`` proxy for
heartbeats, a ``cache`` proxy for idempotent result publication — but
every operation is an RPC to one ``dimmlink-repro serve`` process, the
single owner of the journal/lease directory.  Workers therefore need
**no shared filesystem**: the spec payload travels out over the claim
reply and the result travels back over ``cache_put``.

Failure discipline:

* Each RPC inherits the client's jittered-backoff retry budget; every
  op is idempotent server-side, so ambiguous failures (reply lost, torn
  frame) are simply re-sent.
* The heartbeat path gets a **dedicated connection** (the worker renews
  from a daemon thread while the main thread simulates; one socket must
  never interleave two threads' frames).
* When the endpoint stays dead through the whole retry budget and a
  ``fallback_root`` was configured (the farm *does* share a
  filesystem), the netbroker **degrades permanently to a direct file
  broker** on that directory — mid-sweep, without losing the claim it
  holds, because the socket server was only ever a proxy for the same
  journal/lease state the fallback opens directly.  Without a fallback,
  :class:`~repro.service.client.ServiceUnavailable` surfaces to the
  worker loop.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence, TypeVar

from repro.fabric.broker import BrokerConfig, SubmitReport, WorkBroker
from repro.fabric.journal import SpecRecord
from repro.nmp.results import RunResult
from repro.service.client import ServiceClient, ServiceUnavailable

T = TypeVar("T")


class _NetLeases:
    """Heartbeat proxy: ``renew`` over a dedicated connection."""

    def __init__(self, netbroker: "NetBroker") -> None:
        self._netbroker = netbroker

    def renew(self, key: str, worker: str) -> bool:
        return self._netbroker._invoke(
            lambda client: bool(
                client.call("renew", key=key, worker=worker)["renewed"]
            ),
            lambda broker: broker.leases.renew(key, worker),
            client_attr="_lease_client",
        )


class _NetCache:
    """Result store proxy: content-keyed get/put over the socket."""

    def __init__(self, netbroker: "NetBroker") -> None:
        self._netbroker = netbroker

    def get(self, key: str) -> Optional[RunResult]:
        def decode(client: ServiceClient) -> Optional[RunResult]:
            payload = client.call("cache_get", key=key)["result"]
            if payload is None:
                return None
            return RunResult.from_json_dict(payload)  # type: ignore[arg-type]

        return self._netbroker._invoke(
            decode, lambda broker: broker.cache.get(key)
        )

    def put(
        self,
        key: str,
        result: RunResult,
        spec: Optional[Dict[str, object]] = None,
    ) -> None:
        self._netbroker._invoke(
            lambda client: client.call(
                "cache_put", key=key, result=result.to_json_dict(), spec=spec
            ),
            lambda broker: broker.cache.put(key, result, spec=spec),
        )


class NetBroker:
    """Worker-side broker over ``tcp://host:port``, with degradation."""

    def __init__(
        self,
        address: str,
        fallback_root: Optional[str] = None,
        timeout_s: float = 5.0,
        retries: int = 8,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        self.address = address
        self.fallback_root = fallback_root
        self.client = ServiceClient(
            address, timeout_s=timeout_s, retries=retries,
            backoff_s=backoff_s, backoff_cap_s=backoff_cap_s, seed=seed,
        )
        self._lease_client = ServiceClient(
            address, timeout_s=timeout_s, retries=max(1, retries // 2),
            backoff_s=backoff_s, backoff_cap_s=backoff_cap_s, seed=seed,
        )
        self._fallback: Optional[WorkBroker] = None
        self._fallback_lock = threading.Lock()
        #: did this broker degrade to direct file mode? (observability)
        self.degraded = False
        self.config = self._fetch_config()

    # -- degradation funnel ----------------------------------------------------------

    def _fetch_config(self) -> BrokerConfig:
        """The farm policy, from the server — or the fallback, or defaults."""
        try:
            hello = self.client.hello()
        except ServiceUnavailable:
            broker = self._degrade()
            if broker is not None:
                return broker.config
            return BrokerConfig()  # endpoint may come up later; use defaults
        payload = hello.get("config")
        if isinstance(payload, dict):
            known = {f for f in BrokerConfig.__dataclass_fields__}
            return BrokerConfig(
                **{k: v for k, v in payload.items() if k in known}
            )
        return BrokerConfig()

    def _degrade(self) -> Optional[WorkBroker]:
        """Flip (once) to a direct file broker on the fallback root."""
        if self.fallback_root is None:
            return None
        with self._fallback_lock:
            if self._fallback is None:
                # during __init__ the farm policy is not fetched yet;
                # config=None lets the root's own broker.json win anyway
                self._fallback = WorkBroker(
                    self.fallback_root, config=getattr(self, "config", None)
                )
                self.degraded = True
        return self._fallback

    def _invoke(
        self,
        net_op: Callable[[ServiceClient], T],
        file_op: Callable[[WorkBroker], T],
        client_attr: str = "client",
    ) -> T:
        """Route one operation: socket first, file broker after degrade."""
        broker = self._fallback
        if broker is not None:
            return file_op(broker)
        try:
            return net_op(getattr(self, client_attr))
        except ServiceUnavailable:
            broker = self._degrade()
            if broker is None:
                raise
            return file_op(broker)

    # -- the WorkBroker surface ------------------------------------------------------

    @property
    def cache(self) -> _NetCache:
        broker = self._fallback
        if broker is not None:
            return broker.cache  # type: ignore[return-value]
        return _NetCache(self)

    @property
    def leases(self) -> _NetLeases:
        return _NetLeases(self)

    def submit(self, specs: Sequence, retry_dead: bool = False) -> SubmitReport:
        def decode(client: ServiceClient) -> SubmitReport:
            reply = client.submit(specs, retry_dead=retry_dead)
            payload = dict(reply["report"])  # type: ignore[arg-type]
            return SubmitReport(**payload)

        return self._invoke(
            decode, lambda broker: broker.submit(specs, retry_dead=retry_dead)
        )

    def claim(self, worker: str) -> Optional[SpecRecord]:
        def decode(client: ServiceClient) -> Optional[SpecRecord]:
            payload = client.call("claim", worker=worker)["record"]
            if payload is None:
                return None
            return SpecRecord(**payload)  # type: ignore[arg-type]

        return self._invoke(decode, lambda broker: broker.claim(worker))

    def complete(self, key: str, worker: str) -> bool:
        return self._invoke(
            lambda client: bool(
                client.call("complete", key=key, worker=worker)["completed"]
            ),
            lambda broker: broker.complete(key, worker),
        )

    def fail(self, key: str, worker: str, error: str, diagnosis: str = "") -> bool:
        return self._invoke(
            lambda client: bool(client.call(
                "fail", key=key, worker=worker, error=error,
                diagnosis=diagnosis,
            )["failed"]),
            lambda broker: broker.fail(key, worker, error, diagnosis),
        )

    def relinquish(self, key: str, worker: str, reason: str = "worker drained") -> bool:
        return self._invoke(
            lambda client: bool(client.call(
                "relinquish", key=key, worker=worker, reason=reason,
            )["relinquished"]),
            lambda broker: broker.relinquish(key, worker, reason=reason),
        )

    def counts(self, keys=None) -> Dict[str, int]:
        return self._invoke(
            lambda client: client.counts(keys),
            lambda broker: broker.counts(keys),
        )

    def drained(self, keys=None) -> bool:
        return self._invoke(
            lambda client: client.drained(keys),
            lambda broker: broker.drained(keys),
        )

    def close(self) -> None:
        self.client.close()
        self._lease_client.close()

    def __repr__(self) -> str:
        mode = f"degraded->{self.fallback_root}" if self.degraded else "socket"
        return f"NetBroker({self.address!r}, {mode})"
