"""Durable spec queue: one append-only JSONL journal per spec.

Layout (under the broker's ``journal/`` directory)::

    <cache_key>.jsonl

The first line of each file carries the spec itself; every line carries
the state after one transition (``pending → leased → done/dead``, with
failed attempts looping back through ``pending``).  Writes follow the
crash-safety discipline of :mod:`repro.fsio`:

* **Enqueue** writes the whole initial record to a temp file and links
  it into place atomically (exclusive, no clobber): two submitters
  racing on the same spec produce exactly one journal, and a crash
  mid-enqueue leaves only an ignored temp file.
* **Transitions** are fsync'd appends.  A crash mid-append leaves a
  partial trailing line that fails to parse; replay ignores it, so the
  spec simply remains in its previous state — exactly as if the
  transition never happened.  (The attempt it was recording is then
  redone; results stay exactly-once via the idempotent cache.)

Replay folds each file's lines into one :class:`SpecRecord` — last valid
line wins — so a broker opened on any crashed state sees a consistent
queue with no repair step.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.fabric import faultpoints
from repro.fsio import fsync_dir, read_json_lines

#: states a spec moves through; ``pending`` and ``leased`` are live.
STATES = ("pending", "leased", "done", "dead")


@dataclass
class SpecRecord:
    """The folded current state of one journaled spec."""

    key: str
    spec: Dict[str, object]
    state: str = "pending"
    #: execution attempts started so far (charged when a lease is taken).
    attempts: int = 0
    #: epoch seconds before which a pending retry must not be claimed.
    not_before: float = 0.0
    #: worker id of the current/last lease holder.
    worker: str = ""
    error: str = ""
    diagnosis: str = ""
    #: submit-order hint; claims scan in (seq, key) order.
    seq: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def live(self) -> bool:
        return self.state in ("pending", "leased")


class SpecJournal:
    """Reads and writes the per-spec journal files."""

    def __init__(self, directory: Union[str, Path], durable: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.durable = durable

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.jsonl"

    # -- writes ----------------------------------------------------------------------

    def enqueue(self, key: str, spec: Dict[str, object], seq: int = 0) -> bool:
        """Create the journal for ``key`` in state ``pending``.

        Atomic and exclusive: returns ``False`` (no write) when a journal
        for ``key`` already exists — concurrent submitters enqueue each
        spec exactly once, and an existing journal's transition history
        is never clobbered.
        """
        path = self.path_for(key)
        if path.exists():
            return False
        line = self._line(
            key, state="pending", spec=spec, attempts=0, not_before=0.0, seq=seq
        )
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            faultpoints.trip("journal.enqueue.before_link")
            try:
                os.link(tmp_name, path)  # atomic no-clobber publish
            except FileExistsError:
                return False
            faultpoints.trip("journal.enqueue.after_link")
            if self.durable:
                fsync_dir(self.directory)
            return True
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def append(self, key: str, state: str, **fields: object) -> None:
        """Durably append one state transition to ``key``'s journal."""
        if state not in STATES:
            raise ValueError(f"unknown journal state {state!r}")
        line = self._line(key, state=state, **fields)
        path = self.path_for(key)
        # heal a torn tail: if the last append died mid-line, start this
        # one on a fresh line so the torn fragment stays isolated (and
        # ignored by replay) instead of corrupting this transition too
        torn_tail = False
        try:
            with open(path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                torn_tail = tail.read(1) != b"\n"
        except OSError:
            pass  # missing or empty journal: nothing to heal
        with open(path, "a", encoding="utf-8") as handle:
            if torn_tail:
                handle.write("\n")
            if faultpoints.armed("journal.append.partial"):
                # simulate a torn write: half the line reaches the disk
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                faultpoints.trip("journal.append.partial")
            faultpoints.trip("journal.append.before_write")
            handle.write(line + "\n")
            handle.flush()
            faultpoints.trip("journal.append.before_fsync")
            if self.durable:
                os.fsync(handle.fileno())
        faultpoints.trip("journal.append.after_fsync")

    @staticmethod
    def _line(key: str, **fields: object) -> str:
        return json.dumps({"key": key, **fields}, sort_keys=True)

    # -- replay ----------------------------------------------------------------------

    def read(self, key: str) -> Optional[SpecRecord]:
        """Fold one journal into its current record (``None`` if absent
        or wholly unreadable)."""
        return self._fold(key, self.path_for(key))

    def replay(self) -> Dict[str, SpecRecord]:
        """Fold every journal in the directory; the broker's queue view."""
        records: Dict[str, SpecRecord] = {}
        for path in sorted(self.directory.glob("*.jsonl")):
            key = path.stem
            record = self._fold(key, path)
            if record is not None:
                records[key] = record
        return records

    def _fold(self, key: str, path: Path) -> Optional[SpecRecord]:
        record: Optional[SpecRecord] = None
        for line in read_json_lines(path):
            if line.get("key") != key:
                continue  # cross-contaminated or hand-edited line
            if record is None:
                spec = line.get("spec")
                if not isinstance(spec, dict):
                    continue  # the spec rides on the first valid line
                record = SpecRecord(key=key, spec=spec, seq=int(line.get("seq", 0)))
            self._apply(record, line)
        return record

    @staticmethod
    def _apply(record: SpecRecord, line: Dict[str, object]) -> None:
        state = line.get("state")
        if state not in STATES:
            return
        record.state = state
        if "attempts" in line:
            record.attempts = int(line["attempts"])  # type: ignore[arg-type]
        if "not_before" in line:
            record.not_before = float(line["not_before"])  # type: ignore[arg-type]
        record.worker = str(line.get("worker", record.worker))
        record.error = str(line.get("error", record.error))
        record.diagnosis = str(line.get("diagnosis", record.diagnosis))

    def __iter__(self) -> Iterator[SpecRecord]:
        return iter(self.replay().values())

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.jsonl"))
