"""TTL'd lease files: who may execute a spec, and for how long.

One lease file per claimed spec (under the broker's ``leases/``
directory) holds the worker id and an expiry timestamp.  The protocol
is built from two filesystem atomics that work on any shared POSIX
filesystem — no locks, no sockets, no coordinator:

* **Claim** = exclusive create (:func:`repro.fsio.create_exclusive_text`).
  Two workers racing on the same spec get exactly one winner.
* **Steal** (reclaiming an *expired* lease) = exclusive create of a
  steal-lock file, an expiry re-check under the lock, then atomic
  rename of the stale file to a per-worker name.  The lock serializes
  thieves so a slow one can never rename away a lease that was already
  stolen and *re-claimed live* by a faster racer; the winner then
  re-claims via exclusive create.  A lock orphaned by a dead thief goes
  stale after one TTL and is swept by the next.

**Heartbeats** renew the lease by atomically replacing the file with a
later expiry.  A worker that dies (crash, SIGKILL, partition) simply
stops renewing; after the TTL its lease is stealable and the spec is
retried elsewhere.  Renewal can *lose*: if the lease expired and was
stolen, :meth:`LeaseManager.renew` returns ``False`` and the original
worker knows it no longer owns the spec.  Duplicate execution in that
window is safe — results publish idempotently through the content-keyed
cache.

Clock caveat: expiry compares the *reader's* clock against a timestamp
written by the *holder*, so multi-host farms need clocks synchronized to
well under the TTL (tens of seconds by default; NTP is plenty).  A lease
file too new/torn to parse falls back to its mtime + TTL.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.fabric import faultpoints
from repro.fsio import atomic_write_text, create_exclusive_text

#: default seconds a lease lives between heartbeats.
DEFAULT_TTL_S = 30.0


class LeaseManager:
    """Claims, renews, steals, and releases per-spec lease files."""

    def __init__(
        self,
        directory: Union[str, Path],
        ttl_s: float = DEFAULT_TTL_S,
        durable: bool = True,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl_s}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.ttl_s = ttl_s
        self.durable = durable

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.lease"

    def _payload(
        self, key: str, worker: str, now: float, ttl_s: Optional[float] = None
    ) -> str:
        return json.dumps(
            {
                "key": key,
                "worker": worker,
                "acquired_at": now,
                "expires_at": now + (ttl_s if ttl_s is not None else self.ttl_s),
            },
            sort_keys=True,
        )

    # -- inspection ------------------------------------------------------------------

    def holder(self, key: str) -> Optional[Tuple[str, float]]:
        """``(worker, expires_at)`` of the current lease, or ``None``.

        A lease file that exists but cannot be parsed (torn create, or a
        writer that died between create and write) is attributed to an
        unknown holder expiring at ``mtime + ttl`` — it becomes stealable
        one TTL after it appeared, like any other abandoned lease.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            return str(payload["worker"]), float(payload["expires_at"])
        except OSError:
            return None
        except (ValueError, KeyError, TypeError):
            try:
                return "<unreadable>", path.stat().st_mtime + self.ttl_s
            except OSError:
                return None  # vanished between read and stat

    def expired(self, key: str, now: Optional[float] = None) -> bool:
        """Is there a lease on ``key`` whose TTL has lapsed?"""
        held = self.holder(key)
        if held is None:
            return False
        return (now if now is not None else time.time()) > held[1]

    # -- the protocol ----------------------------------------------------------------

    def try_claim(self, key: str, worker: str) -> bool:
        """Claim ``key`` for ``worker``; ``False`` if someone holds it.

        An expired lease is stolen first (serialized through a steal
        lock — one thief at a time), then re-claimed with exclusive
        create.  Losing any race returns ``False``; the caller just
        moves on to other work.
        """
        path = self.path_for(key)
        now = time.time()
        if path.exists():
            held = self.holder(key)
            if held is None:
                pass  # vanished: fall through to the exclusive create
            elif now <= held[1]:
                return False  # live lease
            elif not self._steal(path, key, worker, now):
                return False
        claimed = create_exclusive_text(
            path, self._payload(key, worker, now), durable=self.durable
        )
        if claimed:
            faultpoints.trip("lease.claim.after_create")
        return claimed

    def _steal(self, path: Path, key: str, worker: str, now: float) -> bool:
        """Remove one expired lease; ``True`` if ``worker`` may re-claim.

        The rename that removes the stale file is *not* conditional on
        its content, so it must never race another thief's whole
        steal-and-reclaim cycle: a slow thief that observed the expired
        lease, lost the race, and renamed afterwards would yank the new
        winner's **live** lease.  An exclusive-create lock file
        serializes thieves, and the expiry check is repeated under the
        lock — whatever is at ``path`` by then cannot be replaced by a
        live lease before the rename (creates are excluded while the
        file exists, renames by the lock).  A thief that dies holding
        the lock leaves it behind; like any lease it goes stale after
        one TTL and is swept by the next thief, so the key cannot wedge.
        """
        lock = path.with_name(path.name + ".steal")
        if not create_exclusive_text(lock, worker, durable=False):
            try:
                if now - lock.stat().st_mtime > self.ttl_s:
                    os.unlink(lock)  # orphaned by a dead thief: sweep
            except OSError:
                pass
            return False  # another thief is mid-steal; back off
        held = self.holder(key)
        if held is None or now <= held[1]:
            # stolen-and-reclaimed while we waited: nothing to steal
            # (vanished means the exclusive create may still be tried)
            self._drop(lock)
            return held is None
        stale = path.with_name(path.name + f".stale-{worker}")
        try:
            os.rename(path, stale)
        except OSError:
            self._drop(lock)
            return False  # released under us (ENOENT): let claim retry
        faultpoints.trip("lease.steal.after_rename")
        try:
            os.unlink(stale)
        except OSError:
            pass
        self._drop(lock)
        return True

    @staticmethod
    def _drop(lock: Path) -> None:
        """Best-effort lock removal (a TTL sweep may have beaten us)."""
        try:
            os.unlink(lock)
        except OSError:
            pass

    def renew(
        self, key: str, worker: str, ttl_s: Optional[float] = None
    ) -> bool:
        """Heartbeat: push the expiry out by one TTL.

        Returns ``False`` — without touching the file — when ``worker``
        no longer holds the lease (it expired and was stolen, or was
        released); the worker's result is then published anyway and
        deduplicated by the idempotent cache.

        ``ttl_s`` overrides the manager's TTL for this renewal only —
        the service layer uses it to *shorten* a lease so it never
        outlives a client's per-request deadline.

        Raises ``OSError`` when the renewal write itself fails (ENOSPC,
        EACCES, a yanked mount): the caller must treat that as lease
        loss in progress, not silently assume the heartbeat landed.
        """
        held = self.holder(key)
        if held is None or held[0] != worker:
            return False
        faultpoints.trip("lease.renew.before_write")
        atomic_write_text(
            self.path_for(key),
            self._payload(key, worker, time.time(), ttl_s=ttl_s),
            durable=self.durable,
        )
        return True

    def release(self, key: str, worker: str) -> bool:
        """Drop ``worker``'s lease on ``key`` (after done/dead/failed)."""
        held = self.holder(key)
        if held is None or held[0] != worker:
            return False
        faultpoints.trip("lease.release.before_unlink")
        try:
            os.unlink(self.path_for(key))
        except OSError:
            return False
        return True

    def live_count(self, now: Optional[float] = None) -> int:
        """Number of unexpired leases (farm-activity signal)."""
        now = now if now is not None else time.time()
        count = 0
        for path in self.directory.glob("*.lease"):
            held = self.holder(path.name[: -len(".lease")])
            if held is not None and now <= held[1]:
                count += 1
        return count
