"""Pull-based worker loop: claim, heartbeat, execute, publish.

A :class:`Worker` drains a :class:`~repro.fabric.broker.WorkBroker` one
spec at a time:

1. **Claim** a runnable spec (the broker takes the lease and charges the
   attempt).
2. **Idempotency check** — if the shared cache already holds the result
   (another worker double-executed it, or a pre-fabric run produced it),
   journal ``done`` immediately and move on.
3. **Heartbeat** — a daemon thread renews the lease every TTL/3 while
   the simulation runs, so a *slow* spec is not mistaken for a *dead*
   worker.  If renewal reports the lease lost (this process was presumed
   dead and the spec reclaimed), the worker finishes anyway and
   publishes — the cache and the broker's idempotent ``complete`` make
   the duplicate harmless.
4. **Execute** under the same supervision as the in-process runner
   (:func:`~repro.experiments.runner.supervised_call`: engine stall
   watchdog + SIGALRM backstop when a spec timeout is set).
5. **Publish** the result to the cache *before* journaling ``done`` —
   at every crash point the journal claims no more than the cache can
   prove.

Failures journal back through the broker (retry with backoff, then
farm-wide quarantine).  A worker that dies mid-spec needs no cleanup:
its lease expires and any claimer reclaims the spec.
"""

from __future__ import annotations

import os
import socket
import threading
import uuid
from typing import Callable, Optional

from repro.experiments.runner import (
    RunSpec,
    _diagnose,
    execute_spec,
    supervised_call,
)
from repro.fabric import faultpoints
from repro.fabric.broker import WorkBroker
from repro.fabric.journal import SpecRecord
from repro.nmp.results import RunResult


def default_worker_id() -> str:
    """Unique per process: ``host-pid-suffix`` (suffix for same-process
    workers in tests)."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class Worker:
    """Executes broker specs until told to stop or the queue drains."""

    def __init__(
        self,
        broker: WorkBroker,
        worker_id: Optional[str] = None,
        execute: Callable[[RunSpec], RunResult] = execute_spec,
        spec_timeout: Optional[float] = None,
        poll_interval_s: float = 0.25,
        heartbeat_interval_s: Optional[float] = None,
    ) -> None:
        self.broker = broker
        self.worker_id = worker_id or default_worker_id()
        self.execute = execute
        self.spec_timeout = spec_timeout
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s or max(
            0.05, broker.config.lease_ttl_s / 3.0
        )
        #: specs this worker claimed / finished / failed / served from cache.
        self.claimed = 0
        self.completed = 0
        self.failed = 0
        self.cache_served = 0
        #: heartbeats that found the lease stolen (we were presumed dead)
        #: or could no longer be written (ENOSPC/EACCES/dead mount).
        self.leases_lost = 0
        #: renew attempts that raised (surfaced, not swallowed).
        self.heartbeat_errors = 0
        #: key of the spec currently being executed (graceful-drain hook).
        self.current_key: Optional[str] = None
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None

    def stop(self) -> None:
        """Ask a running loop to exit after the current spec."""
        self._stop.set()

    def relinquish_current(self, reason: str = "worker drained") -> bool:
        """Hand the in-flight claim back to the queue (graceful drain).

        Called after an interrupt (SIGTERM/SIGINT) cut execution short:
        the spec goes straight back to ``pending`` with its attempt
        uncharged, so another worker claims it immediately instead of
        waiting out this worker's lease TTL.  No-op when nothing is
        claimed or the claim already reached an outcome.
        """
        key, self.current_key = self.current_key, None
        if key is None:
            return False
        return self.broker.relinquish(key, self.worker_id, reason=reason)

    # -- the loop --------------------------------------------------------------------

    def step(self) -> bool:
        """Claim and execute at most one spec; ``False`` if none runnable."""
        record = self.broker.claim(self.worker_id)
        if record is None:
            return False
        self.claimed += 1
        self._execute_claimed(record)
        return True

    def run(self, drain: bool = True) -> int:
        """Work until the queue drains (``drain=True``) or forever
        (``drain=False``, until :meth:`stop`).  Returns specs executed.

        With ``drain`` the loop keeps polling while anything is still
        *leased* elsewhere: if that worker dies, this one reclaims the
        spec after its lease TTL instead of exiting early.
        """
        executed = 0
        while not self._stop.is_set():
            if self.step():
                executed += 1
                continue
            if drain and self.broker.drained():
                break
            self._stop.wait(self.poll_interval_s)
        return executed

    # -- one spec --------------------------------------------------------------------

    #: consecutive failed renew *writes* tolerated before the heartbeat
    #: declares the lease lost (transient FS hiccups retry; a dead disk
    #: or revoked permission does not heal in three beats).
    HEARTBEAT_ERROR_BUDGET = 3

    def _execute_claimed(self, record: SpecRecord) -> None:
        key = record.key
        self.current_key = key
        if self.broker.cache.get(key) is not None:
            # exactly-once shortcut: someone already published this result
            self.broker.complete(key, self.worker_id)
            self.cache_served += 1
            self.current_key = None
            return
        heartbeat = self._start_heartbeat(key)
        try:
            spec = RunSpec(**record.spec)  # type: ignore[arg-type]
            result = supervised_call(self.execute, spec, self.spec_timeout)
        except Exception as exc:
            self.failed += 1
            self.broker.fail(
                key,
                self.worker_id,
                f"{type(exc).__name__}: {exc}",
                _diagnose(exc),
            )
            self.current_key = None
        else:
            self.broker.cache.put(key, result, spec=record.spec)
            faultpoints.trip("worker.publish.after_cache_put")
            self.broker.complete(key, self.worker_id)
            self.completed += 1
            self.current_key = None
        finally:
            heartbeat.set()
            self._join_heartbeat()

    def _start_heartbeat(self, key: str) -> threading.Event:
        """Renew the lease on ``key`` until the returned event is set.

        The beat thread never dies silently: a renew that reports the
        lease stolen, raises persistently (ENOSPC/EACCES/dead mount), or
        raises anything unexpected is surfaced as a lease loss
        (``leases_lost``/``heartbeat_errors``) before the thread exits.
        Execution continues either way — publishing a duplicate result
        is a no-op through the idempotent cache.
        """
        done = threading.Event()

        def beat() -> None:
            consecutive_errors = 0
            while not done.wait(self.heartbeat_interval_s):
                try:
                    if not self.broker.leases.renew(key, self.worker_id):
                        # reclaimed: we were presumed dead.  Keep going —
                        # publishing a duplicate result is a no-op.
                        self.leases_lost += 1
                        return
                except OSError:
                    # transient FS hiccup: retry next beat — but a write
                    # path that stays broken IS lease loss in progress
                    self.heartbeat_errors += 1
                    consecutive_errors += 1
                    if consecutive_errors >= self.HEARTBEAT_ERROR_BUDGET:
                        self.leases_lost += 1
                        return
                    continue
                except Exception:
                    # renew blew up in an unforeseen way: surface it as
                    # lease loss instead of dying silently in a daemon
                    self.heartbeat_errors += 1
                    self.leases_lost += 1
                    return
                consecutive_errors = 0

        self._heartbeat_thread = threading.Thread(
            target=beat, name=f"lease-heartbeat-{key[:8]}", daemon=True
        )
        self._heartbeat_thread.start()
        return done

    def _join_heartbeat(self, timeout_s: Optional[float] = None) -> None:
        """Wait (bounded) for the beat thread so it never outlives its
        spec and renews a lease the worker no longer wants."""
        thread, self._heartbeat_thread = self._heartbeat_thread, None
        if thread is None:
            return
        thread.join(timeout_s if timeout_s is not None else
                    max(1.0, 2 * self.heartbeat_interval_s))

    def __repr__(self) -> str:
        return (
            f"Worker({self.worker_id!r}, claimed={self.claimed}, "
            f"completed={self.completed}, failed={self.failed}, "
            f"cache_served={self.cache_served}, lost={self.leases_lost})"
        )
