"""Pull-based worker loop: claim, heartbeat, execute, publish.

A :class:`Worker` drains a :class:`~repro.fabric.broker.WorkBroker` one
spec at a time:

1. **Claim** a runnable spec (the broker takes the lease and charges the
   attempt).
2. **Idempotency check** — if the shared cache already holds the result
   (another worker double-executed it, or a pre-fabric run produced it),
   journal ``done`` immediately and move on.
3. **Heartbeat** — a daemon thread renews the lease every TTL/3 while
   the simulation runs, so a *slow* spec is not mistaken for a *dead*
   worker.  If renewal reports the lease lost (this process was presumed
   dead and the spec reclaimed), the worker finishes anyway and
   publishes — the cache and the broker's idempotent ``complete`` make
   the duplicate harmless.
4. **Execute** under the same supervision as the in-process runner
   (:func:`~repro.experiments.runner.supervised_call`: engine stall
   watchdog + SIGALRM backstop when a spec timeout is set).
5. **Publish** the result to the cache *before* journaling ``done`` —
   at every crash point the journal claims no more than the cache can
   prove.

Failures journal back through the broker (retry with backoff, then
farm-wide quarantine).  A worker that dies mid-spec needs no cleanup:
its lease expires and any claimer reclaims the spec.
"""

from __future__ import annotations

import os
import socket
import threading
import uuid
from typing import Callable, Optional

from repro.experiments.runner import (
    RunSpec,
    _diagnose,
    execute_spec,
    supervised_call,
)
from repro.fabric import faultpoints
from repro.fabric.broker import WorkBroker
from repro.fabric.journal import SpecRecord
from repro.nmp.results import RunResult


def default_worker_id() -> str:
    """Unique per process: ``host-pid-suffix`` (suffix for same-process
    workers in tests)."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class Worker:
    """Executes broker specs until told to stop or the queue drains."""

    def __init__(
        self,
        broker: WorkBroker,
        worker_id: Optional[str] = None,
        execute: Callable[[RunSpec], RunResult] = execute_spec,
        spec_timeout: Optional[float] = None,
        poll_interval_s: float = 0.25,
        heartbeat_interval_s: Optional[float] = None,
    ) -> None:
        self.broker = broker
        self.worker_id = worker_id or default_worker_id()
        self.execute = execute
        self.spec_timeout = spec_timeout
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s or max(
            0.05, broker.config.lease_ttl_s / 3.0
        )
        #: specs this worker claimed / finished / failed / served from cache.
        self.claimed = 0
        self.completed = 0
        self.failed = 0
        self.cache_served = 0
        #: heartbeats that found the lease stolen (we were presumed dead).
        self.leases_lost = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask a running loop to exit after the current spec."""
        self._stop.set()

    # -- the loop --------------------------------------------------------------------

    def step(self) -> bool:
        """Claim and execute at most one spec; ``False`` if none runnable."""
        record = self.broker.claim(self.worker_id)
        if record is None:
            return False
        self.claimed += 1
        self._execute_claimed(record)
        return True

    def run(self, drain: bool = True) -> int:
        """Work until the queue drains (``drain=True``) or forever
        (``drain=False``, until :meth:`stop`).  Returns specs executed.

        With ``drain`` the loop keeps polling while anything is still
        *leased* elsewhere: if that worker dies, this one reclaims the
        spec after its lease TTL instead of exiting early.
        """
        executed = 0
        while not self._stop.is_set():
            if self.step():
                executed += 1
                continue
            if drain and self.broker.drained():
                break
            self._stop.wait(self.poll_interval_s)
        return executed

    # -- one spec --------------------------------------------------------------------

    def _execute_claimed(self, record: SpecRecord) -> None:
        key = record.key
        if self.broker.cache.get(key) is not None:
            # exactly-once shortcut: someone already published this result
            self.broker.complete(key, self.worker_id)
            self.cache_served += 1
            return
        heartbeat = self._start_heartbeat(key)
        try:
            spec = RunSpec(**record.spec)  # type: ignore[arg-type]
            result = supervised_call(self.execute, spec, self.spec_timeout)
        except Exception as exc:
            self.failed += 1
            self.broker.fail(
                key,
                self.worker_id,
                f"{type(exc).__name__}: {exc}",
                _diagnose(exc),
            )
        else:
            self.broker.cache.put(key, result, spec=record.spec)
            faultpoints.trip("worker.publish.after_cache_put")
            self.broker.complete(key, self.worker_id)
            self.completed += 1
        finally:
            heartbeat.set()

    def _start_heartbeat(self, key: str) -> threading.Event:
        """Renew the lease on ``key`` until the returned event is set."""
        done = threading.Event()

        def beat() -> None:
            while not done.wait(self.heartbeat_interval_s):
                try:
                    if not self.broker.leases.renew(key, self.worker_id):
                        # reclaimed: we were presumed dead.  Keep going —
                        # publishing a duplicate result is a no-op.
                        self.leases_lost += 1
                        return
                except OSError:
                    continue  # transient FS hiccup: retry next beat

        thread = threading.Thread(
            target=beat, name=f"lease-heartbeat-{key[:8]}", daemon=True
        )
        thread.start()
        return done

    def __repr__(self) -> str:
        return (
            f"Worker({self.worker_id!r}, claimed={self.claimed}, "
            f"completed={self.completed}, failed={self.failed}, "
            f"cache_served={self.cache_served}, lost={self.leases_lost})"
        )
