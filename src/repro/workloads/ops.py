"""Thread operations: the instruction set workloads are written in.

A workload thread is a generator yielding these ops.  The same op stream
drives an NMP core (where ``dimm`` determines local vs. remote access) and
a host-CPU baseline core (where every access crosses a memory channel), so
one workload implementation serves every system in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Compute:
    """Execute ``cycles`` core clock cycles of computation."""

    cycles: int


@dataclass(frozen=True)
class Read:
    """Read ``nbytes`` at ``offset`` within DIMM ``dimm``'s address space.

    ``dimm`` is the *static* home (the loader's block shard).  When
    ``page`` is set and the executing system carries a page table, the
    access is resolved through the table instead — the page's current
    owner may differ from ``dimm`` after migration.  With ``page`` unset
    (or no page table installed) the access goes to ``dimm`` exactly as
    before the placement refactor.
    """

    dimm: int
    offset: int
    nbytes: int
    page: Optional[int] = None


@dataclass(frozen=True)
class Write:
    """Write ``nbytes`` at ``offset`` within DIMM ``dimm``'s address space.

    ``page`` has the same semantics as on :class:`Read`.
    """

    dimm: int
    offset: int
    nbytes: int
    page: Optional[int] = None


@dataclass(frozen=True)
class Broadcast:
    """Broadcast ``nbytes`` from the thread's home DIMM to all DIMMs.

    Requires an explicit API call in DIMM-Link programs (Sec. III-B); the
    baseline mechanisms emulate it with whatever their hardware offers.
    """

    offset: int
    nbytes: int


@dataclass(frozen=True)
class Barrier:
    """Global synchronization across all threads of the kernel."""


@dataclass(frozen=True)
class Flush:
    """Drain this thread's outstanding memory requests (local fence)."""


@dataclass(frozen=True)
class Stamp:
    """Drain outstanding requests, then record the interval since the
    thread started (or since its previous ``Stamp``) into the histogram
    named ``key`` on the core's stat scope.

    Serving-style workloads use this to expose per-batch latency
    distributions (e.g. ``dlrm.batch_ps``) that experiments aggregate
    into p50/p99 metrics — without per-workload executor subclasses.
    """

    key: str


#: Union of every op type (for isinstance checks and docs).
Op = (Compute, Read, Write, Broadcast, Barrier, Flush, Stamp)
