"""PageRank (pull-based iterations, Table IV) and its broadcast variant.

Per iteration every thread streams its block's CSR slice locally, gathers
the ranks of its neighbors from their owning DIMMs, writes its block's new
ranks locally, and synchronises.  ``PageRankBC`` is the ABC-DIMM-style
broadcast formulation used in Fig. 12: instead of fine-grained gathers,
each thread broadcasts its rank block to all DIMMs once per iteration and
then computes entirely locally.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.workloads.base import ThreadFactory
from repro.workloads.batching import OffsetCursor, batched_reads, batched_writes
from repro.workloads.graphkernels import EDGE_BYTES, STATE_BYTES, GraphKernel
from repro.workloads.ops import Barrier, Broadcast, Compute

#: core cycles per edge relaxed / per vertex updated.
CYCLES_PER_EDGE = 2
CYCLES_PER_VERTEX = 6


class PageRank(GraphKernel):
    """Pull-based PageRank iterations."""

    name = "pagerank"

    def __init__(self, iterations: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        self.iterations = iterations

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        layout = self._layout(num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            block_vertices = int(layout["block_vertices"][thread_id])
            block_edges = int(layout["block_edges"][thread_id])
            edges_to_dimm = layout["edges_to_dimm"][thread_id]
            home = int(layout["dimm_of_block"][thread_id])

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    pager = self.pager_for(thread_id)
                    for _iteration in range(self.iterations):
                        if pager is not None:
                            pager.rewind()
                        yield Compute(
                            CYCLES_PER_EDGE * block_edges
                            + CYCLES_PER_VERTEX * block_vertices
                        )
                        # stream the CSR slice from the home DIMM
                        yield from batched_reads(
                            {home: block_edges * EDGE_BYTES},
                            cursor,
                            chunk=4096,
                            pager=pager,
                        )
                        # gather neighbor ranks from their owners
                        yield from batched_reads(
                            self.spread_bytes(edges_to_dimm), cursor, pager=pager
                        )
                        # write the block's new ranks
                        yield from batched_writes(
                            {home: block_vertices * STATE_BYTES}, cursor, pager=pager
                        )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]


class PageRankBC(GraphKernel):
    """Broadcast-formulated PageRank (Fig. 12)."""

    name = "pagerank_bc"

    def __init__(self, iterations: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        self.iterations = iterations

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        layout = self._layout(num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            block_vertices = int(layout["block_vertices"][thread_id])
            block_edges = int(layout["block_edges"][thread_id])
            home = int(layout["dimm_of_block"][thread_id])

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    pager = self.pager_for(thread_id)
                    for _iteration in range(self.iterations):
                        if pager is not None:
                            pager.rewind()
                        # publish this block's ranks to every DIMM
                        yield Broadcast(
                            offset=cursor.take(block_vertices * STATE_BYTES),
                            nbytes=block_vertices * STATE_BYTES,
                        )
                        yield Barrier()
                        # all neighbor ranks are now local: stream and relax
                        yield from batched_reads(
                            {
                                home: block_edges * (EDGE_BYTES + STATE_BYTES)
                            },
                            cursor,
                            chunk=4096,
                            pager=pager,
                        )
                        yield Compute(
                            CYCLES_PER_EDGE * block_edges
                            + CYCLES_PER_VERTEX * block_vertices
                        )
                        yield from batched_writes(
                            {home: block_vertices * STATE_BYTES}, cursor, pager=pager
                        )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
