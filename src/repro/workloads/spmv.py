"""Sparse matrix-vector multiplication (broadcast-dominant, Fig. 12).

``y = A x`` with the sparse matrix row-blocked across threads (the graph's
adjacency serves as A).  The broadcast formulation follows ABC-DIMM: each
iteration the x-vector's blocks are broadcast to every DIMM, after which
the multiply is fully local.  The P2P formulation gathers x entries from
their owners instead.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.workloads.base import ThreadFactory
from repro.workloads.batching import OffsetCursor, batched_reads, batched_writes
from repro.workloads.graphkernels import EDGE_BYTES, STATE_BYTES, GraphKernel
from repro.workloads.ops import Barrier, Broadcast, Compute

CYCLES_PER_NONZERO = 2
CYCLES_PER_ROW = 8


class SpMV(GraphKernel):
    """Gather-based SpMV iterations."""

    name = "spmv"

    def __init__(self, iterations: int = 4, **kwargs) -> None:
        super().__init__(**kwargs)
        self.iterations = iterations

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        layout = self._layout(num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            rows = int(layout["block_vertices"][thread_id])
            nonzeros = int(layout["block_edges"][thread_id])
            edges_to_dimm = layout["edges_to_dimm"][thread_id]
            home = int(layout["dimm_of_block"][thread_id])

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    pager = self.pager_for(thread_id)
                    for _iteration in range(self.iterations):
                        if pager is not None:
                            pager.rewind()
                        yield from batched_reads(
                            {home: nonzeros * EDGE_BYTES},
                            cursor,
                            chunk=4096,
                            pager=pager,
                        )
                        yield from batched_reads(
                            self.spread_bytes(edges_to_dimm), cursor, pager=pager
                        )
                        yield Compute(
                            CYCLES_PER_NONZERO * nonzeros + CYCLES_PER_ROW * rows
                        )
                        yield from batched_writes(
                            {home: rows * STATE_BYTES}, cursor, pager=pager
                        )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]


class SpMVBC(GraphKernel):
    """Broadcast-formulated SpMV (Fig. 12)."""

    name = "spmv_bc"

    def __init__(self, iterations: int = 4, **kwargs) -> None:
        super().__init__(**kwargs)
        self.iterations = iterations

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        layout = self._layout(num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            rows = int(layout["block_vertices"][thread_id])
            nonzeros = int(layout["block_edges"][thread_id])
            home = int(layout["dimm_of_block"][thread_id])

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    pager = self.pager_for(thread_id)
                    for _iteration in range(self.iterations):
                        if pager is not None:
                            pager.rewind()
                        # publish this block of x to every DIMM
                        yield Broadcast(
                            offset=cursor.take(rows * STATE_BYTES),
                            nbytes=rows * STATE_BYTES,
                        )
                        yield Barrier()
                        yield from batched_reads(
                            {home: nonzeros * (EDGE_BYTES + STATE_BYTES)},
                            cursor,
                            chunk=4096,
                            pager=pager,
                        )
                        yield Compute(
                            CYCLES_PER_NONZERO * nonzeros + CYCLES_PER_ROW * rows
                        )
                        yield from batched_writes(
                            {home: rows * STATE_BYTES}, cursor, pager=pager
                        )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
