"""Helpers for emitting batched memory traffic.

Application kernels touch fine-grained data (8-byte ranks, distances,
cells), but NMP runtimes coalesce accesses to the same remote DIMM into
packet-sized batches.  These helpers turn per-DIMM byte counts into
interleaved chunked Read/Write ops, keeping event counts tractable while
preserving the per-DIMM traffic volumes that determine IDC behaviour.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.workloads.ops import Read, Write

#: default coalescing granularity for remote batches (DL packet-friendly).
DEFAULT_CHUNK = 4096
#: address stride between successive batches of one thread (spreads rows).
OFFSET_STRIDE = 1 << 14


class OffsetCursor:
    """Deterministic rolling offsets so traffic spreads over DRAM rows."""

    def __init__(self, thread_id: int) -> None:
        self._next = (thread_id * 2654435761) % (1 << 28)

    def take(self, nbytes: int) -> int:
        """Return an offset for a batch of ``nbytes`` and advance."""
        offset = self._next
        self._next = (self._next + max(nbytes, 64) + OFFSET_STRIDE) % (1 << 30)
        return offset - offset % 64


def chunked(
    per_dimm_bytes: Dict[int, int], chunk: int = DEFAULT_CHUNK
) -> List[Tuple[int, int]]:
    """Split per-DIMM byte counts into (dimm, chunk_bytes) pieces,
    round-robin across DIMMs so transfers to different DIMMs overlap."""
    queues = {d: n for d, n in per_dimm_bytes.items() if n > 0}
    pieces: List[Tuple[int, int]] = []
    while queues:
        for dimm in sorted(queues):
            take = min(chunk, queues[dimm])
            pieces.append((dimm, take))
            queues[dimm] -= take
            if queues[dimm] <= 0:
                del queues[dimm]
    return pieces


def batched_reads(
    per_dimm_bytes: Dict[int, int],
    cursor: OffsetCursor,
    chunk: int = DEFAULT_CHUNK,
) -> Iterator[Read]:
    """Yield chunked Read ops covering the per-DIMM byte counts."""
    for dimm, nbytes in chunked(per_dimm_bytes, chunk):
        yield Read(dimm=dimm, offset=cursor.take(nbytes), nbytes=nbytes)


def batched_writes(
    per_dimm_bytes: Dict[int, int],
    cursor: OffsetCursor,
    chunk: int = DEFAULT_CHUNK,
) -> Iterator[Write]:
    """Yield chunked Write ops covering the per-DIMM byte counts."""
    for dimm, nbytes in chunked(per_dimm_bytes, chunk):
        yield Write(dimm=dimm, offset=cursor.take(nbytes), nbytes=nbytes)
