"""Helpers for emitting batched memory traffic.

Application kernels touch fine-grained data (8-byte ranks, distances,
cells), but NMP runtimes coalesce accesses to the same remote DIMM into
packet-sized batches.  These helpers turn per-DIMM byte counts into
interleaved chunked Read/Write ops, keeping event counts tractable while
preserving the per-DIMM traffic volumes that determine IDC behaviour.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.dram.address import PAGE_BYTES, page_id
from repro.workloads.ops import Read, Write

#: default coalescing granularity for remote batches (DL packet-friendly).
DEFAULT_CHUNK = 4096
#: address stride between successive batches of one thread (spreads rows).
OFFSET_STRIDE = 1 << 14
#: pages per (thread, dimm) region before a RegionPager wraps around.
REGION_PAGES = 256


class OffsetCursor:
    """Deterministic rolling offsets so traffic spreads over DRAM rows."""

    def __init__(self, thread_id: int) -> None:
        self._next = (thread_id * 2654435761) % (1 << 28)

    def take(self, nbytes: int) -> int:
        """Return an offset for a batch of ``nbytes`` and advance."""
        offset = self._next
        self._next = (self._next + max(nbytes, 64) + OFFSET_STRIDE) % (1 << 30)
        return offset - offset % 64


class RegionPager:
    """Assigns stable page ids to a thread's batched traffic.

    :class:`OffsetCursor` offsets roll forward and never repeat, so they
    cannot serve as page identities — migration policies need the *same*
    page to be touched again on later iterations.  A RegionPager models
    each thread's working set as a fixed window of ``region_pages`` pages
    per statically-sharded DIMM: successive chunks walk the window and
    :meth:`rewind` (called at the top of each kernel iteration) restarts
    the walk, so iteration ``k+1`` re-touches iteration ``k``'s pages.

    Page ids carry the static home DIMM (see ``dram.address.page_id``),
    so resolving them through a static-policy page table reproduces the
    legacy shard exactly.
    """

    def __init__(self, thread_id: int, region_pages: int = REGION_PAGES) -> None:
        if region_pages <= 0:
            raise ValueError(f"region_pages {region_pages} must be positive")
        self.thread_id = thread_id
        self.region_pages = region_pages
        self._positions: Dict[int, int] = {}

    def rewind(self) -> None:
        """Restart every per-DIMM walk (call once per kernel iteration)."""
        self._positions.clear()

    def page_for(self, dimm: int, nbytes: int) -> int:
        """Page id for the next chunk of ``nbytes`` homed on ``dimm``."""
        position = self._positions.get(dimm, 0)
        pages = max(1, (nbytes + PAGE_BYTES - 1) // PAGE_BYTES)
        self._positions[dimm] = position + pages
        index = self.thread_id * self.region_pages + position % self.region_pages
        return page_id(dimm, index)


def chunked(
    per_dimm_bytes: Dict[int, int], chunk: int = DEFAULT_CHUNK
) -> List[Tuple[int, int]]:
    """Split per-DIMM byte counts into (dimm, chunk_bytes) pieces,
    round-robin across DIMMs so transfers to different DIMMs overlap."""
    queues = {d: n for d, n in per_dimm_bytes.items() if n > 0}
    pieces: List[Tuple[int, int]] = []
    while queues:
        for dimm in sorted(queues):
            take = min(chunk, queues[dimm])
            pieces.append((dimm, take))
            queues[dimm] -= take
            if queues[dimm] <= 0:
                del queues[dimm]
    return pieces


def batched_reads(
    per_dimm_bytes: Dict[int, int],
    cursor: OffsetCursor,
    chunk: int = DEFAULT_CHUNK,
    pager: Optional[RegionPager] = None,
) -> Iterator[Read]:
    """Yield chunked Read ops covering the per-DIMM byte counts.

    With a ``pager`` each op also carries a page id; offsets and chunk
    order are identical either way.
    """
    for dimm, nbytes in chunked(per_dimm_bytes, chunk):
        page = pager.page_for(dimm, nbytes) if pager is not None else None
        yield Read(dimm=dimm, offset=cursor.take(nbytes), nbytes=nbytes, page=page)


def batched_writes(
    per_dimm_bytes: Dict[int, int],
    cursor: OffsetCursor,
    chunk: int = DEFAULT_CHUNK,
    pager: Optional[RegionPager] = None,
) -> Iterator[Write]:
    """Yield chunked Write ops covering the per-DIMM byte counts."""
    for dimm, nbytes in chunked(per_dimm_bytes, chunk):
        page = pager.page_for(dimm, nbytes) if pager is not None else None
        yield Write(dimm=dimm, offset=cursor.take(nbytes), nbytes=nbytes, page=page)
