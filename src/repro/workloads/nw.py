"""Needleman-Wunsch sequence alignment (wavefront, Table IV).

The DP matrix is tiled into ``grid x grid`` blocks; block-rows are
round-robin assigned to threads.  Blocks on the same anti-diagonal run in
parallel: a thread computing block (i, j) streams the block locally and
reads the boundary row of block (i-1, j) from the thread above.  The
wavefront ramp-up/down limits parallelism, which is why NW peaks at small
DIMM counts in Fig. 10.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import WorkloadError
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.batching import OffsetCursor, batched_reads, batched_writes
from repro.workloads.graphkernels import data_dimm
from repro.workloads.ops import Barrier, Compute

CELL_BYTES = 4
CYCLES_PER_CELL = 3


class NeedlemanWunsch(Workload):
    """Blocked wavefront dynamic programming."""

    name = "nw"

    def __init__(self, sequence_length: int = 4096, block: int = 128) -> None:
        if sequence_length <= 0 or block <= 0:
            raise WorkloadError("nw sizes must be positive")
        if sequence_length % block:
            raise WorkloadError("sequence_length must be a multiple of block")
        self.sequence_length = sequence_length
        self.block = block

    @property
    def grid(self) -> int:
        """Blocks per matrix dimension."""
        return self.sequence_length // self.block

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        grid = self.grid
        boundary_bytes = self.block * CELL_BYTES
        block_cells = self.block * self.block

        def row_owner(block_row: int) -> int:
            return block_row % num_threads

        def make_factory(thread_id: int) -> ThreadFactory:
            home = data_dimm(thread_id, num_threads, num_dimms)

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    for diagonal in range(2 * grid - 1):
                        # blocks (i, diagonal - i) active on this diagonal
                        my_blocks = [
                            (i, diagonal - i)
                            for i in range(
                                max(0, diagonal - grid + 1), min(grid, diagonal + 1)
                            )
                            if row_owner(i) == thread_id
                        ]
                        for i, _j in my_blocks:
                            if i > 0:
                                upper = data_dimm(
                                    row_owner(i - 1), num_threads, num_dimms
                                )
                                yield from batched_reads(
                                    {upper: boundary_bytes}, cursor
                                )
                            # stream the block's cells + left boundary
                            yield from batched_reads(
                                {home: block_cells * CELL_BYTES}, cursor, chunk=8192
                            )
                            yield Compute(CYCLES_PER_CELL * block_cells)
                            yield from batched_writes(
                                {home: block_cells * CELL_BYTES}, cursor, chunk=8192
                            )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
