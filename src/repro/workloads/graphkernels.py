"""Shared machinery for graph kernels (BFS, SSSP, PageRank, SpMV).

Vertices are block-partitioned into one block per thread; block ``b``'s
data (adjacency slice, per-vertex state) physically lives on DIMM
``b * num_dimms // num_threads`` — a fixed layout.  Threads *process* their
own block wherever they are placed, so a thread's traffic profile is:
stream its block's CSR slice from the block's DIMM, then gather neighbor
state from the owning DIMMs of its neighbors.  The per-(block, DIMM) edge
histogram drives batched traffic volumes; the graph's community structure
is what gives distance-aware mapping something to optimise.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.base import Workload
from repro.workloads.graph import (
    Graph,
    StreamedRMAT,
    bisection_refine,
    cross_partition_edges,
    grouped_edge_balanced_bounds,
    rmat,
)

#: bytes per unit of per-vertex state (rank, distance, level).
STATE_BYTES = 8
#: bytes per CSR edge entry streamed locally.
EDGE_BYTES = 8
#: remote gathers fetch each unique neighbor once per pass and keep the
#: hottest (power-law hub) vertices in the NMP cache, so gather bytes are
#: a fraction of raw edge counts — standard for NMP graph runtimes.
GATHER_DEDUP = 0.10


def data_dimm(block: int, num_blocks: int, num_dimms: int) -> int:
    """The fixed home DIMM of thread-block ``block`` (block-major layout,
    so a locality-aware runtime can co-locate thread and block)."""
    return block * num_dimms // num_blocks


class GraphKernel(Workload):
    """Base class: owns the graph and the per-block traffic histograms."""

    def __init__(
        self,
        graph: Optional[Graph] = None,
        scale: int = 11,
        edge_factor: int = 8,
        seed: int = 42,
        byte_scale: int = 1,
        streaming: bool = False,
    ) -> None:
        if byte_scale <= 0:
            raise WorkloadError("byte_scale must be positive")
        if streaming:
            # LiveJournal-scale mode: the edge list never exists in RAM;
            # layout statistics come from re-streaming the deterministic
            # generator (see StreamedRMAT).  Bisection refinement needs
            # the in-RAM CSR, so streamed graphs keep quadrant order —
            # R-MAT's recursive quadrants already encode the community
            # structure the refinement would recover.
            if graph is not None:
                raise WorkloadError("streaming mode generates its own graph")
            self.graph = None
            self._stream_args = (scale, edge_factor, seed)
            self._stream: Optional[StreamedRMAT] = None
        else:
            self.graph = graph if graph is not None else rmat(scale, edge_factor, seed)
            # partition the input before distributing it (the METIS step the
            # paper's LiveJournal runs imply): minimise group-crossing edges
            self.graph = bisection_refine(self.graph)
        #: traffic multiplier: the kernel moves the byte volumes of a graph
        #: ``byte_scale`` x larger, using this graph's edge *distribution*.
        #: Bridges the gap between simulable graph sizes and the paper's
        #: LiveJournal-scale traffic (see DESIGN.md substitutions).
        self.byte_scale = byte_scale
        self._cache: Dict[tuple, dict] = {}

    def _graph_stats(self):
        """The in-RAM Graph, or the streamed degree/partition statistics."""
        if self.graph is not None:
            return self.graph
        if self._stream is None:
            self._stream = StreamedRMAT(*self._stream_args)
        return self._stream

    def _layout(self, num_threads: int, num_dimms: int) -> dict:
        """Per-(block, dimm) edge counts and per-block sizes (cached)."""
        key = (num_threads, num_dimms)
        layout = self._cache.get(key)
        if layout is not None:
            return layout
        graph = self._graph_stats()
        if num_threads > graph.num_vertices:
            raise WorkloadError(
                f"{self.name}: more threads ({num_threads}) than vertices"
            )
        bounds = grouped_edge_balanced_bounds(graph, num_threads)
        if self.graph is not None:
            block_matrix = cross_partition_edges(graph, num_threads, bounds)
        else:
            block_matrix = graph.cross_partition(np.asarray(bounds), num_threads)
        dimm_of_block = np.array(
            [data_dimm(b, num_threads, num_dimms) for b in range(num_threads)]
        )
        edges_to_dimm = np.zeros((num_threads, num_dimms), dtype=np.int64)
        for dimm in range(num_dimms):
            columns = np.flatnonzero(dimm_of_block == dimm)
            if len(columns):
                edges_to_dimm[:, dimm] = block_matrix[:, columns].sum(axis=1)
        block_vertices = np.diff(np.asarray(bounds))
        block_edges = block_matrix.sum(axis=1)
        layout = {
            "edges_to_dimm": edges_to_dimm * self.byte_scale,
            "block_vertices": block_vertices * self.byte_scale,
            "block_edges": block_edges * self.byte_scale,
            "dimm_of_block": dimm_of_block,
            "bounds": np.asarray(bounds),
        }
        self._cache[key] = layout
        return layout

    def bfs_levels(self, source: int = 0) -> np.ndarray:
        """Level of every vertex reached from ``source`` (-1 if unreached)."""
        if self.graph is None:
            raise WorkloadError(
                f"{self.name}: exact BFS levels need the in-RAM graph; "
                "streaming layouts only carry degree statistics"
            )
        graph = self.graph
        levels = np.full(graph.num_vertices, -1, dtype=np.int64)
        levels[source] = 0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        while len(frontier):
            starts = graph.indptr[frontier]
            stops = graph.indptr[frontier + 1]
            neighbor_chunks = [
                graph.indices[a:b] for a, b in zip(starts, stops) if b > a
            ]
            if not neighbor_chunks:
                break
            neighbors = np.unique(np.concatenate(neighbor_chunks))
            fresh = neighbors[levels[neighbors] == -1]
            level += 1
            levels[fresh] = level
            frontier = fresh
        return levels

    @staticmethod
    def spread_bytes(
        edges_per_dimm: np.ndarray, scale: float = 1.0, dedup: float = GATHER_DEDUP
    ) -> Dict[int, int]:
        """Per-DIMM gather byte counts from an edge histogram row."""
        factor = STATE_BYTES * scale * dedup
        return {
            d: int(count * factor)
            for d, count in enumerate(edges_per_dimm)
            if int(count * factor) > 0
        }


def natural_homes(num_threads: int, num_dimms: int) -> List[int]:
    """The fixed data-home DIMM of every thread's block."""
    return [data_dimm(t, num_threads, num_dimms) for t in range(num_threads)]
