"""Hotspot (2D thermal stencil, Table IV).

The grid is row-strip-partitioned across threads; each iteration a thread
streams its strip (temperature + power) from its home DIMM, exchanges halo
rows with the threads owning the strips above and below, computes the
stencil, writes the strip back, and synchronises.  Halo partners are
adjacent blocks, so the traffic is nearest-neighbor — the pattern
DIMM-Link's chain topology serves best.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import WorkloadError
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.batching import OffsetCursor, batched_reads, batched_writes
from repro.workloads.graphkernels import data_dimm
from repro.workloads.ops import Barrier, Compute

CELL_BYTES = 8
CYCLES_PER_CELL = 4


class Hotspot(Workload):
    """Iterative 5-point stencil over an ``rows x cols`` grid."""

    name = "hotspot"

    def __init__(self, rows: int = 512, cols: int = 512, iterations: int = 6) -> None:
        if rows <= 0 or cols <= 0 or iterations <= 0:
            raise WorkloadError("hotspot dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.iterations = iterations

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        if num_threads > self.rows:
            raise WorkloadError("more threads than grid rows")
        row_bytes = self.cols * CELL_BYTES

        def make_factory(thread_id: int) -> ThreadFactory:
            strip_rows = self.rows // num_threads
            home = data_dimm(thread_id, num_threads, num_dimms)
            up = (
                data_dimm(thread_id - 1, num_threads, num_dimms)
                if thread_id > 0
                else None
            )
            down = (
                data_dimm(thread_id + 1, num_threads, num_dimms)
                if thread_id < num_threads - 1
                else None
            )

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    pager = self.pager_for(thread_id)
                    cells = strip_rows * self.cols
                    for _iteration in range(self.iterations):
                        if pager is not None:
                            pager.rewind()
                        # halo rows from the neighboring strips
                        halo = {}
                        for neighbor in (up, down):
                            if neighbor is not None:
                                halo[neighbor] = halo.get(neighbor, 0) + row_bytes
                        if halo:
                            yield from batched_reads(
                                halo, cursor, chunk=4096, pager=pager
                            )
                        # stream temperature + power of the strip
                        yield from batched_reads(
                            {home: 2 * cells * CELL_BYTES}, cursor, chunk=8192, pager=pager
                        )
                        yield Compute(CYCLES_PER_CELL * cells)
                        yield from batched_writes(
                            {home: cells * CELL_BYTES}, cursor, chunk=8192, pager=pager
                        )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
