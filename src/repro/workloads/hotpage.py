"""Hot-shard microbenchmark for data-placement policies.

The loader statically places the *entire* working set on DIMM 0 — the
pathological skew CODA warns about: every thread's private pages live on
one hot shard, so under static placement all but DIMM 0's own cores pay
remote IDC traffic every round, and DIMM 0's DRAM serializes the whole
machine.  Each round a thread computes, re-reads its private pages (the
repeated touches a next-touch policy needs), reads a few globally shared
pages (which should *not* ping-pong), and writes its private pages back.

First-touch and next-touch migrate the private pages to the touching
core's DIMM after the first round(s); profiled placement starts them
there.  With enough rounds the one-time ``PAGE_BYTES`` migration cost is
amortized and any migrating policy beats static placement — this is the
ablation's guaranteed-crossover workload.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.dram.address import PAGE_BYTES, page_id
from repro.errors import WorkloadError
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.ops import Barrier, Compute, Read, Write

#: the hot shard every page statically lives on.
HOT_DIMM = 0
#: page-index namespace for the globally shared pages (disjoint from the
#: per-thread private regions below it).
SHARED_BASE = 1 << 20
#: bytes touched per page visit (one op per page keeps event counts low).
TOUCH_BYTES = 1024
#: core cycles between memory phases.
CYCLES_PER_ROUND = 2000


class HotPage(Workload):
    """All data on one DIMM; rounds of private re-touches + shared reads."""

    name = "hotpage"
    paged = True

    def __init__(
        self,
        rounds: int = 8,
        private_pages: int = 16,
        shared_pages: int = 2,
        touches_per_page: int = 2,
    ) -> None:
        if rounds <= 0 or private_pages <= 0 or touches_per_page <= 0:
            raise WorkloadError("hotpage rounds/pages/touches must be positive")
        if shared_pages < 0:
            raise WorkloadError("hotpage shared_pages must be >= 0")
        self.rounds = rounds
        self.private_pages = private_pages
        self.shared_pages = shared_pages
        self.touches_per_page = touches_per_page

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            private = [
                page_id(HOT_DIMM, thread_id * self.private_pages + i)
                for i in range(self.private_pages)
            ]
            shared = [
                page_id(HOT_DIMM, SHARED_BASE + j) for j in range(self.shared_pages)
            ]

            def factory() -> Iterator:
                def gen():
                    for _round in range(self.rounds):
                        yield Compute(CYCLES_PER_ROUND)
                        for page in private:
                            base = (page % (1 << 13)) * PAGE_BYTES
                            for touch in range(self.touches_per_page):
                                yield Read(
                                    dimm=HOT_DIMM,
                                    offset=base + touch * TOUCH_BYTES,
                                    nbytes=TOUCH_BYTES,
                                    page=page,
                                )
                        for page in shared:
                            yield Read(
                                dimm=HOT_DIMM,
                                offset=(page % (1 << 13)) * PAGE_BYTES,
                                nbytes=TOUCH_BYTES,
                                page=page,
                            )
                        for page in private:
                            yield Write(
                                dimm=HOT_DIMM,
                                offset=(page % (1 << 13)) * PAGE_BYTES,
                                nbytes=TOUCH_BYTES,
                                page=page,
                            )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
