"""Breadth-First Search (level-synchronous, Table IV).

Per level, each thread scans the frontier vertices of its block: the CSR
slice streams from the block's home DIMM, neighbor level-checks gather
from the neighbors' owning DIMMs (scaled by the level's frontier share),
and newly discovered vertices are written locally.  A global barrier ends
every level.  BFS's shrinking/growing frontiers and irregular gathers are
why it is broadcast-unfriendly (Sec. II-B) and IDC-latency-sensitive.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.workloads.base import ThreadFactory
from repro.workloads.batching import OffsetCursor, batched_reads, batched_writes
from repro.workloads.graphkernels import EDGE_BYTES, STATE_BYTES, GraphKernel
from repro.workloads.ops import Barrier, Compute

#: core cycles per edge scanned / per frontier vertex processed.
CYCLES_PER_EDGE = 2
CYCLES_PER_VERTEX = 8


class BFS(GraphKernel):
    """Level-synchronous breadth-first search."""

    name = "bfs"

    def __init__(self, source: int = 0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.source = source
        self._levels = self.bfs_levels(source)

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        layout = self._layout(num_threads, num_dimms)
        bounds = layout["bounds"]
        levels = self._levels
        max_level = int(levels.max())
        # per (level, block): frontier size and newly-discovered count
        frontier = np.zeros((max_level + 1, num_threads), dtype=np.int64)
        for block in range(num_threads):
            block_levels = levels[bounds[block] : bounds[block + 1]]
            reached = block_levels[block_levels >= 0]
            if len(reached):
                frontier[:, block] = np.bincount(reached, minlength=max_level + 1)
        frontier *= self.byte_scale  # same distribution, full-size volumes

        def make_factory(thread_id: int) -> ThreadFactory:
            block_vertices = int(layout["block_vertices"][thread_id])
            block_edges = int(layout["block_edges"][thread_id])
            edges_to_dimm = layout["edges_to_dimm"][thread_id]
            home = int(layout["dimm_of_block"][thread_id])

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    pager = self.pager_for(thread_id)
                    for level in range(max_level):
                        if pager is not None:
                            pager.rewind()
                        active = int(frontier[level, thread_id])
                        share = active / block_vertices if block_vertices else 0.0
                        edges_scanned = int(block_edges * share)
                        yield Compute(
                            CYCLES_PER_EDGE * edges_scanned
                            + CYCLES_PER_VERTEX * active
                        )
                        if edges_scanned:
                            # stream this level's CSR slice from the home DIMM
                            yield from batched_reads(
                                {home: edges_scanned * EDGE_BYTES},
                                cursor,
                                chunk=4096,
                                pager=pager,
                            )
                            # gather neighbor levels from their owners
                            yield from batched_reads(
                                self.spread_bytes(edges_to_dimm, scale=share),
                                cursor,
                                pager=pager,
                            )
                        discovered = int(frontier[level + 1, thread_id])
                        if discovered:
                            yield from batched_writes(
                                {home: discovered * STATE_BYTES}, cursor, pager=pager
                            )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
