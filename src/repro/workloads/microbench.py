"""Synthetic microbenchmarks.

These drive the paper's non-application measurements:

* :class:`BulkTransfer` — Fig. 1's IDC bandwidth sweep (one thread moving
  a block between two DIMMs at a given request size),
* :class:`UniformRandom` — a tunable local/remote access mix used by unit
  and integration tests,
* :class:`SyncInterval` — Fig. 14-(a)'s synchronization-frequency sweep
  (compute for N instructions, then barrier, repeated).
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.errors import WorkloadError
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.ops import Barrier, Compute, Read, Write


class BulkTransfer(Workload):
    """One thread copies ``total_bytes`` from ``dst_dimm`` in ``chunk_bytes``
    requests (a memcpy-style pull, like Fig. 1's transfer-size sweep)."""

    name = "bulk_transfer"

    def __init__(
        self,
        total_bytes: int,
        chunk_bytes: int,
        src_dimm: int = 0,
        dst_dimm: int = 1,
    ) -> None:
        if total_bytes <= 0 or chunk_bytes <= 0:
            raise WorkloadError("bulk transfer sizes must be positive")
        self.total_bytes = total_bytes
        self.chunk_bytes = chunk_bytes
        self.src_dimm = src_dimm
        self.dst_dimm = dst_dimm

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        if num_threads != 1:
            raise WorkloadError(f"{self.name} is single-threaded")
        if max(self.src_dimm, self.dst_dimm) >= num_dimms:
            raise WorkloadError(f"{self.name}: DIMM ids exceed system size")

        def factory() -> Iterator:
            def gen():
                moved = 0
                offset = 0
                while moved < self.total_bytes:
                    size = min(self.chunk_bytes, self.total_bytes - moved)
                    yield Read(dimm=self.dst_dimm, offset=offset, nbytes=size)
                    moved += size
                    offset += size

            return gen()

        return [factory]


class UniformRandom(Workload):
    """Each thread issues a random mix of local/remote reads and writes."""

    name = "uniform_random"

    def __init__(
        self,
        ops_per_thread: int = 200,
        remote_fraction: float = 0.3,
        write_fraction: float = 0.3,
        nbytes: int = 64,
        compute_cycles: int = 50,
        seed: int = 1,
    ) -> None:
        if not 0.0 <= remote_fraction <= 1.0:
            raise WorkloadError("remote_fraction outside [0, 1]")
        if not 0.0 <= write_fraction <= 1.0:
            raise WorkloadError("write_fraction outside [0, 1]")
        self.ops_per_thread = ops_per_thread
        self.remote_fraction = remote_fraction
        self.write_fraction = write_fraction
        self.nbytes = nbytes
        self.compute_cycles = compute_cycles
        self.seed = seed

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        per_dimm_threads = max(1, num_threads // num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            home = min(thread_id // per_dimm_threads, num_dimms - 1)

            def factory() -> Iterator:
                rng = random.Random(self.seed * 7919 + thread_id)

                def gen():
                    for op_index in range(self.ops_per_thread):
                        yield Compute(self.compute_cycles)
                        if num_dimms > 1 and rng.random() < self.remote_fraction:
                            target = rng.randrange(num_dimms - 1)
                            if target >= home:
                                target += 1
                        else:
                            target = home
                        offset = rng.randrange(1 << 20) * 64
                        if rng.random() < self.write_fraction:
                            yield Write(dimm=target, offset=offset, nbytes=self.nbytes)
                        else:
                            yield Read(dimm=target, offset=offset, nbytes=self.nbytes)

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]


class SyncInterval(Workload):
    """Compute ``interval_instructions``, barrier, repeat (Fig. 14-(a))."""

    name = "sync_interval"

    def __init__(
        self,
        interval_instructions: int = 500,
        barriers: int = 20,
        local_reads_per_interval: int = 4,
        nbytes: int = 64,
    ) -> None:
        if interval_instructions <= 0 or barriers <= 0:
            raise WorkloadError("sync interval parameters must be positive")
        self.interval_instructions = interval_instructions
        self.barriers = barriers
        self.local_reads_per_interval = local_reads_per_interval
        self.nbytes = nbytes

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        per_dimm_threads = max(1, num_threads // num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            home = min(thread_id // per_dimm_threads, num_dimms - 1)

            def factory() -> Iterator:
                def gen():
                    for round_index in range(self.barriers):
                        yield Compute(self.interval_instructions)
                        for read_index in range(self.local_reads_per_interval):
                            offset = (
                                (thread_id * 8191 + round_index * 131 + read_index)
                                * 64
                            )
                            yield Read(dimm=home, offset=offset, nbytes=self.nbytes)
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
