"""TS.Pow: synchronization-rich time-series kernel (Fig. 14-(b)).

Follows SynCron's representative workload: threads scan chunks of a long
time series (local streaming + compute) and update a shared global profile
after every chunk, which requires a small remote read-modify-write to the
profile owner plus a global barrier.  The barrier-per-chunk cadence makes
end-to-end performance track synchronization cost.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import WorkloadError
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.batching import OffsetCursor, batched_reads
from repro.workloads.graphkernels import data_dimm
from repro.workloads.ops import Barrier, Compute, Read, Write

SAMPLE_BYTES = 8
CYCLES_PER_SAMPLE = 10
PROFILE_ENTRY_BYTES = 64


class TSPow(Workload):
    """Chunked time-series scan with per-chunk global profile updates."""

    name = "ts_pow"

    def __init__(
        self, samples_per_thread: int = 16384, chunks: int = 12
    ) -> None:
        if samples_per_thread <= 0 or chunks <= 0:
            raise WorkloadError("ts_pow parameters must be positive")
        self.samples_per_thread = samples_per_thread
        self.chunks = chunks

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        chunk_samples = self.samples_per_thread // self.chunks
        profile_dimm = data_dimm(0, num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            home = data_dimm(thread_id, num_threads, num_dimms)

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    for _chunk in range(self.chunks):
                        yield from batched_reads(
                            {home: chunk_samples * SAMPLE_BYTES},
                            cursor,
                            chunk=8192,
                        )
                        yield Compute(CYCLES_PER_SAMPLE * chunk_samples)
                        # read-modify-write the shared profile entry
                        profile_offset = cursor.take(PROFILE_ENTRY_BYTES)
                        yield Read(
                            dimm=profile_dimm,
                            offset=profile_offset,
                            nbytes=PROFILE_ENTRY_BYTES,
                        )
                        yield Write(
                            dimm=profile_dimm,
                            offset=profile_offset,
                            nbytes=PROFILE_ENTRY_BYTES,
                        )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
