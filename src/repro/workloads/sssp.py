"""Single-Source Shortest Path (Bellman-Ford rounds, Table IV).

Push-style relaxation: per round each thread streams its block's edges
locally, reads neighbor distances from their owners, and pushes improved
distances back as remote writes.  The improving fraction decays
geometrically over rounds, so traffic front-loads like real SSSP.
``SSSPBC`` broadcasts each block's distance updates instead (Fig. 12).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.workloads.base import ThreadFactory
from repro.workloads.batching import OffsetCursor, batched_reads, batched_writes
from repro.workloads.graphkernels import EDGE_BYTES, STATE_BYTES, GraphKernel
from repro.workloads.ops import Barrier, Broadcast, Compute

CYCLES_PER_EDGE = 2
CYCLES_PER_VERTEX = 6
#: fraction of relaxations that improve a distance in round 0, decaying.
IMPROVE_BASE = 0.5
IMPROVE_DECAY = 0.65


class SSSP(GraphKernel):
    """Bellman-Ford-style SSSP."""

    name = "sssp"

    def __init__(self, rounds: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        self.rounds = rounds

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        layout = self._layout(num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            block_vertices = int(layout["block_vertices"][thread_id])
            block_edges = int(layout["block_edges"][thread_id])
            edges_to_dimm = layout["edges_to_dimm"][thread_id]
            home = int(layout["dimm_of_block"][thread_id])

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    pager = self.pager_for(thread_id)
                    for round_index in range(self.rounds):
                        if pager is not None:
                            pager.rewind()
                        improve = IMPROVE_BASE * (IMPROVE_DECAY ** round_index)
                        yield Compute(
                            CYCLES_PER_EDGE * block_edges
                            + CYCLES_PER_VERTEX * block_vertices
                        )
                        yield from batched_reads(
                            {home: block_edges * EDGE_BYTES},
                            cursor,
                            chunk=4096,
                            pager=pager,
                        )
                        # read current neighbor distances
                        yield from batched_reads(
                            self.spread_bytes(edges_to_dimm), cursor, pager=pager
                        )
                        # push improved distances to the owners
                        yield from batched_writes(
                            self.spread_bytes(edges_to_dimm, scale=improve),
                            cursor,
                            pager=pager,
                        )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]


class SSSPBC(GraphKernel):
    """Broadcast-formulated SSSP (Fig. 12)."""

    name = "sssp_bc"

    def __init__(self, rounds: int = 8, **kwargs) -> None:
        super().__init__(**kwargs)
        self.rounds = rounds

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        layout = self._layout(num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            block_vertices = int(layout["block_vertices"][thread_id])
            block_edges = int(layout["block_edges"][thread_id])
            home = int(layout["dimm_of_block"][thread_id])

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    pager = self.pager_for(thread_id)
                    for round_index in range(self.rounds):
                        if pager is not None:
                            pager.rewind()
                        improve = IMPROVE_BASE * (IMPROVE_DECAY ** round_index)
                        updated = max(64, int(block_vertices * STATE_BYTES * improve))
                        yield Broadcast(offset=cursor.take(updated), nbytes=updated)
                        yield Barrier()
                        yield from batched_reads(
                            {home: block_edges * EDGE_BYTES},
                            cursor,
                            chunk=4096,
                            pager=pager,
                        )
                        yield Compute(
                            CYCLES_PER_EDGE * block_edges
                            + CYCLES_PER_VERTEX * block_vertices
                        )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
