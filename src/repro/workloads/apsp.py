"""Blocked Floyd–Warshall all-pairs shortest paths (PIM-FW-motivated).

The blocked APSP kernel tiles the n x n distance matrix into
``block x block`` tiles mapped across DIMMs.  Every round ``k`` runs the
classic three phases — pivot tile, pivot row/column, remainder — and its
IDC signature is unlike the existing graph kernels: each round *broadcasts*
the freshly updated pivot tile and then the pivot row/column tiles to all
DIMMs, so the broadcast tree dominates and point-to-point gather traffic
is secondary.

Like the DLRM workload, two faces stay in exact agreement:

* **Numerics** — a deterministic random digraph with integer weights;
  :meth:`BlockedFloydWarshall.reference_distances` is the golden
  triple-loop Floyd–Warshall, :meth:`BlockedFloydWarshall.blocked_distances`
  the tiled min-plus schedule (ragged edge tiles handled), and
  :meth:`BlockedFloydWarshall.distances_via` the mechanism-shaped
  schedules.  Integer min-plus is exact, so equality is bitwise.
* **Traffic** — per round: the pivot-tile owner computes and broadcasts,
  pivot-row/column owners stream their tiles, update, and broadcast,
  then everyone min-plus-updates their remaining tiles; three barriers
  separate the phases and a per-round ``apsp.round_ps`` stamp records
  round latency.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.batching import OffsetCursor, batched_reads
from repro.workloads.ops import Barrier, Broadcast, Compute, Stamp

#: "no edge" sentinel.  Weights are <= WEIGHT_MAX and paths have < n
#: hops, so any reachable distance is far below this; min-plus guards
#: keep the sentinel exact (never INF + w).
INF = 10**9
#: edge weights are integers in [1, WEIGHT_MAX].
WEIGHT_MAX = 16
#: bytes per distance-matrix entry.
ENTRY_BYTES = 8
#: NMP cycles per min-plus inner-loop element.
CYCLES_PER_MINPLUS = 2
#: mechanism labels accepted by :meth:`BlockedFloydWarshall.distances_via`.
APSP_MECHANISMS = ("cpu", "dimm_link", "dl_opt")

#: histogram key recording per-round latency (scoped per core).
ROUND_STAMP = "apsp.round_ps"


def _minplus(dist: List[List[int]], i: int, j: int, k: int) -> None:
    """dist[i][j] = min(dist[i][j], dist[i][k] + dist[k][j]), INF-exact."""
    through = dist[i][k]
    if through >= INF:
        return
    hop = dist[k][j]
    if hop >= INF:
        return
    if through + hop < dist[i][j]:
        dist[i][j] = through + hop


class BlockedFloydWarshall(Workload):
    """Tiled APSP over DIMMs with per-round pivot broadcasts."""

    name = "apsp"

    def __init__(
        self,
        n: int = 96,
        block: int = 12,
        density: float = 0.25,
        seed: int = 42,
    ) -> None:
        if n <= 0 or block <= 0:
            raise WorkloadError("apsp: n and block must be positive")
        if block > n:
            raise WorkloadError(f"apsp: block {block} exceeds n {n}")
        if not 0.0 < density <= 1.0:
            raise WorkloadError("apsp: density must be in (0, 1]")
        self.n = n
        self.block = block
        self.density = density
        self.seed = seed
        #: tiles per side (ceil: the last row/column of tiles is ragged
        #: when ``block`` does not divide ``n``).
        self.tiles = (n + block - 1) // block
        self._adjacency: List[List[int]] = []
        self._reference: List[List[int]] = []

    # -- deterministic data ----------------------------------------------------------

    def adjacency(self) -> List[List[int]]:
        """The input digraph's weight matrix (cached, callers must not
        mutate)."""
        if not self._adjacency:
            rng = random.Random(f"{self.seed}:apsp:{self.n}:{self.density}")
            matrix = [[INF] * self.n for _ in range(self.n)]
            for i in range(self.n):
                matrix[i][i] = 0
                for j in range(self.n):
                    if i != j and rng.random() < self.density:
                        matrix[i][j] = rng.randint(1, WEIGHT_MAX)
            self._adjacency = matrix
        return self._adjacency

    def _copy_adjacency(self) -> List[List[int]]:
        return [row[:] for row in self.adjacency()]

    # -- reference numerics (the golden result) ---------------------------------------

    def reference_distances(self) -> List[List[int]]:
        """Plain triple-loop Floyd–Warshall (cached golden result)."""
        if not self._reference:
            dist = self._copy_adjacency()
            for k in range(self.n):
                for i in range(self.n):
                    through = dist[i][k]
                    if through >= INF:
                        continue
                    row_i = dist[i]
                    row_k = dist[k]
                    for j in range(self.n):
                        hop = row_k[j]
                        if hop < INF and through + hop < row_i[j]:
                            row_i[j] = through + hop
            self._reference = dist
        return self._reference

    def _tile_range(self, t: int) -> Tuple[int, int]:
        return t * self.block, min((t + 1) * self.block, self.n)

    def _update_tile(
        self, dist: List[List[int]], ti: int, tj: int, tk: int
    ) -> None:
        """Min-plus update of tile (ti, tj) through pivot round tk."""
        i0, i1 = self._tile_range(ti)
        j0, j1 = self._tile_range(tj)
        k0, k1 = self._tile_range(tk)
        for k in range(k0, k1):
            for i in range(i0, i1):
                for j in range(j0, j1):
                    _minplus(dist, i, j, k)

    def blocked_distances(self, order: str = "row_first") -> List[List[int]]:
        """Tiled Floyd–Warshall: per round, pivot tile -> pivot
        row/column -> remainder.  ``order`` flips whether phase 2 walks
        the pivot row or the pivot column first — the DL-opt schedule —
        which must not change the result."""
        if order not in ("row_first", "col_first"):
            raise WorkloadError(f"apsp: unknown phase order {order!r}")
        dist = self._copy_adjacency()
        tiles = self.tiles
        for k in range(tiles):
            self._update_tile(dist, k, k, k)
            passes = ("row", "col") if order == "row_first" else ("col", "row")
            for which in passes:
                for t in range(tiles):
                    if t == k:
                        continue
                    if which == "row":
                        self._update_tile(dist, k, t, k)
                    else:
                        self._update_tile(dist, t, k, k)
            for ti in range(tiles):
                if ti == k:
                    continue
                for tj in range(tiles):
                    if tj == k:
                        continue
                    self._update_tile(dist, ti, tj, k)
        return dist

    def distances_via(self, mechanism: str) -> List[List[int]]:
        """The distance matrix as each mechanism-shaped schedule computes
        it: CPU-forwarding recomputes the plain loop on the host,
        DIMM-Link runs the broadcast-tiled schedule, DL-opt the
        column-first variant.  All must equal the reference exactly."""
        if mechanism not in APSP_MECHANISMS:
            raise WorkloadError(
                f"apsp: unknown mechanism {mechanism!r}; "
                f"choose from {APSP_MECHANISMS}"
            )
        if mechanism == "cpu":
            dist = self._copy_adjacency()
            for k in range(self.n):
                for i in range(self.n):
                    for j in range(self.n):
                        _minplus(dist, i, j, k)
            return dist
        order = "row_first" if mechanism == "dimm_link" else "col_first"
        return self.blocked_distances(order=order)

    # -- traffic model ---------------------------------------------------------------

    def tile_home(self, ti: int, tj: int, num_dimms: int) -> int:
        """The DIMM storing tile (ti, tj): block-major contiguous ranges,
        so a thread's tiles co-locate with its natural placement."""
        index = ti * self.tiles + tj
        return (index * num_dimms) // (self.tiles * self.tiles)

    def tile_owner(self, ti: int, tj: int, num_threads: int) -> int:
        """The thread that processes tile (ti, tj) (block-major ranges,
        aligned with :meth:`tile_home` so natural placement is local)."""
        index = ti * self.tiles + tj
        return (index * num_threads) // (self.tiles * self.tiles)

    def _tile_bytes(self, ti: int, tj: int) -> int:
        i0, i1 = self._tile_range(ti)
        j0, j1 = self._tile_range(tj)
        return (i1 - i0) * (j1 - j0) * ENTRY_BYTES

    def _tile_cycles(self, ti: int, tj: int, tk: int) -> int:
        i0, i1 = self._tile_range(ti)
        j0, j1 = self._tile_range(tj)
        k0, k1 = self._tile_range(tk)
        return CYCLES_PER_MINPLUS * (i1 - i0) * (j1 - j0) * (k1 - k0)

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        tiles = self.tiles
        #: thread -> its tiles, precomputed once for every factory.
        owned: Dict[int, List[Tuple[int, int]]] = {}
        for ti in range(tiles):
            for tj in range(tiles):
                owned.setdefault(
                    self.tile_owner(ti, tj, num_threads), []
                ).append((ti, tj))

        def make_factory(thread_id: int) -> ThreadFactory:
            my_tiles = owned.get(thread_id, [])

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    for k in range(tiles):
                        # phase 1: the pivot tile updates, then floods
                        for ti, tj in my_tiles:
                            if ti == k and tj == k:
                                yield from batched_reads(
                                    {
                                        self.tile_home(ti, tj, num_dimms):
                                        self._tile_bytes(ti, tj)
                                    },
                                    cursor,
                                )
                                yield Compute(self._tile_cycles(k, k, k))
                                tile_bytes = self._tile_bytes(k, k)
                                yield Broadcast(
                                    offset=cursor.take(tile_bytes),
                                    nbytes=tile_bytes,
                                )
                        yield Barrier()
                        # phase 2: pivot row/column tiles update + flood
                        # (each update also re-reads the flood-deposited
                        # pivot tile: local DRAM on NMP, one more channel
                        # crossing on the host)
                        for ti, tj in my_tiles:
                            if (ti == k) != (tj == k):
                                yield from batched_reads(
                                    {
                                        self.tile_home(ti, tj, num_dimms):
                                        self._tile_bytes(ti, tj)
                                        + self._tile_bytes(k, k)
                                    },
                                    cursor,
                                )
                                yield Compute(self._tile_cycles(ti, tj, k))
                                tile_bytes = self._tile_bytes(ti, tj)
                                yield Broadcast(
                                    offset=cursor.take(tile_bytes),
                                    nbytes=tile_bytes,
                                )
                        yield Barrier()
                        # phase 3: the remainder updates off broadcast data
                        # (own tile + the broadcast pivot-row and
                        # pivot-column tiles it min-pluses against)
                        for ti, tj in my_tiles:
                            if ti != k and tj != k:
                                yield from batched_reads(
                                    {
                                        self.tile_home(ti, tj, num_dimms):
                                        self._tile_bytes(ti, tj)
                                        + self._tile_bytes(ti, k)
                                        + self._tile_bytes(k, tj)
                                    },
                                    cursor,
                                )
                                yield Compute(self._tile_cycles(ti, tj, k))
                        yield Barrier()
                        yield Stamp(ROUND_STAMP)

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
