"""Op-trace record and replay.

The paper's FPGA prototype is driven by pre-dumped memory traces
(Sec. V-A).  This module provides the same workflow for the simulator:
any workload's op streams can be recorded to a JSON-lines trace file and
replayed later as a :class:`TraceWorkload` — useful for sharing exact
workloads between runs, diffing mechanisms on identical traffic, and
regression-pinning a kernel's behaviour.

Trace format: one JSON object per line, ``{"t": thread, "op": name,
...fields}``, with a header line carrying metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Union

from repro.errors import WorkloadError
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.ops import Barrier, Broadcast, Compute, Flush, Read, Write

_HEADER_MAGIC = "dimm-link-trace-v1"

_ENCODERS = {
    Compute: lambda op: {"op": "compute", "cycles": op.cycles},
    Read: lambda op: {"op": "read", "dimm": op.dimm, "offset": op.offset, "nbytes": op.nbytes},
    Write: lambda op: {"op": "write", "dimm": op.dimm, "offset": op.offset, "nbytes": op.nbytes},
    Broadcast: lambda op: {"op": "broadcast", "offset": op.offset, "nbytes": op.nbytes},
    Barrier: lambda op: {"op": "barrier"},
    Flush: lambda op: {"op": "flush"},
}


def _decode(record: dict):
    kind = record.get("op")
    if kind == "compute":
        return Compute(record["cycles"])
    if kind == "read":
        return Read(record["dimm"], record["offset"], record["nbytes"])
    if kind == "write":
        return Write(record["dimm"], record["offset"], record["nbytes"])
    if kind == "broadcast":
        return Broadcast(record["offset"], record["nbytes"])
    if kind == "barrier":
        return Barrier()
    if kind == "flush":
        return Flush()
    raise WorkloadError(f"unknown op kind {kind!r} in trace")


def record_trace(
    workload: Workload,
    path: Union[str, Path],
    num_threads: int,
    num_dimms: int,
) -> int:
    """Dump a workload's op streams to ``path``; returns ops written."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        header = {
            "magic": _HEADER_MAGIC,
            "workload": workload.name,
            "threads": num_threads,
            "dimms": num_dimms,
        }
        handle.write(json.dumps(header) + "\n")
        for thread_id, factory in enumerate(
            workload.thread_factories(num_threads, num_dimms)
        ):
            for op in factory():
                encoder = _ENCODERS.get(type(op))
                if encoder is None:
                    raise WorkloadError(f"op {op!r} is not traceable")
                record = {"t": thread_id, **encoder(op)}
                handle.write(json.dumps(record) + "\n")
                count += 1
    return count


class TraceWorkload(Workload):
    """A workload replayed from a recorded trace file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise WorkloadError(f"trace file {self.path} does not exist")
        with self.path.open() as handle:
            header = json.loads(handle.readline())
        if header.get("magic") != _HEADER_MAGIC:
            raise WorkloadError(f"{self.path} is not a DIMM-Link trace")
        self.name = f"trace:{header['workload']}"
        self.recorded_threads = int(header["threads"])
        self.recorded_dimms = int(header["dimms"])
        self._streams: List[List] = [[] for _ in range(self.recorded_threads)]
        with self.path.open() as handle:
            handle.readline()  # header
            for line in handle:
                record = json.loads(line)
                thread = int(record["t"])
                if not 0 <= thread < self.recorded_threads:
                    raise WorkloadError(f"trace references thread {thread}")
                self._streams[thread].append(_decode(record))

    @property
    def total_ops(self) -> int:
        """Ops across all threads."""
        return sum(len(s) for s in self._streams)

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        """Replay; the run must match the recorded shape."""
        if num_threads != self.recorded_threads:
            raise WorkloadError(
                f"trace has {self.recorded_threads} threads, asked for {num_threads}"
            )
        if num_dimms != self.recorded_dimms:
            raise WorkloadError(
                f"trace recorded on {self.recorded_dimms} DIMMs, asked for {num_dimms}"
            )

        def make_factory(thread_id: int) -> ThreadFactory:
            def factory() -> Iterator:
                return iter(self._streams[thread_id])

            return factory

        return [make_factory(t) for t in range(num_threads)]
