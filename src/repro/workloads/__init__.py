"""Benchmark workloads (Table IV) and the op-stream framework."""

from repro.workloads.apsp import BlockedFloydWarshall
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.bfs import BFS
from repro.workloads.dlrm import DLRMEmbedding
from repro.workloads.graph import (
    Graph,
    StreamedRMAT,
    cross_partition_edges,
    from_edges,
    owner_of,
    partition_bounds,
    rmat,
    rmat_stream,
)
from repro.workloads.graphkernels import GraphKernel, data_dimm, natural_homes
from repro.workloads.hotpage import HotPage
from repro.workloads.hotspot import Hotspot
from repro.workloads.kmeans import KMeans
from repro.workloads.microbench import BulkTransfer, SyncInterval, UniformRandom
from repro.workloads.nw import NeedlemanWunsch
from repro.workloads.ops import Barrier, Broadcast, Compute, Flush, Read, Stamp, Write
from repro.workloads.pagerank import PageRank, PageRankBC
from repro.workloads.spmv import SpMV, SpMVBC
from repro.workloads.sssp import SSSP, SSSPBC
from repro.workloads.tspow import TSPow

__all__ = [
    "ThreadFactory",
    "Workload",
    "BFS",
    "BlockedFloydWarshall",
    "DLRMEmbedding",
    "Graph",
    "StreamedRMAT",
    "cross_partition_edges",
    "from_edges",
    "owner_of",
    "partition_bounds",
    "rmat",
    "rmat_stream",
    "GraphKernel",
    "data_dimm",
    "natural_homes",
    "HotPage",
    "Hotspot",
    "KMeans",
    "BulkTransfer",
    "SyncInterval",
    "UniformRandom",
    "NeedlemanWunsch",
    "Barrier",
    "Broadcast",
    "Compute",
    "Flush",
    "Read",
    "Stamp",
    "Write",
    "PageRank",
    "PageRankBC",
    "SpMV",
    "SpMVBC",
    "SSSP",
    "SSSPBC",
    "TSPow",
]
