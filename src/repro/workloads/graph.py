"""Graph substrate: CSR graphs, R-MAT generation, partitioning.

The paper evaluates BFS/SSSP/PageRank on the LiveJournal graph.  We cannot
trace a 68M-edge graph in-process, so workloads run on scaled R-MAT
(Kronecker) graphs, which preserve the skewed power-law degree structure
that makes those kernels IDC-heavy (see DESIGN.md substitutions).
Generation is deterministic per seed.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import WorkloadError

#: in-RAM generator cap: beyond this the edge list itself is the problem;
#: use :func:`rmat_stream` / :class:`StreamedRMAT` instead.
RMAT_MAX_SCALE = 24
#: streaming generator sanity cap (vertex ids stay well inside int64).
RMAT_STREAM_MAX_SCALE = 34
#: edges generated per streaming batch (bounds peak memory).
DEFAULT_STREAM_BATCH = 1 << 18


class Graph:
    """A directed graph in CSR form (numpy int32/int64 arrays)."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1:
            raise WorkloadError("CSR arrays must be one-dimensional")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise WorkloadError("invalid CSR indptr bounds")
        self.indptr = indptr
        self.indices = indices

    @property
    def num_vertices(self) -> int:
        """Vertex count."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Directed edge count."""
        return len(self.indices)

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of vertex ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def __repr__(self) -> str:
        return f"Graph(V={self.num_vertices}, E={self.num_edges})"


def from_edges(num_vertices: int, src: np.ndarray, dst: np.ndarray) -> Graph:
    """Build a CSR graph from (deduplicated) edge arrays."""
    if len(src) != len(dst):
        raise WorkloadError("edge arrays differ in length")
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    # deduplicate parallel edges
    if len(src):
        keep = np.concatenate(([True], (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])))
        src, dst = src[keep], dst[keep]
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
    return Graph(indptr, dst.astype(np.int64))


def rmat(
    scale: int,
    edge_factor: int = 8,
    seed: int = 42,
    a: float = 0.65,
    b: float = 0.15,
    c: float = 0.15,
    undirected: bool = True,
    permute: bool = False,
) -> Graph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Defaults to a=0.65, b=c=0.15 (d=0.05): slightly more diagonal mass
    than Graph500's a=0.57, standing in for the community locality a
    METIS-class partitioner recovers from LiveJournal before placement.  Vertex
    ids are left in recursive-quadrant order by default, preserving the
    community structure a locality-aware graph partitioner would recover
    (block partitions then capture real locality, as the paper's LiveJournal
    partitioning does); ``permute=True`` scatters ids for worst-case
    locality studies.
    """
    if scale <= 0 or scale > RMAT_MAX_SCALE:
        raise WorkloadError(
            f"rmat scale {scale} outside (0, {RMAT_MAX_SCALE}] for the "
            "in-RAM generator; use rmat_stream / StreamedRMAT for larger graphs"
        )
    if edge_factor <= 0:
        raise WorkloadError("edge_factor must be positive")
    _validate_rmat_probs(a, b, c)
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    src, dst = _rmat_quadrants(rng, m, scale, a, b, c)
    if permute:
        perm = rng.permutation(n)
        src, dst = perm[src], perm[dst]
    self_loops = src == dst
    src, dst = src[~self_loops], dst[~self_loops]
    if undirected:
        src, dst = np.concatenate((src, dst)), np.concatenate((dst, src))
    return from_edges(n, src, dst)


def _validate_rmat_probs(a: float, b: float, c: float) -> None:
    if 1.0 - a - b - c < 0:
        raise WorkloadError("rmat probabilities exceed 1")


def _rmat_quadrants(
    rng: np.random.Generator, count: int, scale: int, a: float, b: float, c: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``count`` R-MAT edges (quadrant choice per Chakrabarti et al.).

    Consumes exactly ``scale`` draws of ``rng.random(count)`` — shared by
    the in-RAM and streaming generators so a single-batch stream emits
    the identical edge list as :func:`rmat`.
    """
    src = np.zeros(count, dtype=np.int64)
    dst = np.zeros(count, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(count)
        src_bit = r >= (a + b)
        dst_bit = ((r >= a) & (r < a + b)) | (r >= (a + b + c))
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    return src, dst


def rmat_stream(
    scale: int,
    edge_factor: int = 8,
    seed: int = 42,
    a: float = 0.65,
    b: float = 0.15,
    c: float = 0.15,
    undirected: bool = True,
    batch_edges: int = DEFAULT_STREAM_BATCH,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Stream R-MAT edges in bounded batches, never materializing the list.

    Yields ``(src, dst)`` array pairs of at most ``2 * batch_edges``
    edges (undirected doubles each batch).  Deterministic for a given
    ``(seed, batch_edges)``; with ``batch_edges >= n * edge_factor`` the
    concatenated output equals :func:`rmat`'s pre-dedup edge list.
    Unlike the in-RAM path, parallel edges are *not* deduplicated —
    streamed degree counts are a (tight, power-law-preserving) upper
    bound on the CSR degrees.
    """
    if scale <= 0 or scale > RMAT_STREAM_MAX_SCALE:
        raise WorkloadError(
            f"rmat_stream scale {scale} outside (0, {RMAT_STREAM_MAX_SCALE}]"
        )
    if edge_factor <= 0:
        raise WorkloadError("edge_factor must be positive")
    if batch_edges <= 0:
        raise WorkloadError("batch_edges must be positive")
    _validate_rmat_probs(a, b, c)
    n = 1 << scale
    remaining = n * edge_factor
    rng = np.random.default_rng(seed)
    while remaining > 0:
        count = min(batch_edges, remaining)
        remaining -= count
        src, dst = _rmat_quadrants(rng, count, scale, a, b, c)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if undirected:
            src, dst = np.concatenate((src, dst)), np.concatenate((dst, src))
        if len(src):
            yield src, dst


class StreamedRMAT:
    """Degree/partition statistics of an R-MAT graph in O(V) memory.

    Exposes the subset of the :class:`Graph` surface the layout pipeline
    needs (``num_vertices``, ``num_edges``, ``indptr``) by re-streaming
    the deterministic edge generator: one pass accumulates out-degrees
    (so ``edge_balanced_bounds`` / ``grouped_edge_balanced_bounds`` work
    unchanged), and :meth:`cross_partition` makes a second pass to build
    the block-crossing matrix.  The edge list itself never exists in
    RAM — peak footprint is a few ``batch_edges``-long scratch arrays
    plus the V-long degree array, which is what lets ``--size large``
    reach millions of vertices.
    """

    def __init__(
        self,
        scale: int,
        edge_factor: int = 8,
        seed: int = 42,
        a: float = 0.65,
        b: float = 0.15,
        c: float = 0.15,
        undirected: bool = True,
        batch_edges: int = DEFAULT_STREAM_BATCH,
    ) -> None:
        self.scale = scale
        self.edge_factor = edge_factor
        self.seed = seed
        self.a, self.b, self.c = a, b, c
        self.undirected = undirected
        self.batch_edges = batch_edges
        self.num_vertices = 1 << scale
        degrees = np.zeros(self.num_vertices, dtype=np.int64)
        for src, _dst in self._stream():
            degrees += np.bincount(src, minlength=self.num_vertices)
        self.degrees = degrees
        self.num_edges = int(degrees.sum())
        self.indptr = np.concatenate(([0], np.cumsum(degrees))).astype(np.int64)

    def _stream(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        return rmat_stream(
            self.scale,
            self.edge_factor,
            self.seed,
            self.a,
            self.b,
            self.c,
            self.undirected,
            self.batch_edges,
        )

    def cross_partition(self, bounds: np.ndarray, parts: "int | None" = None) -> np.ndarray:
        """``parts x parts`` edge-crossing matrix for block ``bounds``."""
        bounds = np.asarray(bounds)
        if parts is None:
            parts = len(bounds) - 1
        matrix = np.zeros((parts, parts), dtype=np.int64)
        for src, dst in self._stream():
            src_part = np.clip(
                np.searchsorted(bounds, src, side="right") - 1, 0, parts - 1
            )
            dst_part = np.clip(
                np.searchsorted(bounds, dst, side="right") - 1, 0, parts - 1
            )
            np.add.at(matrix, (src_part, dst_part), 1)
        return matrix

    def __repr__(self) -> str:
        return (
            f"StreamedRMAT(V={self.num_vertices}, E={self.num_edges}, "
            f"scale={self.scale})"
        )


def bisection_refine(graph: Graph, rounds: int = 4) -> Graph:
    """Relabel vertices to reduce cross-half edges (Kernighan-Lin style).

    NMP graph frameworks partition their input (METIS-class tools) before
    distributing it over memory modules; this single-level refinement
    plays that role for the half/half split that determines which DL
    *group* owns a vertex.  Each round swaps equal numbers of vertices
    between halves, choosing the vertices whose cross-half degree most
    exceeds their same-half degree; balance is preserved exactly.
    """
    n = graph.num_vertices
    half = n // 2
    side = (np.arange(n) >= half).astype(np.int8)
    degrees = np.diff(graph.indptr).astype(np.int64)
    src = np.repeat(np.arange(n), degrees)
    for _round in range(rounds):
        to_side1 = np.bincount(src, weights=side[graph.indices], minlength=n)
        cross = np.where(side == 0, to_side1, degrees - to_side1)
        gain = 2 * cross - degrees  # cross - same
        movers0 = np.flatnonzero((side == 0) & (gain > 0))
        movers1 = np.flatnonzero((side == 1) & (gain > 0))
        count = min(len(movers0), len(movers1))
        if count == 0:
            break
        movers0 = movers0[np.argsort(-gain[movers0])][:count]
        movers1 = movers1[np.argsort(-gain[movers1])][:count]
        side[movers0] = 1
        side[movers1] = 0
    order = np.argsort(side, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    return from_edges(n, rank[src], rank[graph.indices])


def cross_fraction(graph: Graph, parts: int = 2) -> float:
    """Fraction of edges crossing a block bisection into ``parts`` parts."""
    matrix = cross_partition_edges(graph, parts)
    total = matrix.sum()
    if total == 0:
        return 0.0
    return float((total - np.trace(matrix)) / total)


def partition_bounds(total: int, parts: int) -> List[int]:
    """Boundaries of a block partition: ``parts + 1`` cut points."""
    if parts <= 0:
        raise WorkloadError("parts must be positive")
    return [total * p // parts for p in range(parts + 1)]


def owner_of(index: int, total: int, parts: int) -> int:
    """Which block partition owns element ``index``."""
    if not 0 <= index < total:
        raise WorkloadError(f"index {index} outside [0, {total})")
    # inverse of partition_bounds' cut points
    owner = (index * parts) // total
    while index >= total * (owner + 1) // parts:
        owner += 1
    while index < total * owner // parts:
        owner -= 1
    return owner


def edge_balanced_bounds(graph: Graph, parts: int) -> np.ndarray:
    """Block-partition cut points that equalise *edge* counts per block.

    Power-law graphs make vertex-balanced blocks wildly edge-imbalanced
    (the hub block dominates); production graph frameworks cut by degree
    mass instead, which is what keeps per-thread work comparable.
    """
    if parts <= 0:
        raise WorkloadError("parts must be positive")
    cumulative = graph.indptr[1:].astype(np.float64)
    total = float(graph.num_edges)
    bounds = [0]
    for part in range(1, parts):
        target = total * part / parts
        cut = int(np.searchsorted(cumulative, target, side="left")) + 1
        bounds.append(max(cut, bounds[-1] + 1))
    bounds.append(graph.num_vertices)
    # clamp any overruns caused by the +1 non-empty guarantee
    for index in range(len(bounds) - 2, 0, -1):
        bounds[index] = min(bounds[index], bounds[index + 1] - 1)
    if bounds[0] != 0 or any(b <= a for a, b in zip(bounds, bounds[1:])):
        raise WorkloadError(
            f"cannot cut {graph.num_vertices} vertices into {parts} blocks"
        )
    return np.asarray(bounds, dtype=np.int64)


def grouped_edge_balanced_bounds(graph: Graph, parts: int) -> np.ndarray:
    """Edge-balanced cut points that respect the half/half group boundary.

    The bisection refinement puts each DL group's vertices in one
    contiguous half; cutting each half into ``parts/2`` edge-balanced
    blocks keeps that group assignment while balancing per-thread work.
    Falls back to plain edge balancing for odd ``parts``.
    """
    if parts % 2 or parts < 2:
        return edge_balanced_bounds(graph, parts)
    n = graph.num_vertices
    half_vertex = n // 2
    cumulative = graph.indptr[1:].astype(np.float64)
    bounds = [0]

    def cut_range(start: int, stop: int, pieces: int) -> None:
        base = float(graph.indptr[start])
        total = float(graph.indptr[stop]) - base
        for piece in range(1, pieces):
            target = base + total * piece / pieces
            cut = int(np.searchsorted(cumulative, target, side="left")) + 1
            cut = min(max(cut, bounds[-1] + 1), stop - (pieces - piece))
            bounds.append(cut)
        bounds.append(stop)

    cut_range(0, half_vertex, parts // 2)
    cut_range(half_vertex, n, parts // 2)
    result = np.asarray(bounds, dtype=np.int64)
    if len(result) != parts + 1 or np.any(np.diff(result) <= 0):
        raise WorkloadError(
            f"cannot cut {n} vertices into {parts} grouped blocks"
        )
    return result


def cross_partition_edges(
    graph: Graph, parts: int, bounds: "np.ndarray | None" = None
) -> np.ndarray:
    """``parts x parts`` matrix of edge counts between block partitions."""
    if bounds is None:
        bounds = np.asarray(partition_bounds(graph.num_vertices, parts))
    src = np.repeat(
        np.arange(graph.num_vertices), np.diff(graph.indptr).astype(np.int64)
    )
    src_part = np.clip(np.searchsorted(bounds, src, side="right") - 1, 0, parts - 1)
    dst_part = np.clip(
        np.searchsorted(bounds, graph.indices, side="right") - 1, 0, parts - 1
    )
    matrix = np.zeros((parts, parts), dtype=np.int64)
    np.add.at(matrix, (src_part, dst_part), 1)
    return matrix
