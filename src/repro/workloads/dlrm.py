"""DLRM-style embedding serving (TensorDIMM-motivated workload).

Recommendation-model inference is dominated by embedding-table lookups:
each query pulls ``pooling`` rows from every table and reduces them into
one pooled vector per table.  Tables are row-sharded across DIMMs, so a
lookup is a *gather* across the shards followed by a *tensor reduction*
— exactly the traffic shape the DIMM-Link bridges (peer-to-peer partial
transfers, tree reduction) were built for, and the worst case for
CPU-forwarding baselines that haul every partial through the host.

The workload carries two faces kept in exact agreement:

* **Numerics** — deterministic integer embedding tables and Zipfian
  query streams, with :meth:`DLRMEmbedding.reference_pooled` (direct
  per-query sum, the golden result) and :meth:`DLRMEmbedding.pooled_via`
  (the mechanism-shaped dataflows: host-forwarded linear gather,
  per-shard partial sums + binary tree reduction, and the DL-opt
  rotated tree).  Integer weights make every path bit-exact, so the
  differential tests assert *equality*, not tolerance.
* **Traffic** — :meth:`thread_factories` models the cooperative gather:
  batches are served in *waves* of ``num_threads``.  In each wave every
  thread first reads its home DIMM's share of the wave's selected rows
  *locally* and reduces them into partials (the NMP-side gather), then —
  after a barrier — serves its own batch by pulling one partial vector
  per (query, table, shard) across the interconnect, tree-reducing, and
  writing the response, closing with a ``dlrm.batch_ps`` latency stamp.
  On the host baseline the same stream degenerates to exactly
  CPU-forwarding: the "local" row reads all cross the memory channels,
  which is where the DIMM-Link advantage comes from.

Batches are identified globally (``wave * num_threads + thread``) so
the query stream — and therefore the simulated traffic — is independent
of how threads are placed.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from collections import Counter
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.batching import OffsetCursor, batched_reads
from repro.workloads.ops import Barrier, Compute, Stamp, Write

#: bytes per embedding-vector element (fp32 in production DLRM; the
#: integer stand-ins here size traffic identically).
ELEMENT_BYTES = 4
#: embedding weights are integers in [-WEIGHT_BOUND, WEIGHT_BOUND).
WEIGHT_BOUND = 64
#: NMP cycles per vector element touched during gather and reduction.
CYCLES_PER_ELEMENT = 2
#: mechanism labels accepted by :meth:`DLRMEmbedding.pooled_via`.
POOLING_MECHANISMS = ("cpu", "dimm_link", "dl_opt")

#: histogram key recording per-batch serving latency (scoped per core).
BATCH_STAMP = "dlrm.batch_ps"


class DLRMEmbedding(Workload):
    """Embedding-lookup + tensor-reduction serving (batched queries)."""

    name = "dlrm"

    def __init__(
        self,
        tables: int = 8,
        rows: int = 512,
        dim: int = 16,
        pooling: int = 8,
        batches_per_thread: int = 4,
        batch_size: int = 32,
        zipf: float = 1.05,
        seed: int = 42,
    ) -> None:
        if min(tables, rows, dim, pooling, batches_per_thread, batch_size) <= 0:
            raise WorkloadError("dlrm: all shape parameters must be positive")
        if zipf <= 0:
            raise WorkloadError("dlrm: zipf exponent must be positive")
        self.tables = tables
        self.rows = rows
        self.dim = dim
        self.pooling = pooling
        self.batches_per_thread = batches_per_thread
        self.batch_size = batch_size
        self.zipf = zipf
        self.seed = seed
        #: cumulative Zipfian weights over row ids (hot head at row 0).
        self._cdf: List[float] = []
        total = 0.0
        for row in range(rows):
            total += 1.0 / ((row + 1) ** zipf)
            self._cdf.append(total)
        self._row_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._traffic_cache: Dict[Tuple[int, int], Tuple[Counter, Counter]] = {}

    # -- deterministic data ----------------------------------------------------------

    def row_vector(self, table: int, row: int) -> Tuple[int, ...]:
        """The embedding vector stored at (table, row) — derived, not
        materialized, so large tables cost nothing until touched."""
        cached = self._row_cache.get((table, row))
        if cached is None:
            rng = random.Random(f"{self.seed}:dlrm-row:{table}:{row}")
            cached = tuple(
                rng.randrange(-WEIGHT_BOUND, WEIGHT_BOUND) for _ in range(self.dim)
            )
            self._row_cache[(table, row)] = cached
        return cached

    def _sample_row(self, rng: random.Random) -> int:
        return bisect_left(self._cdf, rng.random() * self._cdf[-1])

    def query_indices(self, batch_id: int) -> List[List[Tuple[int, ...]]]:
        """The batch's queries: per query, per table, ``pooling`` row ids
        (Zipfian, repeats allowed — multi-hot features revisit hot rows)."""
        rng = random.Random(f"{self.seed}:dlrm-batch:{batch_id}")
        return [
            [
                tuple(self._sample_row(rng) for _ in range(self.pooling))
                for _table in range(self.tables)
            ]
            for _query in range(self.batch_size)
        ]

    def shard_of(self, table: int, row: int, num_dimms: int) -> int:
        """The DIMM owning (table, row): contiguous row blocks, rotated
        by table id so every table's Zipf-hot head lands on a different
        DIMM (the TensorDIMM-style load-balancing trick)."""
        return (table + (row * num_dimms) // self.rows) % num_dimms

    # -- reference numerics (the golden results) --------------------------------------

    def reference_pooled(self, batch_id: int) -> List[List[Tuple[int, ...]]]:
        """Direct reduction in query order: per query, per table, the
        elementwise sum of the selected rows.  The golden result every
        mechanism-shaped dataflow must reproduce exactly."""
        pooled = []
        for query in self.query_indices(batch_id):
            per_table = []
            for table, row_ids in enumerate(query):
                acc = [0] * self.dim
                for row in row_ids:
                    vector = self.row_vector(table, row)
                    for i in range(self.dim):
                        acc[i] += vector[i]
                per_table.append(tuple(acc))
            pooled.append(per_table)
        return pooled

    def pooled_via(
        self, mechanism: str, batch_id: int, num_dimms: int
    ) -> List[List[Tuple[int, ...]]]:
        """The pooled vectors as each serving dataflow computes them.

        * ``"cpu"`` — CPU-forwarding: every selected row is hauled to the
          host (shard-major order) and summed linearly there.
        * ``"dimm_link"`` — NMP-side gather: each shard reduces its own
          rows into one partial per (query, table), partials combine
          through a binary tree over ascending DIMM ids.
        * ``"dl_opt"`` — same partials, tree built over the rotated DIMM
          order the optimized placement yields.

        Integer arithmetic makes all three bit-equal to
        :meth:`reference_pooled`; the differential tests pin that.
        """
        if mechanism not in POOLING_MECHANISMS:
            raise WorkloadError(
                f"dlrm: unknown pooling mechanism {mechanism!r}; "
                f"choose from {POOLING_MECHANISMS}"
            )
        pooled = []
        for query in self.query_indices(batch_id):
            per_table = []
            for table, row_ids in enumerate(query):
                shards: Dict[int, List[int]] = {}
                for row in row_ids:
                    shards.setdefault(
                        self.shard_of(table, row, num_dimms), []
                    ).append(row)
                if mechanism == "cpu":
                    acc = [0] * self.dim
                    for dimm in sorted(shards):
                        for row in shards[dimm]:
                            vector = self.row_vector(table, row)
                            for i in range(self.dim):
                                acc[i] += vector[i]
                    per_table.append(tuple(acc))
                    continue
                order = sorted(shards)
                if mechanism == "dl_opt" and len(order) > 1:
                    # rotated reduction order: a genuinely different tree
                    order = order[1:] + order[:1]
                partials = []
                for dimm in order:
                    part = [0] * self.dim
                    for row in shards[dimm]:
                        vector = self.row_vector(table, row)
                        for i in range(self.dim):
                            part[i] += vector[i]
                    partials.append(part)
                per_table.append(tuple(self._tree_reduce(partials)))
            pooled.append(per_table)
        return pooled

    def _tree_reduce(self, partials: List[List[int]]) -> List[int]:
        """Pairwise binary tree combine (the DIMM-Link reduction shape)."""
        while len(partials) > 1:
            merged = []
            for i in range(0, len(partials) - 1, 2):
                left, right = partials[i], partials[i + 1]
                merged.append([left[j] + right[j] for j in range(self.dim)])
            if len(partials) % 2:
                merged.append(partials[-1])
            partials = merged
        return partials[0]

    # -- traffic model ---------------------------------------------------------------

    def batch_traffic(
        self, batch_id: int, num_dimms: int
    ) -> Tuple[Counter, Counter]:
        """Per-DIMM (rows gathered, partial vectors produced) for one
        batch — computed from the actual query indices (and cached), so
        traffic and numerics can never drift apart."""
        cached = self._traffic_cache.get((batch_id, num_dimms))
        if cached is not None:
            return cached
        rows_at: Counter = Counter()
        partials_at: Counter = Counter()
        for query in self.query_indices(batch_id):
            for table, row_ids in enumerate(query):
                owners = Counter(
                    self.shard_of(table, row, num_dimms) for row in row_ids
                )
                for dimm, count in owners.items():
                    rows_at[dimm] += count
                    partials_at[dimm] += 1
        self._traffic_cache[(batch_id, num_dimms)] = (rows_at, partials_at)
        return rows_at, partials_at

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        per_dimm = max(1, num_threads // num_dimms)
        response_bytes = self.batch_size * self.tables * self.dim * ELEMENT_BYTES

        def make_factory(thread_id: int) -> ThreadFactory:
            home = min(thread_id // per_dimm, num_dimms - 1)
            # rank among the threads co-resident on this DIMM, used to
            # split the DIMM's local gather work between them
            mates = [
                t
                for t in range(num_threads)
                if min(t // per_dimm, num_dimms - 1) == home
            ]
            rank = mates.index(thread_id)

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    for wave in range(self.batches_per_thread):
                        # -- gather phase: this thread reads its share of
                        # the rows its home DIMM contributes to every
                        # batch of the wave, and reduces them to partials
                        # (local DRAM reads on NMP; channel reads — i.e.
                        # CPU-forwarding — on the host baseline)
                        local_rows = 0
                        for peer in range(num_threads):
                            rows_at, _partials = self.batch_traffic(
                                wave * num_threads + peer, num_dimms
                            )
                            local_rows += rows_at.get(home, 0)
                        share = local_rows // len(mates) + (
                            1 if rank < local_rows % len(mates) else 0
                        )
                        if share:
                            yield from batched_reads(
                                {home: share * self.dim * ELEMENT_BYTES},
                                cursor,
                                chunk=4096,
                            )
                            yield Compute(CYCLES_PER_ELEMENT * self.dim * share)
                        yield Barrier()
                        # -- serve phase: this thread's batch pulls one
                        # dim-vector partial per (query, table, shard)
                        # across the interconnect and tree-reduces
                        batch_id = wave * num_threads + thread_id
                        _rows, partials_at = self.batch_traffic(
                            batch_id, num_dimms
                        )
                        yield from batched_reads(
                            {
                                dimm: count * self.dim * ELEMENT_BYTES
                                for dimm, count in sorted(partials_at.items())
                            },
                            cursor,
                            chunk=2048,
                        )
                        yield Compute(
                            CYCLES_PER_ELEMENT
                            * self.dim
                            * sum(partials_at.values())
                        )
                        # pooled response lands in the local result buffer
                        yield Write(
                            dimm=home,
                            offset=cursor.take(response_bytes),
                            nbytes=response_bytes,
                        )
                        yield Stamp(BATCH_STAMP)

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
