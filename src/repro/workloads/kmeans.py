"""K-Means clustering (Table IV).

Points are block-partitioned across threads.  Each iteration a thread
streams its points from its home DIMM, assigns them to the nearest
centroid (compute-heavy), pushes a small partial-centroid table to the
reduction DIMM, and waits at a barrier while thread 0 reduces and
re-publishes the centroids (a broadcast).  K-Means is the paper's example
of a broadcast-*unfriendly* application with strong scaling under
DIMM-Link (Sec. V-C).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import WorkloadError
from repro.workloads.base import ThreadFactory, Workload
from repro.workloads.batching import OffsetCursor, batched_reads, batched_writes
from repro.workloads.graphkernels import data_dimm
from repro.workloads.ops import Barrier, Broadcast, Compute, Write

POINT_BYTES = 8
CYCLES_PER_POINT_PER_CLUSTER = 2


class KMeans(Workload):
    """Lloyd iterations over block-partitioned points."""

    name = "kmeans"

    def __init__(
        self,
        points: int = 65536,
        dims: int = 16,
        clusters: int = 16,
        iterations: int = 5,
    ) -> None:
        if min(points, dims, clusters, iterations) <= 0:
            raise WorkloadError("kmeans parameters must be positive")
        self.points = points
        self.dims = dims
        self.clusters = clusters
        self.iterations = iterations

    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        self.validate(num_threads, num_dimms)
        points_per_thread = self.points // num_threads
        point_bytes = self.dims * POINT_BYTES
        centroid_table = self.clusters * self.dims * POINT_BYTES
        reducer_dimm = data_dimm(0, num_threads, num_dimms)

        def make_factory(thread_id: int) -> ThreadFactory:
            home = data_dimm(thread_id, num_threads, num_dimms)

            def factory() -> Iterator:
                def gen():
                    cursor = OffsetCursor(thread_id)
                    for _iteration in range(self.iterations):
                        # stream the thread's points
                        yield from batched_reads(
                            {home: points_per_thread * point_bytes},
                            cursor,
                            chunk=8192,
                        )
                        yield Compute(
                            CYCLES_PER_POINT_PER_CLUSTER
                            * points_per_thread
                            * self.clusters
                        )
                        # write assignments locally
                        yield from batched_writes(
                            {home: points_per_thread * POINT_BYTES}, cursor
                        )
                        # push the partial centroid table to the reducer
                        yield Write(
                            dimm=reducer_dimm,
                            offset=cursor.take(centroid_table),
                            nbytes=centroid_table,
                        )
                        yield Barrier()
                        if thread_id == 0:
                            # reduce partials and publish new centroids
                            yield from batched_reads(
                                {reducer_dimm: centroid_table * num_threads},
                                cursor,
                                chunk=4096,
                            )
                            yield Compute(
                                2 * num_threads * self.clusters * self.dims
                            )
                            yield Broadcast(
                                offset=cursor.take(centroid_table),
                                nbytes=centroid_table,
                            )
                        yield Barrier()

                return gen()

            return factory

        return [make_factory(t) for t in range(num_threads)]
