"""Workload framework.

A :class:`Workload` produces one op-stream factory per software thread
(each factory can be called repeatedly — runs and the mapping profiler
both need fresh streams).  Data is laid out across DIMMs by the workload
itself; op targets are DIMM ids, so locality is decided by where threads
are *placed*, which is exactly the knob distance-aware task mapping turns.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterator, List, Optional

from repro.errors import WorkloadError
from repro.workloads.batching import RegionPager

ThreadFactory = Callable[[], Iterator]


class Workload(abc.ABC):
    """Base class for all benchmark kernels (Table IV)."""

    #: short name used in experiment tables.
    name: str = "workload"
    #: when True, op streams attach page ids so a page table can resolve
    #: (and migrate) their data; False keeps the legacy static-shard ops.
    paged: bool = False

    def pager_for(self, thread_id: int) -> Optional[RegionPager]:
        """A per-thread pager when paging is on, else None (legacy ops)."""
        return RegionPager(thread_id) if self.paged else None

    @abc.abstractmethod
    def thread_factories(self, num_threads: int, num_dimms: int) -> List[ThreadFactory]:
        """Build one re-invocable op-stream factory per thread."""

    def validate(self, num_threads: int, num_dimms: int) -> None:
        """Common argument validation for subclasses."""
        if num_threads <= 0:
            raise WorkloadError(f"{self.name}: need at least one thread")
        if num_dimms <= 0:
            raise WorkloadError(f"{self.name}: need at least one DIMM")

    @staticmethod
    def block_placement(num_threads: int, num_dimms: int, per_dimm: int) -> List[int]:
        """Thread i -> DIMM i // per_dimm (the natural affinity placement)."""
        return [min(i // per_dimm, num_dimms - 1) for i in range(num_threads)]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
