"""Event-count energy model (the paper's Fig. 13 accounting)."""

from repro.energy.accounting import EnergyReport, energy_report
from repro.energy.params import DEFAULT_PARAMS, EnergyParams

__all__ = ["EnergyReport", "energy_report", "DEFAULT_PARAMS", "EnergyParams"]
