"""Energy constants (Sec. V-C "Energy Efficiency").

All values follow the paper: GRS links at 1.17 pJ/b [69], DDR activate
2.1 nJ and RD/WR 14 pJ/b (RecNMP [44]), off-chip memory-bus IO 22 pJ/b,
a 1.8 W four-core NMP processor per DIMM (MCN [3]), AIM's dedicated bus
at memory-bus energy [11], and GEM5+McPAT-style host polling/forwarding
costs folded into per-operation constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energy constants."""

    #: DIMM-Link SerDes energy (GRS).
    dl_pj_per_bit: float = 1.17
    #: memory-channel (and AIM dedicated-bus) IO energy.
    bus_pj_per_bit: float = 22.0
    #: DRAM read/write data energy.
    dram_pj_per_bit: float = 14.0
    #: one row activation.
    activate_nj: float = 2.1
    #: power of one DIMM's four-core NMP processor.
    nmp_processor_w: float = 1.8
    #: host CPU energy per forwarded packet (decode + copy management).
    fwd_op_nj: float = 400.0
    #: host energy per polling read (issue + register decode).
    poll_nj: float = 30.0
    #: host energy per interrupt delivery + context switch.
    interrupt_nj: float = 2000.0


#: module-level default instance.
DEFAULT_PARAMS = EnergyParams()
