"""Energy accounting: turn a run's event counters into joules (Fig. 13)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import SystemConfig
from repro.energy.params import DEFAULT_PARAMS, EnergyParams
from repro.nmp.results import RunResult
from repro.sim.time import ns, to_s


@dataclass(frozen=True)
class EnergyReport:
    """Energy by category, in joules."""

    dram_j: float
    dl_link_j: float
    bus_j: float
    nmp_static_j: float
    host_j: float

    @property
    def idc_j(self) -> float:
        """Communication energy (links + buses + host involvement)."""
        return self.dl_link_j + self.bus_j + self.host_j

    @property
    def total_j(self) -> float:
        """Total energy."""
        return self.dram_j + self.dl_link_j + self.bus_j + self.nmp_static_j + self.host_j

    def as_dict(self) -> Dict[str, float]:
        """Category -> joules (plus totals)."""
        return {
            "dram": self.dram_j,
            "dl_link": self.dl_link_j,
            "bus": self.bus_j,
            "nmp_static": self.nmp_static_j,
            "host": self.host_j,
            "idc": self.idc_j,
            "total": self.total_j,
        }


def _polling_energy(
    result: RunResult, config: SystemConfig, params: EnergyParams, polling: str
) -> float:
    runtime_ps = result.time_ps
    if polling == "baseline":
        polls = (runtime_ps / ns(config.host.poll_visit_ns)) * config.num_channels
        return polls * params.poll_nj * 1e-9
    if polling == "proxy":
        polls = (runtime_ps / ns(config.host.proxy_repoll_ns)) * len(config.groups)
        return polls * params.poll_nj * 1e-9
    # interrupt-driven strategies: per-event scan reads + interrupts
    scans = result.counter("poll.scan_reads")
    notices = result.counter("poll.notices")
    return scans * params.poll_nj * 1e-9 + notices * params.interrupt_nj * 1e-9


def energy_report(
    result: RunResult,
    config: SystemConfig,
    polling: str = "baseline",
    params: EnergyParams = DEFAULT_PARAMS,
) -> EnergyReport:
    """Compute the Fig. 13 energy breakdown for one run."""
    bits = lambda nbytes: nbytes * 8.0  # noqa: E731 - unit helper
    dram_bytes = result.counter("dram.read_bytes") + result.counter("dram.write_bytes")
    dram_j = (
        bits(dram_bytes) * params.dram_pj_per_bit * 1e-12
        + result.counter("dram.activates") * params.activate_nj * 1e-9
    )
    dl_link_j = (
        bits(result.counter("dl.hop_bytes"))
        * config.link.energy_pj_per_bit
        * 1e-12
    )
    bus_bytes = result.counter("bus.bytes") + result.counter("idc.dedicated_bus_bytes")
    bus_j = bits(bus_bytes) * params.bus_pj_per_bit * 1e-12
    nmp_static_j = (
        config.num_dimms * params.nmp_processor_w * to_s(result.time_ps)
        if result.mechanism != "cpu"
        else 0.0
    )
    host_j = result.counter("fwd.ops") * params.fwd_op_nj * 1e-9 + _polling_energy(
        result, config, params, polling
    )
    return EnergyReport(
        dram_j=dram_j,
        dl_link_j=dl_link_j,
        bus_j=bus_j,
        nmp_static_j=nmp_static_j,
        host_j=host_j,
    )
