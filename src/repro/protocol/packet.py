"""DL packet format and codec (transaction layer, Fig. 3-(b)).

Field allocation within the 64-bit header::

    | SRC:5 | DST:5 | CMD:4 | ADDR:37 | TAG:8 | LEN:5 |  = 64 bits

The 42-bit physical address is carried as 37 bits because the destination
DIMM id occupies the top 5 bits of the address space (Sec. III-B).  A
packet is sliced into 128-bit flits: the first flit carries the header,
each subsequent flit carries 8 bytes of payload alongside per-flit framing,
and the 64-bit tail (CRC-32 + DLL control) rides in the final flit.  LEN is
the number of payload flits; LEN=0 means a single-flit packet (e.g. a read
request).  A packet carries at most :data:`MAX_PAYLOAD` = 256 bytes, so
larger transfers are segmented by :func:`segment_payload`.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.errors import ProtocolError
from repro.protocol.crc import crc32

#: Bytes per 128-bit flit on the wire.
FLIT_BYTES = 16
#: Payload bytes carried per payload flit.
PAYLOAD_PER_FLIT = 8
#: Maximum payload flits (5-bit LEN).
MAX_PAYLOAD_FLITS = 32
#: Maximum payload bytes per packet (Sec. III-B: 256 B).
MAX_PAYLOAD = MAX_PAYLOAD_FLITS * PAYLOAD_PER_FLIT

_SRC_BITS = 5
_DST_BITS = 5
_CMD_BITS = 4
_ADDR_BITS = 37
_TAG_BITS = 8
_LEN_BITS = 5

#: DST value meaning "any DIMM may accept" (broadcast packets ignore DST).
BROADCAST_DST = (1 << _DST_BITS) - 1


class Command(enum.IntEnum):
    """Transaction-layer commands (4-bit CMD field)."""

    READ_REQ = 0
    READ_RESP = 1
    WRITE_REQ = 2
    WRITE_ACK = 3
    BROADCAST = 4
    SYNC_MSG = 5
    FWD_REQ = 6
    LOCK_REQ = 7
    LOCK_GRANT = 8
    NACK = 9


@dataclass
class Packet:
    """A transaction-layer DL packet."""

    src: int
    dst: int
    cmd: Command
    addr: int = 0
    tag: int = 0
    payload: bytes = b""
    #: data-link sequence number (set by the DLL).
    seq: int = 0
    #: credit return piggback (set by the DLL).
    credits: int = 0
    _payload_bytes: int = field(default=-1, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.src < (1 << _SRC_BITS):
            raise ProtocolError(f"SRC {self.src} out of range")
        if not 0 <= self.dst < (1 << _DST_BITS):
            raise ProtocolError(f"DST {self.dst} out of range")
        if not 0 <= self.addr < (1 << _ADDR_BITS):
            raise ProtocolError(f"ADDR {self.addr:#x} exceeds 37 bits")
        if not 0 <= self.tag < (1 << _TAG_BITS):
            raise ProtocolError(f"TAG {self.tag} out of range")
        if self.payload_bytes > MAX_PAYLOAD:
            raise ProtocolError(
                f"payload {self.payload_bytes} B exceeds {MAX_PAYLOAD} B"
            )

    @property
    def payload_bytes(self) -> int:
        """Payload size; settable without materialising bytes (sim mode)."""
        if self._payload_bytes >= 0:
            return self._payload_bytes
        return len(self.payload)

    @property
    def payload_flits(self) -> int:
        """Number of payload flits (the LEN field)."""
        nbytes = self.payload_bytes
        return (nbytes + PAYLOAD_PER_FLIT - 1) // PAYLOAD_PER_FLIT

    @property
    def total_flits(self) -> int:
        """Flits on the wire: header flit plus payload flits."""
        return 1 + self.payload_flits

    @property
    def wire_bytes(self) -> int:
        """Bytes serialised on a link for this packet."""
        return self.total_flits * FLIT_BYTES

    @property
    def is_broadcast(self) -> bool:
        """Whether any DIMM should accept this packet."""
        return self.cmd == Command.BROADCAST or self.dst == BROADCAST_DST

    @classmethod
    def sized(
        cls, src: int, dst: int, cmd: Command, nbytes: int, addr: int = 0, tag: int = 0
    ) -> "Packet":
        """A packet that *models* carrying ``nbytes`` without allocating them.

        The event simulator moves millions of packets; this constructor
        keeps them cheap while :attr:`payload_bytes` stays correct.
        """
        return cls(
            src=src, dst=dst, cmd=cmd, addr=addr, tag=tag, _payload_bytes=nbytes
        )

    # -- wire codec ----------------------------------------------------------

    def encode(self) -> bytes:
        """Serialise to bytes: 8B header | payload | 8B tail (CRC + DLL)."""
        header = (
            (self.src << (_DST_BITS + _CMD_BITS + _ADDR_BITS + _TAG_BITS + _LEN_BITS))
            | (self.dst << (_CMD_BITS + _ADDR_BITS + _TAG_BITS + _LEN_BITS))
            | (int(self.cmd) << (_ADDR_BITS + _TAG_BITS + _LEN_BITS))
            | (self.addr << (_TAG_BITS + _LEN_BITS))
            | (self.tag << _LEN_BITS)
            | (self.payload_flits & ((1 << _LEN_BITS) - 1))
        )
        head = struct.pack(">Q", header)
        body = head + self.payload
        # the CRC covers the DLL control bits too, so a corrupted sequence
        # number cannot masquerade as a different (valid) packet
        dll = bytes([self.seq & 0xFF, self.credits & 0xFF])
        crc = crc32(body + dll)
        tail = struct.pack(">IBBH", crc, self.seq & 0xFF, self.credits & 0xFF, 0)
        return body + tail

    @classmethod
    def decode(cls, wire: bytes) -> "Packet":
        """Parse bytes back into a packet, validating CRC and LEN."""
        if len(wire) < 16:
            raise ProtocolError(f"packet too short: {len(wire)} bytes")
        body, tail = wire[:-8], wire[-8:]
        crc, seq, credits, _reserved = struct.unpack(">IBBH", tail)
        if crc32(body + bytes([seq, credits])) != crc:
            raise ProtocolError("CRC mismatch")
        (header,) = struct.unpack(">Q", body[:8])
        length = header & ((1 << _LEN_BITS) - 1)
        tag = (header >> _LEN_BITS) & ((1 << _TAG_BITS) - 1)
        addr = (header >> (_TAG_BITS + _LEN_BITS)) & ((1 << _ADDR_BITS) - 1)
        cmd_val = (header >> (_ADDR_BITS + _TAG_BITS + _LEN_BITS)) & (
            (1 << _CMD_BITS) - 1
        )
        dst = (header >> (_CMD_BITS + _ADDR_BITS + _TAG_BITS + _LEN_BITS)) & (
            (1 << _DST_BITS) - 1
        )
        src = header >> (
            _DST_BITS + _CMD_BITS + _ADDR_BITS + _TAG_BITS + _LEN_BITS
        )
        payload = body[8:]
        packet = cls(
            src=src,
            dst=dst,
            cmd=Command(cmd_val),
            addr=addr,
            tag=tag,
            payload=payload,
            seq=seq,
            credits=credits,
        )
        expected = packet.payload_flits & ((1 << _LEN_BITS) - 1)
        if length != expected:
            raise ProtocolError(f"LEN field {length} != payload flits {expected}")
        return packet


def segment_payload(nbytes: int) -> List[int]:
    """Split a transfer into per-packet payload sizes (<=256 B each)."""
    if nbytes < 0:
        raise ProtocolError(f"negative transfer size {nbytes}")
    if nbytes == 0:
        return [0]
    sizes = [MAX_PAYLOAD] * (nbytes // MAX_PAYLOAD)
    remainder = nbytes % MAX_PAYLOAD
    if remainder:
        sizes.append(remainder)
    return sizes


def wire_bytes_for_transfer(nbytes: int) -> int:
    """Total wire bytes (including per-packet overhead) to move ``nbytes``."""
    total = 0
    for size in segment_payload(nbytes):
        flits = 1 + (size + PAYLOAD_PER_FLIT - 1) // PAYLOAD_PER_FLIT
        total += flits * FLIT_BYTES
    return total


def iter_packets(
    src: int, dst: int, cmd: Command, nbytes: int, addr: int = 0, tag: int = 0
) -> Iterator[Tuple[int, Packet]]:
    """Yield (offset, packet) pairs segmenting an ``nbytes`` transfer."""
    offset = 0
    for size in segment_payload(nbytes):
        yield offset, Packet.sized(src, dst, cmd, size, addr=addr, tag=tag)
        offset += size
