"""Transaction-layer bookkeeping: tags and outstanding-request matching.

Each request/response pair shares an 8-bit TAG (Fig. 3-(b)); the
:class:`TagAllocator` hands out free tags and the :class:`TransactionTable`
matches responses back to the waiting request event.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.errors import ProtocolError
from repro.sim.engine import SimEvent, Simulator

#: Tag space size (8-bit TAG field).
TAG_SPACE = 256


class TagAllocator:
    """Round-robin allocator over the 8-bit tag space."""

    def __init__(self, size: int = TAG_SPACE) -> None:
        if not 0 < size <= TAG_SPACE:
            raise ProtocolError(f"tag space size {size} invalid")
        self._free: Deque[int] = deque(range(size))
        self._in_use: set = set()

    @property
    def available(self) -> int:
        """Number of free tags."""
        return len(self._free)

    def allocate(self) -> int:
        """Take a free tag; raises :class:`ProtocolError` when exhausted."""
        if not self._free:
            raise ProtocolError("tag space exhausted")
        tag = self._free.popleft()
        self._in_use.add(tag)
        return tag

    def release(self, tag: int) -> None:
        """Return a tag to the pool."""
        if tag not in self._in_use:
            raise ProtocolError(f"tag {tag} released but not in use")
        self._in_use.remove(tag)
        self._free.append(tag)


class TransactionTable:
    """Outstanding transactions keyed by (peer, tag)."""

    def __init__(self, sim: Simulator, name: str = "txn") -> None:
        self.sim = sim
        self.name = name
        self.tags = TagAllocator()
        self._pending: Dict[Any, SimEvent] = {}

    @property
    def outstanding(self) -> int:
        """Number of transactions awaiting responses."""
        return len(self._pending)

    def open(self, peer: int) -> "tuple[int, SimEvent]":
        """Start a transaction to ``peer``; returns (tag, completion event)."""
        tag = self.tags.allocate()
        event = self.sim.event(name=f"{self.name}.t{tag}")
        self._pending[(peer, tag)] = event
        return tag, event

    def complete(self, peer: int, tag: int, value: Optional[Any] = None) -> None:
        """Match a response: fires the waiter and frees the tag."""
        key = (peer, tag)
        event = self._pending.pop(key, None)
        if event is None:
            raise ProtocolError(f"{self.name}: response for unknown txn {key}")
        self.tags.release(tag)
        event.succeed(value)

    def abort(self, peer: int, tag: int) -> None:
        """Drop a transaction without firing its event (link failure paths)."""
        key = (peer, tag)
        if self._pending.pop(key, None) is None:
            raise ProtocolError(f"{self.name}: abort of unknown txn {key}")
        self.tags.release(tag)
