"""CRC-32 (IEEE 802.3 polynomial), implemented from scratch.

The DIMM-Link data link layer protects every packet with a 32-bit CRC
(Fig. 3-(b)).  This table-driven implementation matches the standard
reflected CRC-32 (same parameters as zlib's ``crc32``), so tests can
cross-check against Python's :mod:`zlib` as a golden model.
"""

from __future__ import annotations

from typing import List

#: Reflected IEEE 802.3 polynomial.
_POLY = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, seed: int = 0) -> int:
    """CRC-32 of ``data`` (optionally continuing from ``seed``)."""
    crc = seed ^ 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def check(data: bytes, expected: int) -> bool:
    """Whether ``data`` matches a previously computed CRC."""
    return crc32(data) == expected
