"""Data link layer: CRC-checked delivery with ACK/retry and credits.

This is the functional model of Fig. 3's DLL: the sender consumes a credit
per packet, transmits the encoded bytes over a (possibly corrupting)
channel, and retransmits on timeout unless an ACK arrives.  The receiver
validates the CRC, delivers good packets exactly once (sequence numbers
filter duplicates), and returns credits on the reverse channel.

The full event-driven system model charges DLL costs as per-packet latency
and uses link credits for backpressure; this module exists to demonstrate
— and test, including with injected bit errors — that the protocol as
specified actually provides reliable, flow-controlled delivery.
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, List, Optional

from repro.errors import ProtocolError
from repro.protocol.packet import Packet
from repro.sim.engine import SimEvent, Simulator
from repro.sim.resource import SlotResource
from repro.sim.time import ns


class LossyChannel:
    """A unidirectional byte channel that can corrupt packets in flight."""

    def __init__(
        self,
        sim: Simulator,
        latency_ps: int = ns(10),
        error_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        name: str = "chan",
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ProtocolError(f"error rate {error_rate} out of [0, 1)")
        self.sim = sim
        self.latency_ps = latency_ps
        self.error_rate = error_rate
        # default seed derives from the channel name so distinct channels
        # draw decorrelated error patterns while staying reproducible
        # (a shared Random(0) made all same-named defaults corrupt in
        # lockstep)
        self.rng = rng or random.Random(zlib.crc32(name.encode()))
        self.name = name
        self.delivered = 0
        self.corrupted = 0
        self._sink: Optional[Callable[[bytes], None]] = None

    def connect(self, sink: Callable[[bytes], None]) -> None:
        """Attach the receiving endpoint."""
        self._sink = sink

    def send(self, wire: bytes) -> None:
        """Transmit bytes; a bit may be flipped with ``error_rate``."""
        if self._sink is None:
            raise ProtocolError(f"{self.name}: channel has no receiver")
        if self.error_rate and self.rng.random() < self.error_rate:
            index = self.rng.randrange(len(wire))
            wire = wire[:index] + bytes([wire[index] ^ 0x01]) + wire[index + 1 :]
            self.corrupted += 1
            if self.sim.trace.enabled:
                self.sim.trace.instant(
                    "network", "corruption", self.name, byte=index
                )
        else:
            self.delivered += 1
        self.sim.schedule(self.latency_ps, lambda data: self._sink(data), wire)


class DataLinkEndpoint:
    """One side of a DL link: reliable send + receive with credits."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "dll",
        credits: int = 8,
        ack_timeout_ps: int = ns(500),
        max_retries: int = 8,
    ) -> None:
        self.sim = sim
        self.name = name
        self.credits = SlotResource(sim, credits, name=f"{name}.credits")
        self.ack_timeout_ps = ack_timeout_ps
        self.max_retries = max_retries
        self.tx_channel: Optional[LossyChannel] = None
        self.received: List[Packet] = []
        self.retransmissions = 0
        self._next_seq = 0
        self._acks: Dict[int, SimEvent] = {}
        self._delivered_seqs: set = set()
        self._deliver: Optional[Callable[[Packet], None]] = None

    def attach(
        self, tx: LossyChannel, rx: LossyChannel, deliver: Optional[Callable[[Packet], None]] = None
    ) -> None:
        """Wire this endpoint to its transmit and receive channels."""
        self.tx_channel = tx
        rx.connect(self._on_wire)
        self._deliver = deliver

    def send(self, packet: Packet) -> SimEvent:
        """Reliably send ``packet``; the event fires once it is ACKed."""
        done = self.sim.event(name=f"{self.name}.send")
        self.sim.process(self._send_proc(packet, done), name=f"{self.name}.send")
        return done

    def _send_proc(self, packet: Packet, done: SimEvent):
        yield self.credits.acquire()
        packet.seq = self._next_seq
        self._next_seq = (self._next_seq + 1) % 256
        wire = packet.encode()
        trace = self.sim.trace
        span = (
            trace.begin(
                "network", "dll.send", self.name, seq=packet.seq, bytes=len(wire)
            )
            if trace.enabled
            else None
        )
        attempts = 0
        while True:
            if self.tx_channel is None:
                raise ProtocolError(f"{self.name}: endpoint not attached")
            attempts += 1
            ack = self.sim.event(name=f"{self.name}.ack{packet.seq}")
            self._acks[packet.seq] = ack
            self.tx_channel.send(wire)
            timeout = self.sim.timeout(self.ack_timeout_ps, value="timeout")
            result = yield _first_of(self.sim, ack, timeout)
            if result != "timeout":
                break
            if attempts > self.max_retries:
                self._acks.pop(packet.seq, None)
                trace.end(span, status="lost", attempts=attempts)
                raise ProtocolError(
                    f"{self.name}: packet seq={packet.seq} lost after "
                    f"{self.max_retries} retries"
                )
            self.retransmissions += 1
            if trace.enabled:
                trace.instant("network", "retry", self.name, seq=packet.seq)
        self.credits.release()
        trace.end(span, status="acked", attempts=attempts)
        done.succeed(packet)

    def _on_wire(self, wire: bytes) -> None:
        # ACK frames are 3 bytes: 0xA5, seq, ~seq (the complement guards
        # against a bit flip acknowledging the wrong sequence number)
        if len(wire) == 3 and wire[0] == 0xA5:
            seq, guard = wire[1], wire[2]
            if guard != (~seq & 0xFF):
                return  # corrupted ACK: drop; the sender's timeout retries
            ack = self._acks.pop(seq, None)
            if ack is not None and not ack.triggered:
                ack.succeed("acked")
            return
        try:
            packet = Packet.decode(wire)
        except ProtocolError:
            # CRC failure: drop silently; the sender's timeout drives retry.
            return
        # ACK even duplicates (their original ACK may have raced the retry)
        if self.tx_channel is not None:
            self.tx_channel.send(bytes([0xA5, packet.seq, ~packet.seq & 0xFF]))
        if packet.seq in self._delivered_seqs:
            return
        self._delivered_seqs.add(packet.seq)
        self.received.append(packet)
        if self._deliver is not None:
            self._deliver(packet)


def _first_of(sim: Simulator, *events: SimEvent) -> SimEvent:
    """An event firing with the value of whichever child fires first."""
    first = sim.event(name="first_of")

    def on_fire(ev: SimEvent) -> None:
        if not first.triggered:
            first.succeed(ev.value)

    for event in events:
        event.add_callback(on_fire)
    return first


def make_link_pair(
    sim: Simulator,
    latency_ps: int = ns(10),
    error_rate: float = 0.0,
    credits: int = 8,
    seed: int = 0,
) -> "tuple[DataLinkEndpoint, DataLinkEndpoint]":
    """Two endpoints connected by a full-duplex (possibly lossy) link."""
    rng = random.Random(seed)
    a_to_b = LossyChannel(sim, latency_ps, error_rate, rng, name="a->b")
    b_to_a = LossyChannel(sim, latency_ps, error_rate, rng, name="b->a")
    side_a = DataLinkEndpoint(sim, name="dll.a", credits=credits)
    side_b = DataLinkEndpoint(sim, name="dll.b", credits=credits)
    side_a.attach(tx=a_to_b, rx=b_to_a)
    side_b.attach(tx=b_to_a, rx=a_to_b)
    return side_a, side_b
