"""DIMM-Link packet protocol (Fig. 3): packets, CRC, DLL, transactions."""

from repro.protocol.crc import check, crc32
from repro.protocol.datalink import DataLinkEndpoint, LossyChannel, make_link_pair
from repro.protocol.packet import (
    BROADCAST_DST,
    FLIT_BYTES,
    MAX_PAYLOAD,
    MAX_PAYLOAD_FLITS,
    PAYLOAD_PER_FLIT,
    Command,
    Packet,
    iter_packets,
    segment_payload,
    wire_bytes_for_transfer,
)
from repro.protocol.transaction import TAG_SPACE, TagAllocator, TransactionTable

__all__ = [
    "check",
    "crc32",
    "DataLinkEndpoint",
    "LossyChannel",
    "make_link_pair",
    "BROADCAST_DST",
    "FLIT_BYTES",
    "MAX_PAYLOAD",
    "MAX_PAYLOAD_FLITS",
    "PAYLOAD_PER_FLIT",
    "Command",
    "Packet",
    "iter_packets",
    "segment_payload",
    "wire_bytes_for_transfer",
    "TAG_SPACE",
    "TagAllocator",
    "TransactionTable",
]
