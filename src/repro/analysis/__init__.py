"""Result analysis: geomeans, speedups, table rendering."""

from repro.analysis.report import format_table, geomean, speedups
from repro.analysis.sweep import Sweep

__all__ = ["format_table", "geomean", "speedups", "Sweep"]
