"""Generic parameter-sweep runner.

Experiments like Fig. 16 are sweeps of a single knob over a run function;
this helper factors the pattern so ad-hoc studies (examples, notebooks)
can reuse it: a :class:`Sweep` maps each parameter value to a result row
and renders the outcome as a table.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence

from repro.analysis.report import format_table


class Sweep:
    """Run ``func(value)`` for every value of one named parameter."""

    def __init__(
        self,
        parameter: str,
        values: Iterable,
        func: Callable[[object], Mapping[str, object]],
    ) -> None:
        self.parameter = parameter
        self.values = list(values)
        self.func = func
        self.rows: List[Dict[str, object]] = []

    def run(self) -> List[Dict[str, object]]:
        """Execute the sweep; each row carries the parameter value."""
        self.rows = []
        for value in self.values:
            row = dict(self.func(value))
            row[self.parameter] = value
            self.rows.append(row)
        return self.rows

    def column(self, name: str) -> List[object]:
        """Extract one result column across the sweep."""
        if not self.rows:
            raise RuntimeError("sweep has not been run")
        return [row[name] for row in self.rows]

    def best(self, metric: str, maximize: bool = True):
        """The parameter value optimising ``metric``."""
        column = self.column(metric)
        pick = max if maximize else min
        index = column.index(pick(column))
        return self.values[index]

    def table(self, columns: Sequence[str]) -> str:
        """Render selected columns (parameter first) as an ASCII table."""
        headers = [self.parameter] + list(columns)
        body = [
            [row[self.parameter]] + [row[c] for c in columns] for row in self.rows
        ]
        return format_table(headers, body)
