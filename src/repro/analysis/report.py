"""Reporting helpers: geomeans, speedups, percentiles, ASCII tables."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.sim.stats import Histogram


def histogram_percentile(histograms: Sequence[Histogram], q: float) -> float:
    """Approximate q-quantile (``q`` in [0, 1]) over merged histograms.

    Per-core latency histograms (e.g. every ``dimm*.dlrm.batch_ps``)
    only keep log2 buckets, so the quantile is read from the merged
    bucket counts: the answer is the holding bucket's upper edge
    ``2^(b+1)``, clamped into the exact observed [min, max] so p0/p100
    are tight and a single-bucket distribution reports its true range
    rather than a power of two.  Returns 0.0 when no samples exist.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    merged: Dict[int, int] = {}
    total = 0
    lo: float = math.inf
    hi: float = -math.inf
    for hist in histograms:
        total += hist.count
        if hist.min is not None:
            lo = min(lo, hist.min)
        if hist.max is not None:
            hi = max(hi, hist.max)
        for bucket, count in hist.buckets():
            merged[bucket] = merged.get(bucket, 0) + count
    if not total:
        return 0.0
    rank = max(1, math.ceil(q * total))
    cumulative = 0
    for bucket in sorted(merged):
        cumulative += merged[bucket]
        if cumulative >= rank:
            value = 0.0 if bucket == Histogram.NONPOS_BUCKET else 2.0 ** (bucket + 1)
            return min(max(value, lo), hi)
    return hi


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean needs positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedups(baseline: Dict[str, float], candidate: Dict[str, float]) -> Dict[str, float]:
    """Per-key baseline/candidate time ratios (higher = candidate faster)."""
    missing = set(baseline) ^ set(candidate)
    if missing:
        raise ValueError(f"mismatched keys: {sorted(missing)}")
    return {k: baseline[k] / candidate[k] for k in baseline}


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render a fixed-width ASCII table (the benches' output format)."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    rendered: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
