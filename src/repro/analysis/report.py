"""Reporting helpers: geomeans, speedups, ASCII tables."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean needs positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedups(baseline: Dict[str, float], candidate: Dict[str, float]) -> Dict[str, float]:
    """Per-key baseline/candidate time ratios (higher = candidate faster)."""
    missing = set(baseline) ^ set(candidate)
    if missing:
        raise ValueError(f"mismatched keys: {sorted(missing)}")
    return {k: baseline[k] / candidate[k] for k in baseline}


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render a fixed-width ASCII table (the benches' output format)."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    rendered: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
