"""Tests for the tracing/observability layer (repro.trace)."""

import json

from repro.sim import Simulator, StatRegistry
from repro.sim.time import ns
from repro.trace import (
    NULL_RECORDER,
    TimeSeriesSampler,
    TraceRecorder,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
)


# -- recorder ----------------------------------------------------------------------


def test_simulator_defaults_to_null_recorder():
    sim = Simulator()
    assert sim.trace is NULL_RECORDER
    assert not sim.trace.enabled
    # every NullRecorder method is a no-op
    assert sim.trace.begin("network", "x", "g") is None
    sim.trace.end(None, status="ok")
    sim.trace.instant("network", "x")
    sim.trace.on_time_advance(123)


def test_recorder_spans_capture_sim_time():
    sim = Simulator()
    rec = TraceRecorder(sim)
    sim.trace = rec

    def proc():
        span = rec.begin("nmp", "thread", "core0", thread=3)
        yield 100
        rec.end(span, status="done")

    sim.run_process(proc())
    assert len(rec.spans) == 1
    cat, name, group, lane, start, end, args = rec.spans[0]
    assert (cat, name, group, lane) == ("nmp", "thread", "core0", 0)
    assert (start, end) == (0, 100)
    assert args == {"thread": 3, "status": "done"}


def test_recorder_concurrent_spans_get_distinct_lanes():
    sim = Simulator()
    rec = TraceRecorder(sim)
    a = rec.begin("network", "pkt", "link")
    b = rec.begin("network", "pkt", "link")
    assert (a.lane, b.lane) == (0, 1)
    rec.end(a)
    c = rec.begin("network", "pkt", "link")
    assert c.lane == 0  # freed lane is reused
    rec.end(b)
    rec.end(c)
    assert {record[3] for record in rec.spans} == {0, 1}


def test_recorder_complete_and_instant_and_categories():
    sim = Simulator()
    rec = TraceRecorder(sim)
    rec.complete("dram", "row_hit", "rank0.bank1", 10, 25, row=7)
    rec.instant("host", "poll.notice", "host.poll")
    assert rec.categories() == ["dram", "host"]


def test_recorder_caps_events_and_counts_drops():
    sim = Simulator()
    rec = TraceRecorder(sim, max_events=2)
    for _ in range(4):
        rec.complete("dram", "x", "g", 0, 1)
    assert len(rec.spans) == 2
    assert rec.dropped == 2


# -- sampler -----------------------------------------------------------------------


def test_sampler_windows_counter_deltas():
    stats = StatRegistry()
    sampler = TimeSeriesSampler(stats, window_ps=100)
    stats.add("dl.hop_bytes", 64)
    sampler.on_time_advance(100)
    stats.add("dl.hop_bytes", 32)
    sampler.on_time_advance(250)  # crosses 200 only
    assert sampler.series("dl.hop_bytes") == [(100, 64.0), (200, 32.0)]
    # rate: delta per ns; 64 bytes over a 100 ps window = 640 bytes/ns
    assert sampler.rate_series("dl.hop_bytes")[0] == (100, 640.0)


def test_sampler_finalize_emits_partial_window_once():
    stats = StatRegistry()
    sampler = TimeSeriesSampler(stats, window_ps=100)
    stats.add("x", 5)
    sampler.on_time_advance(100)
    stats.add("x", 3)
    sampler.finalize(150)
    sampler.finalize(150)  # idempotent
    assert sampler.series("x") == [(100, 5.0), (150, 3.0)]


def test_sampler_prefix_filter_uses_component_matching():
    stats = StatRegistry()
    sampler = TimeSeriesSampler(stats, window_ps=10, prefixes=("dl",))
    stats.add("dl.hops", 1)
    stats.add("dlx.other", 1)
    sampler.on_time_advance(10)
    assert sampler.tracked_names() == ["dl.hops"]


def test_sampler_driven_by_event_loop_without_injecting_events():
    sim = Simulator()
    stats = StatRegistry()
    rec = TraceRecorder(sim)
    sampler = TimeSeriesSampler(stats, window_ps=ns(10))
    rec.add_sampler(sampler)
    sim.trace = rec

    def proc():
        for _ in range(5):
            stats.add("bytes", 100)
            yield ns(10)

    sim.run_process(proc())
    rec.finalize()
    # the sampler must not extend simulated time beyond the last real event
    assert sim.now == ns(50)
    assert sum(delta for _t, delta in sampler.series("bytes")) == 500


def test_sampler_sees_run_until_horizon():
    # the run(until=...) clock fix must also advance samplers to the horizon
    sim = Simulator()
    stats = StatRegistry()
    rec = TraceRecorder(sim)
    sampler = TimeSeriesSampler(stats, window_ps=100)
    rec.add_sampler(sampler)
    sim.trace = rec
    sim.schedule(50, lambda _: stats.add("x", 1))
    sim.run(until=300)
    assert sim.now == 300
    assert sampler.series("x") == [(100, 1.0), (200, 0.0), (300, 0.0)]


# -- exporters ---------------------------------------------------------------------


def _small_recording():
    sim = Simulator()
    rec = TraceRecorder(sim)
    stats = StatRegistry()
    sampler = TimeSeriesSampler(stats, window_ps=100)
    rec.add_sampler(sampler)
    rec.complete("dram", "row_hit", "rank0.bank0", 0, 50, row=1)
    span = rec.begin("network", "packet", "dl.route", src=0, dst=2)
    rec.end(span, status="delivered")
    rec.instant("host", "poll.notice", "host.poll")
    stats.add("dl.hop_bytes", 64)
    sampler.on_time_advance(100)
    return rec


def test_chrome_trace_events_schema():
    events = chrome_trace_events(_small_recording())
    phases = {event["ph"] for event in events}
    assert {"M", "X", "i", "C"} <= phases
    for event in events:
        assert "pid" in event
        if event["ph"] == "X":
            assert event["dur"] >= 0
            assert isinstance(event["ts"], float)
            assert event["cat"] in ("dram", "network")


def test_write_chrome_trace_is_loadable_json(tmp_path):
    path = tmp_path / "out.trace.json"
    write_chrome_trace(_small_recording(), str(path))
    doc = json.loads(path.read_text())
    assert isinstance(doc["traceEvents"], list)
    assert doc["displayTimeUnit"] == "ns"
    assert doc["otherData"]["dropped"] == 0


def test_write_jsonl_round_trips(tmp_path):
    path = tmp_path / "out.trace.jsonl"
    write_jsonl(_small_recording(), str(path))
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert rows[0]["type"] == "meta"
    assert rows[0]["categories"] == ["dram", "host", "network"]
    kinds = {row["type"] for row in rows}
    assert kinds == {"meta", "span", "instant", "sample"}
    span_rows = [row for row in rows if row["type"] == "span"]
    assert all(row["end_ps"] >= row["start_ps"] for row in span_rows)


# -- end-to-end through a real system ----------------------------------------------


def test_traced_system_run_covers_span_taxonomy():
    from repro.experiments.trace_run import run_traced

    traced = run_traced("fig10", size="tiny")
    rec = traced["recorder"]
    cats = set(rec.categories())
    assert {"network", "dram", "host", "nmp"} <= cats
    sampler = traced["sampler"]
    assert sampler.samples
    # the sampled deltas must add up to the final counter totals
    total = sum(delta for _t, delta in sampler.series("dl.hop_bytes"))
    assert total == traced["result"].stats.get("dl.hop_bytes")


def test_untraced_system_records_nothing():
    from repro.config import SystemConfig
    from repro.experiments.common import build_workload, run_nmp

    workload = build_workload("hotspot", "tiny")
    result = run_nmp(SystemConfig.named("4D-2C"), workload, "dimm_link")
    assert result.time_ps > 0  # ran fine with the NULL_RECORDER default
