"""Tests for the disaggregated-memory extension (Sec. VI)."""

import pytest

from repro.core.disaggregated import (
    CXL,
    ETHERNET,
    FABRICS,
    RDMA,
    DisaggregatedMemory,
    fabric,
)
from repro.errors import ConfigError, RoutingError
from repro.experiments import disaggregated_memory


def test_fabric_lookup():
    assert fabric("cxl") is CXL
    assert fabric("rdma") is RDMA
    assert fabric("ethernet") is ETHERNET
    with pytest.raises(ConfigError):
        fabric("carrier-pigeon")


def test_fabric_latency_ordering():
    assert CXL.latency_ns < RDMA.latency_ns < ETHERNET.latency_ns
    assert CXL.bandwidth_gbps > RDMA.bandwidth_gbps > ETHERNET.bandwidth_gbps


def test_cluster_construction_and_locate():
    cluster = DisaggregatedMemory(num_blades=2, blade_config="4D-2C")
    assert cluster.dimms_per_blade == 4
    assert cluster.locate(0) == (0, 0)
    assert cluster.locate(5) == (1, 1)
    with pytest.raises(RoutingError):
        cluster.locate(99)


def test_intra_blade_transfer_uses_dimm_link():
    cluster = DisaggregatedMemory(num_blades=2, blade_config="4D-2C")
    done = []
    cluster.transfer(0, 1, 4096).add_callback(lambda ev: done.append(True))
    cluster.sim.run()
    assert done == [True]
    assert cluster.stats.get("disagg.intra_blade_bytes") == 4096
    assert cluster.stats.get("disagg.inter_blade_bytes", 0) == 0


def test_inter_blade_transfer_crosses_fabric():
    cluster = DisaggregatedMemory(num_blades=2, blade_config="4D-2C")
    done = []
    cluster.transfer(0, 4, 4096).add_callback(lambda ev: done.append(True))
    cluster.sim.run()
    assert done == [True]
    assert cluster.stats.get("disagg.inter_blade_bytes") == 4096


def test_intra_blade_faster_than_inter_blade():
    intra = DisaggregatedMemory(2, "4D-2C").measure_bandwidth(0, 1, 1 << 18)
    inter = DisaggregatedMemory(2, "4D-2C").measure_bandwidth(0, 4, 1 << 18)
    assert intra > inter


def test_cxl_beats_ethernet_inter_blade():
    cxl = DisaggregatedMemory(2, "4D-2C", "cxl").measure_bandwidth(0, 4, 1 << 18)
    eth = DisaggregatedMemory(2, "4D-2C", "ethernet").measure_bandwidth(0, 4, 1 << 18)
    assert cxl > eth


def test_invalid_blade_count():
    with pytest.raises(ConfigError):
        DisaggregatedMemory(num_blades=0)


def test_experiment_rows_cover_all_fabrics():
    rows = disaggregated_memory.run(nbytes=1 << 16, blade_config="4D-2C")
    assert {r["fabric"] for r in rows} == set(FABRICS)
    for row in rows:
        assert row["gap_x"] > 1.0
