"""Service chaos suite: the network fault points and the exactly-once
acceptance bar for the socket fabric.

Two families, mirroring ``test_fabric_chaos``:

* **Raise-mode provokers** — every ``net.*`` fault point is armed
  in-process and driven through a real server + client; the retry
  discipline must absorb the fault and converge to the same journaled
  state (no double-enqueue, no double-count, no lost ACK).
* **Subprocess ``:exit`` chaos** — a real server process and a real
  netbroker worker process; the armed side hard-exits (``os._exit``, no
  cleanup) at its nastiest instruction, is restarted, and the sweep must
  still finish with results byte-identical to a serial in-process run.
"""

import contextlib
import os
import re
import signal
import socket as socket_module
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.runner import SweepRunner
from repro.fabric import faultpoints
from repro.fabric.broker import BrokerConfig, WorkBroker
from repro.fabric.faultpoints import InjectedFaultError
from repro.fabric.netbroker import NetBroker
from repro.fabric.worker import Worker
from repro.results_cache import ResultsCache
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.server import ReproService, ServiceThread
from tests.test_fabric import grid
from tests.test_results_cache import fake_result

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    faultpoints.reset()
    yield
    faultpoints.reset()


@contextlib.contextmanager
def serve(tmp_path, **service_kwargs):
    service_kwargs.setdefault(
        "config", BrokerConfig(lease_ttl_s=5.0, backoff_s=0.01)
    )
    service_kwargs.setdefault("durable", False)
    service_kwargs.setdefault("poll_interval_s", 0.02)
    service = ReproService(tmp_path / "broker", **service_kwargs)
    thread = ServiceThread(service).start()
    try:
        yield service, thread
    finally:
        faultpoints.reset()  # never drain with a live fault armed
        thread.drain(timeout_s=30.0)


def fast_client(thread, **kwargs):
    kwargs.setdefault("timeout_s", 0.4)
    kwargs.setdefault("retries", 6)
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return ServiceClient(thread.address, **kwargs)


# -- raise-mode provokers ------------------------------------------------------------


def _provoke_torn_write(service, thread):
    """Half a frame reaches the wire, then the sender dies; the peer
    must treat it as a dropped connection, never act on the half."""
    client = fast_client(thread)
    spec = grid(1)[0]
    client.submit([spec])
    before = client.counts()
    faultpoints.arm("net.frame.torn_write", mode="raise")
    with pytest.raises(InjectedFaultError):
        client.submit([spec])  # dies mid-send: the request never lands
    client.close()  # the "restarted" sender comes back on a fresh socket
    # the torn half-frame journaled nothing and dedup still holds
    assert client.counts() == before
    assert client.submit([spec])["report"]["inflight"] == 1
    client.close()


def _provoke_half_open(service, thread):
    """The server reads a request and never replies; the client's
    timeout converts the silence into a reconnect-and-retry."""
    client = fast_client(thread)
    faultpoints.arm("net.conn.half_open", mode="raise")
    reply = client.hello()  # first attempt is swallowed silently
    assert reply["ok"] and reply["server"] == "dimmlink-repro"
    assert client.reconnects >= 1
    client.close()


def _provoke_drop_ack(service, thread):
    """A renew is applied server-side but its ACK dies; the retried
    renew must confirm the lease rather than report it lost."""
    client = fast_client(thread)
    spec = grid(1)[0]
    key = spec.cache_key()
    client.submit([spec])
    assert client.call("claim", worker="w1")["record"]["key"] == key
    faultpoints.arm("net.heartbeat.drop_ack", mode="raise")
    reply = client.call("renew", key=key, worker="w1")
    assert reply["renewed"] is True
    assert service.broker.leases.holder(key)[0] == "w1"
    client.close()


def _provoke_outcome_delayed(service, thread):
    """The outcome reply is stalled past the client timeout; the
    idempotent retry converges to exactly one ``done``."""
    client = fast_client(thread, retries=8)
    spec = grid(1)[0]
    key = spec.cache_key()
    client.submit([spec])
    client.call("claim", worker="w1")
    client.call(
        "cache_put", key=key, result=fake_result(spec).to_json_dict(),
        spec=spec.to_json_dict(),
    )
    faultpoints.arm("net.outcome.delayed", mode="raise")
    reply = client.call("complete", key=key, worker="w1")
    assert reply["completed"] is True
    counts = client.counts([key])
    assert counts["done"] == 1 and counts["total"] == 1
    client.close()


def _provoke_exit_mid_reply(service, thread):
    """The transition is journaled, the reply never leaves the server —
    exactly-once's worst case.  The retry must fold into the already
    journaled ``done`` without double-counting."""
    client = fast_client(thread)
    spec = grid(1)[0]
    key = spec.cache_key()
    client.submit([spec])
    client.call("claim", worker="w1")
    client.call(
        "cache_put", key=key, result=fake_result(spec).to_json_dict(),
        spec=spec.to_json_dict(),
    )
    faultpoints.arm("net.server.exit_mid_reply", mode="raise")
    reply = client.call("complete", key=key, worker="w1")
    assert reply["completed"] is True
    counts = client.counts([key])
    assert counts["done"] == 1 and counts["total"] == 1
    assert service.broker.leases.live_count() == 0
    client.close()


def _provoke_reconnect_storm(service, thread):
    """A flapping link tears the connection after every exchange; the
    jittered backoff keeps each retry independent and the RPCs lossless."""
    client = fast_client(thread)
    faultpoints.arm("net.client.reconnect_storm", mode="raise")
    assert client.hello()["ok"]
    assert client.reconnects >= 1
    reconnects = client.reconnects
    assert client.counts()["total"] == 0  # next RPC works on a fresh conn
    assert client.reconnects == reconnects  # storm was one-shot
    client.close()


NET_PROVOKE = {
    "net.frame.torn_write": _provoke_torn_write,
    "net.conn.half_open": _provoke_half_open,
    "net.heartbeat.drop_ack": _provoke_drop_ack,
    "net.outcome.delayed": _provoke_outcome_delayed,
    "net.server.exit_mid_reply": _provoke_exit_mid_reply,
    "net.client.reconnect_storm": _provoke_reconnect_storm,
}


def test_every_net_fault_point_has_a_provoker():
    assert set(NET_PROVOKE) == set(faultpoints.NET_POINTS)


@pytest.mark.parametrize("point", faultpoints.NET_POINTS)
def test_net_fault_point_recovers_in_process(tmp_path, point):
    with serve(tmp_path) as (service, thread):
        NET_PROVOKE[point](service, thread)


# -- subprocess :exit chaos ----------------------------------------------------------

#: which process hosts each fault point's trip in a real farm.
ARMED_SIDE = {
    "net.frame.torn_write": "worker",
    "net.conn.half_open": "server",
    "net.heartbeat.drop_ack": "server",
    "net.outcome.delayed": "server",
    "net.server.exit_mid_reply": "server",
    "net.client.reconnect_storm": "worker",
}

#: worker-armed points self-arm *after* the first completed spec so the
#: hard exit lands mid-sweep, not at the handshake.
CHAOS_WORKER_SCRIPT = '''\
import sys, time

from repro.fabric import faultpoints
from repro.fabric.netbroker import NetBroker
from repro.fabric.worker import Worker
from tests.test_results_cache import fake_result

address, sleep_s, arm_point = sys.argv[1], float(sys.argv[2]), sys.argv[3]


def execute(spec):
    time.sleep(sleep_s)
    return fake_result(spec)


while True:
    try:
        broker = NetBroker(
            address, retries=20, backoff_s=0.05, backoff_cap_s=0.25
        )
        if arm_point != "-":
            journal_complete = broker.complete

            def arming_complete(key, worker):
                outcome = journal_complete(key, worker)
                faultpoints.arm(arm_point, mode="exit")
                return outcome

            broker.complete = arming_complete
        worker = Worker(broker, execute=execute, poll_interval_s=0.05)
        worker.run()
        break
    except Exception:
        time.sleep(0.2)  # server restarting: try again from scratch
'''


def _chaos_env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), str(REPO)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop(faultpoints.ENV_VAR, None)
    env.update(extra or {})
    return env


def _spawn_server(root, port, fault=None):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", str(root),
         "--port", str(port), "--lease-ttl", "0.5"],
        cwd=REPO,
        env=_chaos_env({faultpoints.ENV_VAR: fault} if fault else None),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"tcp://127\.0\.0\.1:(\d+)", line)
    assert match, f"server never announced its port: {line!r}"
    return proc, int(match.group(1))


def _spawn_chaos_worker(script, address, sleep_s, arm_point):
    return subprocess.Popen(
        [sys.executable, str(script), address, str(sleep_s), arm_point],
        cwd=REPO,
        env=_chaos_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@pytest.mark.parametrize("point", faultpoints.NET_POINTS)
def test_exit_mode_chaos_recovers_to_byte_identical_results(tmp_path, point):
    """The acceptance bar: arm each net point in ``:exit`` mode on its
    natural side, let the armed process die for real, restart it, and
    the sweep must converge to done with cache files byte-identical to
    a serial run — exactly once, zero leaked leases."""
    armed_side = ARMED_SIDE[point]
    specs = grid(4)
    root = tmp_path / "broker"
    file_broker = WorkBroker(
        root,
        config=BrokerConfig(retries=5, lease_ttl_s=0.5, backoff_s=0.01,
                            backoff_cap_s=0.05),
    )
    # journal the grid before any socket traffic so even a server that
    # dies on its first request (half_open) recovers mid-sweep state
    assert file_broker.submit(specs).enqueued == len(specs)

    script = tmp_path / "chaos_worker.py"
    script.write_text(CHAOS_WORKER_SCRIPT)
    server_fault = f"{point}:exit" if armed_side == "server" else None
    worker_arm = point if armed_side == "worker" else "-"

    server, port = _spawn_server(root, 0, fault=server_fault)
    address = f"tcp://127.0.0.1:{port}"
    worker = _spawn_chaos_worker(script, address, 0.35, worker_arm)
    procs = [server, worker]
    restarted = {"server": False, "worker": False}
    crashed = {"server": False, "worker": False}
    try:
        deadline = time.monotonic() + 90.0
        while not file_broker.drained():
            assert time.monotonic() < deadline, (
                f"{point}: sweep did not converge; counts="
                f"{file_broker.counts()} restarted={restarted}"
            )
            if server.poll() is not None and not restarted["server"]:
                assert server.returncode == faultpoints.EXIT_STATUS, (
                    f"server died with {server.returncode}, not the fault"
                )
                crashed["server"] = True
                restarted["server"] = True
                server, _ = _spawn_server(root, port, fault=None)
                procs.append(server)
            if worker.poll() is not None and not restarted["worker"]:
                assert worker.returncode == faultpoints.EXIT_STATUS, (
                    f"worker died with {worker.returncode}, not the fault"
                )
                crashed["worker"] = True
                restarted["worker"] = True
                worker = _spawn_chaos_worker(script, address, 0.35, "-")
                procs.append(worker)
            time.sleep(0.05)
        # the armed process must actually have died — otherwise the
        # point never fired and this test proved nothing
        if not crashed[armed_side]:
            victim = server if armed_side == "server" else worker
            assert victim.wait(timeout=30) == faultpoints.EXIT_STATUS
        assert worker.wait(timeout=30) == 0  # drains and exits cleanly
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    counts = file_broker.counts()
    assert counts["done"] == len(specs), counts
    assert counts["total"] == len(specs), counts  # exactly once, no dupes
    assert counts["dead"] == 0, counts
    # zero leaked leases once the dust settles
    time.sleep(0.6)  # one TTL: any orphan from the dead process expires
    assert file_broker.leases.live_count() == 0
    # byte-identical to the serial reference
    serial = SweepRunner(
        jobs=1, cache=ResultsCache(tmp_path / "serial"), execute=fake_result
    )
    serial.run(specs)
    for spec in specs:
        key = spec.cache_key()
        assert file_broker.cache.path_for(key).read_bytes() == (
            serial.cache.path_for(key).read_bytes()
        ), f"{point}: result for {key} is not byte-identical"
