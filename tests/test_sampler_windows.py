"""Window-edge regression suite for :class:`TimeSeriesSampler`.

The trailing partial window used to be divided by the *nominal*
``window_ps`` in :meth:`rate_series`, under-reporting the final rate by
``actual_width / window_ps``.  Samples now carry their actual width, and
these tests pin the edges: runs ending exactly on a boundary, runs
shorter than one window, and finalize-after-resume realignment.
"""

from repro.sim import StatRegistry
from repro.trace import TimeSeriesSampler


def test_partial_window_rate_uses_actual_width():
    stats = StatRegistry()
    sampler = TimeSeriesSampler(stats, window_ps=100)
    stats.add("dl.bytes", 64)
    sampler.on_time_advance(100)
    stats.add("dl.bytes", 50)
    sampler.finalize(150)
    assert sampler.series("dl.bytes") == [(100, 64.0), (150, 50.0)]
    assert sampler.widths == [100, 50]
    # 50 bytes over the *actual* 50 ps tail = 1000 bytes/ns, not 500
    assert sampler.rate_series("dl.bytes") == [(100, 640.0), (150, 1000.0)]


def test_run_ending_exactly_on_boundary_emits_nothing_extra():
    stats = StatRegistry()
    sampler = TimeSeriesSampler(stats, window_ps=100)
    stats.add("x", 1)
    sampler.on_time_advance(100)
    stats.add("x", 2)
    sampler.on_time_advance(200)
    sampler.finalize(200)  # boundary-exact end: no partial window
    assert sampler.series("x") == [(100, 1.0), (200, 2.0)]
    assert sampler.widths == [100, 100]


def test_run_shorter_than_one_window():
    stats = StatRegistry()
    sampler = TimeSeriesSampler(stats, window_ps=1_000)
    stats.add("x", 30)
    sampler.finalize(60)
    assert sampler.series("x") == [(60, 30.0)]
    assert sampler.widths == [60]
    assert sampler.rate_series("x") == [(60, 30.0 * 1000.0 / 60.0)]


def test_finalize_after_resume_realigns_boundaries():
    stats = StatRegistry()
    sampler = TimeSeriesSampler(stats, window_ps=100)
    stats.add("x", 4)
    sampler.on_time_advance(100)
    stats.add("x", 6)
    sampler.finalize(150)  # first segment ends mid-window

    # resumed run: boundaries realign to 150 + k * 100
    stats.add("x", 8)
    sampler.on_time_advance(250)
    stats.add("x", 10)
    sampler.finalize(300)

    assert sampler.series("x") == [
        (100, 4.0),
        (150, 6.0),
        (250, 8.0),
        (300, 10.0),
    ]
    assert sampler.widths == [100, 50, 100, 50]
    rates = sampler.rate_series("x")
    assert rates[1] == (150, 6.0 * 1000.0 / 50.0)
    assert rates[3] == (300, 10.0 * 1000.0 / 50.0)


def test_empty_windows_still_track_width():
    stats = StatRegistry()
    sampler = TimeSeriesSampler(stats, window_ps=100)
    sampler.on_time_advance(350)  # three boundaries crossed, no counters
    sampler.finalize(350)
    assert sampler.widths == [100, 100, 100, 50]
    assert sampler.samples[-1][0] == 350
