"""Cross-mechanism conservation and consistency invariants.

The four IDC mechanisms differ in *where* bytes travel and *how long*
transfers take, but the same workload must generate the same payload
demand on every system — and a handful of physical invariants must hold
regardless of mechanism.
"""

import pytest

from repro.config import SystemConfig
from repro.experiments.headline import PAPER, run as run_headline
from repro.idc import mechanism_names
from repro.nmp.system import NMPSystem
from repro.workloads.microbench import UniformRandom


@pytest.fixture(scope="module")
def per_mechanism_results():
    workload = UniformRandom(
        ops_per_thread=60, remote_fraction=0.4, write_fraction=0.3, seed=17
    )
    results = {}
    for mech in mechanism_names():
        system = NMPSystem(SystemConfig.named("8D-4C"), idc=mech)
        results[mech] = system.run(
            workload.thread_factories(32, 8), workload_name="uniform"
        )
    return results


def test_same_op_counts_on_every_mechanism(per_mechanism_results):
    counts = {
        mech: (r.counter("core.mem_ops"), r.counter("core.remote_ops"))
        for mech, r in per_mechanism_results.items()
    }
    assert len(set(counts.values())) == 1


def test_same_local_payload_on_every_mechanism(per_mechanism_results):
    locals_ = {
        mech: r.traffic_breakdown["local"]
        for mech, r in per_mechanism_results.items()
    }
    assert len(set(locals_.values())) == 1


def test_remote_payload_conserved_across_mechanisms(per_mechanism_results):
    # remote demand (bytes requested) equals remote payload moved,
    # whatever medium carried it
    expected = {
        mech: r.counter("core.remote_bytes")
        for mech, r in per_mechanism_results.items()
    }
    assert len(set(expected.values())) == 1
    for mech, result in per_mechanism_results.items():
        breakdown = result.traffic_breakdown
        moved = breakdown["intra_group"] + breakdown["forwarded"]
        # AIM counts command wire separately; payload accounting must match
        payload = (
            result.counter("idc.bus_payload_bytes")
            if mech == "aim"
            else moved
        )
        assert payload == expected[mech]


def test_dram_bytes_at_least_payload(per_mechanism_results):
    for result in per_mechanism_results.values():
        dram = result.counter("dram.read_bytes") + result.counter("dram.write_bytes")
        payload = sum(result.traffic_breakdown.values())
        # every payload byte touches DRAM somewhere (cache hits excluded
        # from payload already; remote reads touch the far DRAM)
        assert dram >= 0.5 * payload


def test_time_ordering_matches_fig10_at_this_scale(per_mechanism_results):
    times = {m: r.time_ps for m, r in per_mechanism_results.items()}
    assert times["dimm_link"] < times["mcn"]


def test_headline_quantities_present_and_sane():
    measured = run_headline(size="tiny", quick=True)
    assert set(measured) == set(PAPER)
    assert measured["dl_opt_over_mcn"] > 1.0
    for value in measured.values():
        assert value > 0
