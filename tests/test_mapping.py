"""Tests for distance-aware task mapping (profiling, MCMF, Algorithm 1)."""

import networkx as nx
import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import MappingError
from repro.mapping.mcmf import MinCostMaxFlow
from repro.mapping.placement import (
    cost_table,
    distance_aware_placement,
    distance_matrix,
    placement_cost,
    solve_placement,
)
from repro.mapping.profile import profile_traffic
from repro.workloads.ops import Compute, Read, Write


# -- min-cost max-flow ------------------------------------------------------------

def test_mcmf_simple_path():
    net = MinCostMaxFlow(3)
    net.add_edge(0, 1, capacity=5, cost=1.0)
    net.add_edge(1, 2, capacity=3, cost=2.0)
    flow, cost = net.solve(0, 2)
    assert flow == 3
    assert cost == pytest.approx(9.0)


def test_mcmf_prefers_cheaper_route():
    net = MinCostMaxFlow(4)
    cheap = net.add_edge(0, 1, 1, 1.0)
    net.add_edge(1, 3, 1, 1.0)
    expensive = net.add_edge(0, 2, 1, 10.0)
    net.add_edge(2, 3, 1, 10.0)
    flow, cost = net.solve(0, 3)
    assert flow == 2
    assert cost == pytest.approx(22.0)
    assert net.flow_on(cheap) == 1
    assert net.flow_on(expensive) == 1


def test_mcmf_matches_networkx_on_random_bipartite():
    rng = np.random.default_rng(3)
    threads, dimms = 6, 3
    costs = rng.integers(1, 20, size=(threads, dimms)).astype(float)
    placement = solve_placement(costs, threads_per_dimm=2)
    ours = placement_cost(placement, costs)

    graph = nx.DiGraph()
    for t in range(threads):
        graph.add_edge("s", f"t{t}", capacity=1, weight=0)
        for d in range(dimms):
            graph.add_edge(f"t{t}", f"d{d}", capacity=1, weight=int(costs[t, d]))
    for d in range(dimms):
        graph.add_edge(f"d{d}", "k", capacity=2, weight=0)
    flow_dict = nx.max_flow_min_cost(graph, "s", "k")
    reference = sum(
        costs[t, d] * flow_dict[f"t{t}"].get(f"d{d}", 0)
        for t in range(threads)
        for d in range(dimms)
    )
    assert ours == pytest.approx(reference)


def test_mcmf_validates_inputs():
    with pytest.raises(MappingError):
        MinCostMaxFlow(0)
    net = MinCostMaxFlow(2)
    with pytest.raises(MappingError):
        net.add_edge(0, 5, 1, 0.0)
    with pytest.raises(MappingError):
        net.solve(1, 1)


# -- profiling ----------------------------------------------------------------------

def test_profile_counts_read_write_bytes_per_dimm():
    def factory():
        return iter([
            Compute(10),
            Read(dimm=0, offset=0, nbytes=100),
            Write(dimm=2, offset=0, nbytes=50),
            Read(dimm=0, offset=64, nbytes=10),
        ])

    table = profile_traffic([factory], num_dimms=4)
    assert table.shape == (1, 4)
    assert table[0, 0] == 110
    assert table[0, 2] == 50
    assert table[0, 1] == table[0, 3] == 0


def test_profile_truncation():
    def factory():
        return iter([Read(dimm=0, offset=0, nbytes=10)] * 100)

    table = profile_traffic([factory], num_dimms=1, max_ops_per_thread=10)
    assert table[0, 0] == 100


def test_profile_rejects_unknown_dimm():
    def factory():
        return iter([Read(dimm=7, offset=0, nbytes=10)])

    with pytest.raises(MappingError):
        profile_traffic([factory], num_dimms=4)


# -- Algorithm 1 --------------------------------------------------------------------

def test_cost_table_formula():
    traffic = np.array([[100.0, 0.0], [0.0, 100.0]])
    distances = np.array([[0.0, 3.0], [3.0, 0.0]])
    costs = cost_table(traffic, distances)
    # placing thread 0 on dimm 0 is free; on dimm 1 costs 300
    assert costs[0, 0] == 0.0
    assert costs[0, 1] == 300.0


def test_cost_table_shape_validation():
    with pytest.raises(MappingError):
        cost_table(np.zeros((2, 3)), np.zeros((2, 2)))


def test_distance_matrix_symmetric_zero_diagonal():
    config = SystemConfig.named("16D-8C")
    matrix = distance_matrix(config)
    assert np.allclose(matrix, matrix.T)
    assert np.all(np.diag(matrix) == 0)
    assert matrix[0, 8] > matrix[0, 7]  # inter-group farther than 7 hops


def test_solve_placement_respects_capacity():
    costs = np.zeros((8, 2))
    placement = solve_placement(costs, threads_per_dimm=4)
    assert sorted(placement).count(0) == 4
    assert sorted(placement).count(1) == 4


def test_solve_placement_infeasible_rejected():
    with pytest.raises(MappingError):
        solve_placement(np.zeros((9, 2)), threads_per_dimm=4)


def test_placement_is_cost_optimal_vs_bruteforce():
    import itertools

    rng = np.random.default_rng(7)
    costs = rng.integers(0, 10, size=(4, 2)).astype(float)
    placement = solve_placement(costs, threads_per_dimm=2)
    best = min(
        sum(costs[t, p[t]] for t in range(4))
        for p in itertools.product((0, 1), repeat=4)
        if p.count(0) <= 2 and p.count(1) <= 2
    )
    assert placement_cost(placement, costs) == pytest.approx(best)


def test_distance_aware_placement_co_locates_dominant_traffic():
    config = SystemConfig.named("4D-2C")
    traffic = np.zeros((4, 4))
    for thread in range(4):
        traffic[thread, 3 - thread] = 1000.0  # reversed affinity
    placement = distance_aware_placement(traffic, config, threads_per_dimm=4)
    assert placement == [3, 2, 1, 0]


def test_end_to_end_mapping_reduces_cost_vs_natural():
    config = SystemConfig.named("8D-4C")
    rng = np.random.default_rng(1)
    traffic = rng.integers(0, 1000, size=(32, 8)).astype(float)
    costs = cost_table(traffic, distance_matrix(config))
    optimized = distance_aware_placement(traffic, config)
    natural = [t // 4 for t in range(32)]
    assert placement_cost(optimized, costs) <= placement_cost(natural, costs)
