"""Tests for system configuration (repro.config)."""

import pytest

from repro.config import (
    PAPER_CONFIG_NAMES,
    LinkConfig,
    SystemConfig,
    default_groups,
)
from repro.errors import ConfigError


def test_named_parses_paper_style():
    cfg = SystemConfig.named("16D-8C")
    assert cfg.num_dimms == 16
    assert cfg.num_channels == 8
    assert cfg.name == "16D-8C"
    assert cfg.dimms_per_channel == 2


def test_named_rejects_garbage():
    with pytest.raises(ConfigError):
        SystemConfig.named("16x8")


def test_all_paper_configs_valid():
    for name in PAPER_CONFIG_NAMES:
        cfg = SystemConfig.named(name)
        assert cfg.name == name


def test_grouping_rule_matches_paper():
    # 4D-2C has one DL group; the rest have two.
    assert len(SystemConfig.named("4D-2C").groups) == 1
    assert len(SystemConfig.named("8D-4C").groups) == 2
    assert len(SystemConfig.named("16D-8C").groups) == 2


def test_default_groups_cover_all_dimms():
    groups = default_groups(12)
    assert sorted(d for g in groups for d in g) == list(range(12))


def test_channel_layout_channel_major():
    cfg = SystemConfig.named("16D-8C")
    assert cfg.channel_of(0) == 0
    assert cfg.channel_of(1) == 0
    assert cfg.channel_of(2) == 1
    assert cfg.dimms_on_channel(7) == [14, 15]


def test_group_lookup_and_position():
    cfg = SystemConfig.named("16D-8C")
    assert cfg.group_of(0) == 0
    assert cfg.group_of(8) == 1
    assert cfg.position_in_group(9) == (1, 1)


def test_master_dimm_is_group_middle():
    cfg = SystemConfig.named("16D-8C")
    assert cfg.master_dimm(0) == 4
    assert cfg.master_dimm(1) == 12


def test_indivisible_dimm_channel_combo_rejected():
    with pytest.raises(ConfigError):
        SystemConfig(num_dimms=10, num_channels=4)


def test_bad_topology_rejected():
    with pytest.raises(ConfigError):
        SystemConfig(num_dimms=4, num_channels=2, topology="hypercube")


def test_bad_groups_rejected():
    with pytest.raises(ConfigError):
        SystemConfig(num_dimms=4, num_channels=2, groups=[[0, 1], [2]])


def test_out_of_range_lookups_rejected():
    cfg = SystemConfig.named("4D-2C")
    with pytest.raises(ConfigError):
        cfg.channel_of(4)
    with pytest.raises(ConfigError):
        cfg.dimms_on_channel(2)


def test_link_scaled_preserves_other_fields():
    link = LinkConfig()
    fast = link.scaled(64.0)
    assert fast.bandwidth_gbps == 64.0
    assert fast.hop_latency_ns == link.hop_latency_ns
    assert link.bandwidth_gbps == 25.0
