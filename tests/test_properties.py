"""Property-based tests (hypothesis) for core data structures and invariants."""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.report import geomean
from repro.dram.address import AddressMap, decode_global, encode_global
from repro.interconnect.topology import Topology
from repro.mapping.mcmf import MinCostMaxFlow
from repro.mapping.placement import placement_cost, solve_placement
from repro.protocol.crc import crc32
from repro.protocol.packet import (
    MAX_PAYLOAD,
    Command,
    Packet,
    segment_payload,
    wire_bytes_for_transfer,
)
from repro.protocol.transaction import TagAllocator
from repro.sim.time import ns, transfer_ps


# -- protocol -------------------------------------------------------------------

@given(st.binary(max_size=512))
def test_crc_matches_zlib(data):
    assert crc32(data) == zlib.crc32(data)


@given(
    src=st.integers(0, 31),
    dst=st.integers(0, 31),
    cmd=st.sampled_from(list(Command)),
    addr=st.integers(0, (1 << 37) - 1),
    tag=st.integers(0, 255),
    payload=st.binary(max_size=MAX_PAYLOAD),
)
def test_packet_codec_round_trip(src, dst, cmd, addr, tag, payload):
    packet = Packet(src=src, dst=dst, cmd=cmd, addr=addr, tag=tag, payload=payload)
    decoded = Packet.decode(packet.encode())
    assert (decoded.src, decoded.dst, decoded.cmd) == (src, dst, cmd)
    assert (decoded.addr, decoded.tag, decoded.payload) == (addr, tag, payload)


@given(st.integers(0, 1 << 20))
def test_segmentation_conserves_bytes(nbytes):
    sizes = segment_payload(nbytes)
    assert sum(sizes) == nbytes or (nbytes == 0 and sizes == [0])
    assert all(0 <= s <= MAX_PAYLOAD for s in sizes)


@given(st.integers(1, 1 << 20))
def test_wire_bytes_bounded_overhead(nbytes):
    wire = wire_bytes_for_transfer(nbytes)
    assert wire >= nbytes
    # overhead is at most one header flit per 8 payload bytes + packet tails
    assert wire <= 3 * nbytes + 64


@given(st.lists(st.booleans(), min_size=1, max_size=300))
def test_tag_allocator_never_double_allocates(ops):
    allocator = TagAllocator(size=16)
    live = set()
    for acquire in ops:
        if acquire and allocator.available:
            tag = allocator.allocate()
            assert tag not in live
            live.add(tag)
        elif not acquire and live:
            allocator.release(live.pop())
    assert allocator.available == 16 - len(live)


# -- addresses ----------------------------------------------------------------------

@given(st.integers(0, 31), st.integers(0, (1 << 37) - 1))
def test_global_address_bijection(dimm, offset):
    assert decode_global(encode_global(dimm, offset)) == (dimm, offset)


@given(
    ranks=st.integers(1, 4),
    lines=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=50, unique=True),
)
def test_address_map_is_injective_on_lines(ranks, lines):
    amap = AddressMap(ranks=ranks, banks_per_rank=16, row_bytes=8192)
    locations = [amap.decode(line * 64) for line in lines]
    assert len(set(locations)) == len(locations)


# -- time ----------------------------------------------------------------------------

@given(st.integers(0, 1 << 30), st.floats(0.5, 100.0))
def test_transfer_time_monotone_in_size(nbytes, gbps):
    assert transfer_ps(nbytes + 64, gbps) >= transfer_ps(nbytes, gbps)


@given(st.integers(1, 1 << 24))
def test_transfer_time_inverse_in_bandwidth(nbytes):
    assert transfer_ps(nbytes, 50.0) <= transfer_ps(nbytes, 25.0)


# -- topology ---------------------------------------------------------------------

@given(
    name=st.sampled_from(["half_ring", "ring", "mesh", "torus"]),
    n=st.integers(2, 12),
    seed=st.integers(0, 1000),
)
@settings(max_examples=50)
def test_routing_triangle_inequality(name, n, seed):
    topo = Topology(name, n)
    rng_nodes = [(seed * 7 + i) % n for i in range(3)]
    a, b, c = rng_nodes
    if len({a, b, c}) == 3:
        assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)


@given(name=st.sampled_from(["half_ring", "ring", "mesh", "torus"]), n=st.integers(1, 12))
@settings(max_examples=40)
def test_hops_symmetric(name, n):
    topo = Topology(name, n)
    for a in range(n):
        for b in range(a + 1, n):
            assert topo.hops(a, b) == topo.hops(b, a)


# -- mapping -----------------------------------------------------------------------

@given(
    costs=st.lists(
        st.lists(st.integers(0, 50), min_size=2, max_size=2),
        min_size=2,
        max_size=6,
    )
)
@settings(max_examples=50)
def test_mcmf_placement_beats_or_ties_any_greedy(costs):
    import numpy as np

    matrix = np.asarray(costs, dtype=float)
    threads = matrix.shape[0]
    per_dimm = (threads + 1) // 2
    placement = solve_placement(matrix, threads_per_dimm=per_dimm)
    # greedy row-argmin, repaired to capacity, can never beat the optimum
    counts = {0: 0, 1: 0}
    greedy = []
    for t in range(threads):
        pick = int(matrix[t].argmin())
        if counts[pick] >= per_dimm:
            pick = 1 - pick
        counts[pick] += 1
        greedy.append(pick)
    assert placement_cost(placement, matrix) <= placement_cost(greedy, matrix)


@given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20))
def test_geomean_bounded_by_min_max(values):
    result = geomean(values)
    assert min(values) * 0.999 <= result <= max(values) * 1.001


# -- flow conservation in MCMF -------------------------------------------------------

@given(seed=st.integers(0, 200))
@settings(max_examples=30)
def test_mcmf_flow_conservation(seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    nodes = 6
    net = MinCostMaxFlow(nodes)
    edges = []
    for _ in range(10):
        u, v = rng.integers(0, nodes, size=2)
        if u != v:
            edges.append(
                (u, v, net.add_edge(int(u), int(v), int(rng.integers(1, 5)),
                                    float(rng.integers(0, 9))))
            )
    flow, cost = net.solve(0, nodes - 1)
    assert flow >= 0
    assert cost >= 0
    # conservation: inflow == outflow at interior nodes
    balance = [0] * nodes
    for u, v, edge_id in edges:
        f = net.flow_on(edge_id)
        balance[u] -= f
        balance[v] += f
    assert balance[0] == -flow
    assert balance[nodes - 1] == flow
    for node in range(1, nodes - 1):
        assert balance[node] == 0
