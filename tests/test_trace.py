"""Tests for op-trace record/replay (repro.workloads.trace)."""

import pytest

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.nmp.system import NMPSystem
from repro.workloads.microbench import SyncInterval, UniformRandom
from repro.workloads.trace import TraceWorkload, record_trace


def test_round_trip_preserves_streams(tmp_path):
    path = tmp_path / "uniform.trace"
    workload = UniformRandom(ops_per_thread=25, seed=6)
    written = record_trace(workload, path, num_threads=8, num_dimms=4)
    assert written > 0
    replay = TraceWorkload(path)
    original = [list(f()) for f in workload.thread_factories(8, 4)]
    replayed = [list(f()) for f in replay.thread_factories(8, 4)]
    assert replayed == original
    assert replay.total_ops == written


def test_trace_includes_barriers_and_broadcasts(tmp_path):
    path = tmp_path / "sync.trace"
    record_trace(SyncInterval(interval_instructions=50, barriers=2), path, 8, 4)
    replay = TraceWorkload(path)
    from repro.workloads.ops import Barrier

    stream = list(replay.thread_factories(8, 4)[0]())
    assert sum(isinstance(op, Barrier) for op in stream) == 2


def test_replay_shape_mismatch_rejected(tmp_path):
    path = tmp_path / "t.trace"
    record_trace(UniformRandom(ops_per_thread=5), path, 8, 4)
    replay = TraceWorkload(path)
    with pytest.raises(WorkloadError):
        replay.thread_factories(16, 4)
    with pytest.raises(WorkloadError):
        replay.thread_factories(8, 8)


def test_missing_or_invalid_file_rejected(tmp_path):
    with pytest.raises(WorkloadError):
        TraceWorkload(tmp_path / "missing.trace")
    bad = tmp_path / "bad.trace"
    bad.write_text('{"magic": "something-else"}\n')
    with pytest.raises(WorkloadError):
        TraceWorkload(bad)


def test_replayed_run_matches_live_run(tmp_path):
    """A trace replay produces the identical simulation outcome."""
    path = tmp_path / "repro.trace"
    workload = UniformRandom(ops_per_thread=40, remote_fraction=0.4, seed=13)
    record_trace(workload, path, 16, 4)

    live = NMPSystem(SystemConfig.named("4D-2C")).run(
        workload.thread_factories(16, 4)
    )
    replayed = NMPSystem(SystemConfig.named("4D-2C")).run(
        TraceWorkload(path).thread_factories(16, 4)
    )
    assert replayed.time_ps == live.time_ps
