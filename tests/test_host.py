"""Tests for host-side components: channels, polling, forwarding, CPU."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.host.cpu import HostCPUSystem
from repro.host.forwarding import ForwardController
from repro.host.memchannel import MemoryChannel
from repro.host.polling import POLLING_STRATEGIES, make_polling
from repro.nmp.system import NMPSystem
from repro.sim import Simulator, StatRegistry
from repro.sim.time import ns
from repro.workloads.microbench import UniformRandom
from repro.workloads.ops import Compute, Read


def _channels(config, sim, stats):
    return [
        MemoryChannel(sim, ch, config.dimms_on_channel(ch), config.channel, stats)
        for ch in range(config.num_channels)
    ]


# -- memory channel ---------------------------------------------------------------

def test_channel_transfer_counts_bytes_by_kind():
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig.named("4D-2C")
    channel = _channels(config, sim, stats)[0]
    channel.transfer(512, kind="fwd")
    channel.transfer(256, kind="poll")
    sim.run()
    assert stats.get("bus.fwd_bytes") == 512
    assert stats.get("bus.poll_bytes") == 256
    assert stats.get("bus.bytes") == 768


def test_channel_polling_load_raises_occupancy():
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig.named("4D-2C")
    channel = _channels(config, sim, stats)[0]
    channel.set_polling_load(0.3)
    sim.schedule(ns(1000), lambda _: None)
    sim.run()
    assert channel.occupancy() == pytest.approx(0.3)


# -- polling strategies ---------------------------------------------------------

@pytest.mark.parametrize("strategy", POLLING_STRATEGIES)
def test_polling_notice_fires(strategy):
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig.named("16D-8C")
    polling = make_polling(strategy, sim, config, stats)
    polling.configure(_channels(config, sim, stats))
    fired = []
    polling.notice(3).add_callback(lambda ev: fired.append(sim.now))
    sim.run()
    assert len(fired) == 1
    assert fired[0] > 0


def test_unknown_polling_strategy_rejected():
    sim, stats = Simulator(), StatRegistry()
    with pytest.raises(ConfigError):
        make_polling("telepathy", sim, SystemConfig.named("4D-2C"), stats)


def test_baseline_polling_taxes_every_channel():
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig.named("16D-8C")
    polling = make_polling("baseline", sim, config, stats)
    channels = _channels(config, sim, stats)
    polling.configure(channels)
    sim.schedule(ns(1000), lambda _: None)
    sim.run()
    for channel in channels:
        assert channel.occupancy() == pytest.approx(130 / 400)


def test_proxy_polling_taxes_only_proxy_channels():
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig.named("16D-8C")
    polling = make_polling("proxy", sim, config, stats)
    channels = _channels(config, sim, stats)
    polling.configure(channels)
    sim.schedule(ns(1000), lambda _: None)
    sim.run()
    taxed = [ch.channel_id for ch in channels if ch.occupancy() > 0]
    proxies = {config.master_dimm(g) for g in range(len(config.groups))}
    assert set(taxed) == {config.channel_of(p) for p in proxies}


def test_proxy_of_maps_to_group_master():
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig.named("16D-8C")
    polling = make_polling("proxy", sim, config, stats)
    assert polling.proxy_of(0) == config.master_dimm(0)
    assert polling.proxy_of(15) == config.master_dimm(1)


def test_interrupt_polling_scans_channel_and_costs_latency():
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig.named("16D-8C")
    polling = make_polling("baseline+interrupt", sim, config, stats)
    polling.configure(_channels(config, sim, stats))
    fired = []
    polling.notice(3).add_callback(lambda ev: fired.append(sim.now))
    sim.run()
    assert fired[0] >= ns(config.host.interrupt_latency_ns)
    assert stats.get("poll.scan_reads") == config.dimms_per_channel


def test_interrupt_slower_than_proxy_notice():
    config = SystemConfig.named("16D-8C")
    times = {}
    for strategy in ("proxy", "proxy+interrupt"):
        sim, stats = Simulator(), StatRegistry()
        polling = make_polling(strategy, sim, config, stats)
        polling.configure(_channels(config, sim, stats))
        fired = []
        polling.notice(0).add_callback(lambda ev: fired.append(sim.now))
        sim.run()
        times[strategy] = fired[0]
    assert times["proxy"] < times["proxy+interrupt"]


# -- forward controller -----------------------------------------------------------

def test_forward_crosses_both_channels():
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig.named("4D-2C")
    polling = make_polling("baseline", sim, config, stats)
    channels = _channels(config, sim, stats)
    polling.configure(channels)
    controller = ForwardController(sim, config, channels, polling, stats)
    done = []
    controller.forward(0, 2, 1024).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert stats.get("fwd.ops") == 1
    assert stats.get("bus.fwd_bytes") == 2048  # source + destination channel


def test_forward_notice_skip_is_faster():
    config = SystemConfig.named("4D-2C")
    times = {}
    for notice in (None, -1):
        sim, stats = Simulator(), StatRegistry()
        polling = make_polling("baseline", sim, config, stats)
        channels = _channels(config, sim, stats)
        polling.configure(channels)
        controller = ForwardController(sim, config, channels, polling, stats)
        controller.forward(0, 2, 64, notice_dimm=notice)
        sim.run()
        times[notice] = sim.now
    assert times[-1] < times[None]


def test_forward_engine_serialises_bulk():
    sim, stats = Simulator(), StatRegistry()
    config = SystemConfig.named("4D-2C")
    polling = make_polling("baseline", sim, config, stats)
    channels = _channels(config, sim, stats)
    polling.configure(channels)
    controller = ForwardController(sim, config, channels, polling, stats)
    done = []
    for _ in range(4):
        controller.forward(0, 2, 1 << 20, notice_dimm=-1).add_callback(
            lambda ev: done.append(sim.now)
        )
    sim.run()
    assert sorted(done) == done and done[-1] > done[0]
    assert controller.engine.busy_ps >= 4 * (1 << 20) / 18.0 * 1000 * 0.99


# -- host CPU baseline ---------------------------------------------------------

def test_cpu_baseline_runs_workload():
    config = SystemConfig.named("4D-2C")
    system = HostCPUSystem(config)
    workload = UniformRandom(ops_per_thread=40, seed=5)
    result = system.run(workload.thread_factories(8, 4), workload_name="uniform")
    assert result.mechanism == "cpu"
    assert result.time_ps > 0
    assert len(result.thread_end_ps) == 8


def test_cpu_compute_scales_with_oversubscription():
    config = SystemConfig.named("4D-2C")

    def compute_only(cycles):
        def factory():
            def gen():
                yield Compute(cycles)
            return gen()
        return factory

    few = HostCPUSystem(config).run([compute_only(60000)] * 16)
    many = HostCPUSystem(config).run([compute_only(60000)] * 64)
    assert many.time_ps == pytest.approx(4 * few.time_ps, rel=0.01)


def test_cpu_baseline_channels_are_derated():
    config = SystemConfig.named("4D-2C")
    cpu = HostCPUSystem(config)
    nmp = NMPSystem(config, idc="aim")
    assert cpu.channels[0].bus.bytes_per_ns < nmp.channels[0].bus.bytes_per_ns


def test_cpu_barrier_requires_all_threads():
    config = SystemConfig.named("4D-2C")
    system = HostCPUSystem(config)
    from repro.workloads.ops import Barrier

    order = []

    def thread(delay_cycles, tag):
        def factory():
            def gen():
                yield Compute(delay_cycles)
                yield Barrier()
                order.append((tag, system.sim.now))
            return gen()
        return factory

    system.run([thread(100, "fast"), thread(50000, "slow")])
    assert abs(order[0][1] - order[1][1]) < ns(1)  # released together
