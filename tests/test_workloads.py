"""Tests for all Table IV workloads: structure invariants of op streams."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    BFS,
    SSSP,
    SSSPBC,
    BulkTransfer,
    Hotspot,
    KMeans,
    NeedlemanWunsch,
    PageRank,
    PageRankBC,
    SpMV,
    SpMVBC,
    SyncInterval,
    TSPow,
    UniformRandom,
)
from repro.workloads.ops import Barrier, Broadcast, Compute, Flush, Read, Write

ALL_WORKLOADS = [
    BFS(scale=8),
    SSSP(scale=8, rounds=2),
    SSSPBC(scale=8, rounds=2),
    PageRank(scale=8, iterations=2),
    PageRankBC(scale=8, iterations=2),
    SpMV(scale=8, iterations=1),
    SpMVBC(scale=8, iterations=1),
    Hotspot(rows=64, cols=64, iterations=2),
    KMeans(points=2048, iterations=2),
    NeedlemanWunsch(sequence_length=512, block=128),
    TSPow(samples_per_thread=1024, chunks=4),
    SyncInterval(interval_instructions=100, barriers=3),
    UniformRandom(ops_per_thread=20),
]

VALID_OPS = (Compute, Read, Write, Broadcast, Barrier, Flush)


def _materialise(workload, threads=16, dimms=4):
    return [list(f()) for f in workload.thread_factories(threads, dimms)]


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_ops_are_well_formed(workload):
    streams = _materialise(workload)
    assert len(streams) == 16
    for stream in streams:
        assert stream, f"{workload.name}: empty thread"
        for op in stream:
            assert isinstance(op, VALID_OPS)
            if isinstance(op, (Read, Write)):
                assert 0 <= op.dimm < 4
                assert op.nbytes > 0
                assert op.offset >= 0
            if isinstance(op, Compute):
                assert op.cycles >= 0
            if isinstance(op, Broadcast):
                assert op.nbytes > 0


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_barrier_counts_equal_across_threads(workload):
    """Barriers are global: every thread must hit the same number or the
    kernel deadlocks."""
    streams = _materialise(workload)
    counts = {sum(isinstance(op, Barrier) for op in stream) for stream in streams}
    assert len(counts) == 1


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_factories_are_reinvocable_and_deterministic(workload):
    first = _materialise(workload)
    second = _materialise(workload)
    assert first == second


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_total_bytes_positive(workload):
    streams = _materialise(workload)
    total = sum(
        op.nbytes
        for stream in streams
        for op in stream
        if isinstance(op, (Read, Write, Broadcast))
    )
    assert total > 0


def test_graph_kernels_emit_local_and_remote_traffic():
    workload = PageRank(scale=9, iterations=1)
    streams = _materialise(workload, threads=16, dimms=4)
    local = remote = 0
    # thread 0's home is dimm 0 (block-major layout)
    for op in streams[0]:
        if isinstance(op, (Read, Write)):
            if op.dimm == 0:
                local += op.nbytes
            else:
                remote += op.nbytes
    assert local > remote > 0


def test_byte_scale_multiplies_traffic():
    small = PageRank(scale=8, iterations=1, byte_scale=1)
    big = PageRank(scale=8, iterations=1, byte_scale=4)

    def total(workload):
        return sum(
            op.nbytes
            for stream in _materialise(workload)
            for op in stream
            if isinstance(op, (Read, Write))
        )

    ratio = total(big) / total(small)
    assert 3.5 < ratio < 4.5


def test_hotspot_halo_targets_adjacent_strips():
    workload = Hotspot(rows=64, cols=64, iterations=1)
    streams = _materialise(workload, threads=16, dimms=4)
    # middle thread reads only from its own and adjacent strips' DIMMs
    targets = {op.dimm for op in streams[8] if isinstance(op, Read)}
    assert targets <= {1, 2, 3}


def test_nw_wavefront_limits_parallelism():
    workload = NeedlemanWunsch(sequence_length=512, block=128)  # 4x4 blocks
    streams = _materialise(workload, threads=4, dimms=4)
    barriers = sum(isinstance(op, Barrier) for op in streams[0])
    assert barriers == 2 * 4 - 1  # one per anti-diagonal


def test_kmeans_reduces_to_single_dimm_and_broadcasts():
    workload = KMeans(points=2048, iterations=1)
    streams = _materialise(workload, threads=8, dimms=4)
    # only thread 0 broadcasts the reduced centroids
    broadcasters = [
        i for i, s in enumerate(streams) if any(isinstance(op, Broadcast) for op in s)
    ]
    assert broadcasters == [0]


def test_bulk_transfer_validation():
    with pytest.raises(WorkloadError):
        BulkTransfer(total_bytes=0, chunk_bytes=64)
    with pytest.raises(WorkloadError):
        BulkTransfer(total_bytes=64, chunk_bytes=64).thread_factories(2, 4)
    with pytest.raises(WorkloadError):
        BulkTransfer(64, 64, src_dimm=0, dst_dimm=9).thread_factories(1, 4)


def test_uniform_random_remote_fraction_zero_is_all_local():
    workload = UniformRandom(ops_per_thread=50, remote_fraction=0.0, seed=1)
    streams = _materialise(workload)
    for thread_id, stream in enumerate(streams):
        home = min(thread_id // 4, 3)
        for op in stream:
            if isinstance(op, (Read, Write)):
                assert op.dimm == home


def test_nw_rejects_unaligned_block():
    with pytest.raises(WorkloadError):
        NeedlemanWunsch(sequence_length=1000, block=128)
