"""Tests for data-placement specs: validation, cache-key stability, the
static-policy compatibility shim, and the migration crossover."""

import json

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.experiments import mapping_ablation
from repro.experiments.common import build_workload, threads_for
from repro.experiments.runner import RunSpec, SweepRunner, execute_spec
from repro.mapping.pagetable import PageTable, make_policy
from repro.nmp.system import NMPSystem


# -- spec validation -----------------------------------------------------------------


def test_spec_rejects_unknown_data_placement():
    with pytest.raises(ConfigError):
        RunSpec(config="4D-2C", workload="hotpage", data_placement="best_effort")


def test_spec_rejects_dynamic_placement_on_optimized_kind():
    with pytest.raises(ConfigError):
        RunSpec(
            config="4D-2C",
            workload="hotpage",
            kind="optimized",
            data_placement="next_touch",
        )
    # the supported spelling of the same intent
    RunSpec(
        config="4D-2C",
        workload="hotpage",
        kind="nmp",
        placement="optimized",
        data_placement="profiled",
    )


def test_build_workload_rejects_paging_unpaged_workloads():
    with pytest.raises(ConfigError):
        build_workload("kmeans", size="tiny", paged=True)


# -- cache-key stability -------------------------------------------------------------


def test_static_placement_is_omitted_from_payload_and_key():
    legacy = RunSpec(config="4D-2C", workload="pagerank", size="tiny")
    payload = legacy.to_json_dict()
    assert "data_placement" not in payload
    # a pre-placement-era payload reconstructs to an equal spec
    assert RunSpec(**payload) == legacy
    assert RunSpec(**payload).cache_key() == legacy.cache_key()


def test_dynamic_placement_changes_the_key():
    static = RunSpec(config="4D-2C", workload="hotpage", size="tiny")
    dynamic = RunSpec(
        config="4D-2C", workload="hotpage", size="tiny", data_placement="next_touch"
    )
    assert dynamic.to_json_dict()["data_placement"] == "next_touch"
    assert dynamic.cache_key() != static.cache_key()


# -- the static shim reproduces the legacy path byte for byte ------------------------


def test_static_pagetable_is_byte_identical_to_legacy_run():
    config = SystemConfig.named("4D-2C")
    threads = threads_for(config)

    legacy = build_workload("pagerank", size="tiny")
    baseline = NMPSystem(config, idc="mcn").run(
        legacy.thread_factories(threads, config.num_dimms),
        workload_name=legacy.name,
    )

    paged = build_workload("pagerank", size="tiny", paged=True)
    shimmed = NMPSystem(config, idc="mcn").run(
        paged.thread_factories(threads, config.num_dimms),
        workload_name=paged.name,
        pagetable=PageTable(make_policy("static"), config.num_dimms),
    )

    assert json.dumps(shimmed.to_json_dict(), sort_keys=True) == json.dumps(
        baseline.to_json_dict(), sort_keys=True
    )


def test_static_spec_matches_spec_without_placement_field():
    implicit = execute_spec(RunSpec(config="4D-2C", workload="hotpage", size="tiny"))
    explicit = execute_spec(
        RunSpec(config="4D-2C", workload="hotpage", size="tiny", data_placement="static")
    )
    assert json.dumps(explicit.to_json_dict(), sort_keys=True) == json.dumps(
        implicit.to_json_dict(), sort_keys=True
    )


# -- the crossover: migration beats the static shard on skew -------------------------


def _hotpage(policy, kind="nmp"):
    return RunSpec(
        config="4D-2C",
        workload="hotpage",
        size="tiny",
        kind=kind,
        mechanism="mcn",
        data_placement=policy,
    )


def test_dynamic_policies_beat_static_on_hotpage():
    times = {
        policy: execute_spec(_hotpage(policy)).time_us
        for policy in ("static", "first_touch", "next_touch", "profiled")
    }
    assert times["first_touch"] < times["static"]
    assert times["next_touch"] < times["static"]
    assert times["profiled"] < times["static"]
    # the offline policies avoid the online policy's migration cost
    assert times["profiled"] <= times["next_touch"]


def test_cpu_kind_supports_dynamic_placement():
    result = execute_spec(_hotpage("next_touch", kind="cpu"))
    assert result.stats.sum_suffix("placement.migrations") > 0
    static = execute_spec(_hotpage("static", kind="cpu"))
    assert static.stats.sum_suffix("placement.migrations") == 0
    assert result.time_us != static.time_us


# -- parallel equivalence over a migration-heavy grid --------------------------------


def test_jobs2_equals_jobs1_on_mixed_placement_grid():
    grid = [
        RunSpec(config="4D-2C", workload="hotpage", size="tiny", mechanism="mcn"),
        _hotpage("next_touch"),
        _hotpage("first_touch"),
        _hotpage("profiled"),
        _hotpage("next_touch", kind="cpu"),
        RunSpec(
            config="4D-2C",
            workload="pagerank",
            size="tiny",
            data_placement="profiled",
            placement="optimized",
        ),
    ]
    serialize = lambda results: json.dumps(
        [r.to_json_dict() for r in results], sort_keys=True
    )
    serial = SweepRunner(jobs=1).run(grid)
    parallel = SweepRunner(jobs=2).run(grid)
    assert serialize(parallel) == serialize(serial)


# -- mapping ablation: the natural row landed ----------------------------------------


def test_mapping_ablation_reports_natural_row():
    assert mapping_ablation.POLICIES == ("random", "optimized", "natural")
    results = mapping_ablation.run(size="tiny", workload_names=("pagerank",))
    row = results["pagerank"]
    for key in ("natural_us", "natural_cost", "random_cost", "optimized_cost"):
        assert key in row
    # Fig.10-style workloads co-locate threads with their shard, so the
    # natural placement's Algorithm-1 cost is no worse than random's
    assert row["natural_cost"] <= row["random_cost"]
