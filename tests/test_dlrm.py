"""DLRM embedding workload: golden-result numerics + traffic model.

The core property: every mechanism-shaped dataflow
(:meth:`DLRMEmbedding.pooled_via`) produces pooled vectors *exactly*
equal to the direct reference reduction — integer weights make tree vs
linear reduction order immaterial, so the assertions are equality, not
tolerance.
"""

import pytest

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.experiments.common import build_workload, run_cpu, run_nmp
from repro.workloads.dlrm import (
    BATCH_STAMP,
    ELEMENT_BYTES,
    POOLING_MECHANISMS,
    DLRMEmbedding,
)
from repro.workloads.ops import Barrier, Compute, Read, Stamp, Write


def small_dlrm(**overrides):
    kwargs = dict(
        tables=3,
        rows=64,
        dim=4,
        pooling=5,
        batches_per_thread=2,
        batch_size=4,
        seed=9,
    )
    kwargs.update(overrides)
    return DLRMEmbedding(**kwargs)


# -- construction and determinism ----------------------------------------------------


def test_rejects_nonsense_shapes():
    with pytest.raises(WorkloadError):
        DLRMEmbedding(tables=0)
    with pytest.raises(WorkloadError):
        DLRMEmbedding(dim=-1)
    with pytest.raises(WorkloadError):
        DLRMEmbedding(zipf=0.0)


def test_rows_and_queries_are_deterministic_per_seed():
    a, b = small_dlrm(), small_dlrm()
    assert a.row_vector(1, 7) == b.row_vector(1, 7)
    assert a.query_indices(3) == b.query_indices(3)
    assert small_dlrm(seed=10).query_indices(3) != a.query_indices(3)


def test_zipfian_stream_is_head_heavy():
    workload = small_dlrm(rows=256, batches_per_thread=8, batch_size=16)
    counts = {}
    for batch in range(32):
        for query in workload.query_indices(batch):
            for row_ids in query:
                for row in row_ids:
                    counts[row] = counts.get(row, 0) + 1
    head = sum(counts.get(r, 0) for r in range(16))
    tail = sum(counts.get(r, 0) for r in range(240, 256))
    assert head > 10 * max(1, tail)  # hot head dominates the cold tail


def test_sharding_rotates_hot_head_across_dimms():
    workload = small_dlrm(tables=8)
    # row 0 (the Zipf head) of each table lands on a different DIMM
    heads = {workload.shard_of(table, 0, 8) for table in range(8)}
    assert len(heads) == 8
    # and every (table, row) maps inside the DIMM range
    for table in range(8):
        for row in range(0, 64, 7):
            assert 0 <= workload.shard_of(table, row, 4) < 4


# -- golden-result property tests: every mechanism equals the reference --------------


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
def test_all_mechanisms_match_reference_exactly(seed):
    workload = DLRMEmbedding(
        tables=2 + seed % 3,
        rows=32 + 8 * seed,
        dim=2 + seed % 5,
        pooling=1 + seed % 7,
        batches_per_thread=2,
        batch_size=3,
        seed=seed,
    )
    for batch in range(3):
        reference = workload.reference_pooled(batch)
        for mechanism in POOLING_MECHANISMS:
            for num_dimms in (2, 4, 16):
                assert (
                    workload.pooled_via(mechanism, batch, num_dimms) == reference
                ), (seed, mechanism, num_dimms)


def test_pooled_via_rejects_unknown_mechanism():
    with pytest.raises(WorkloadError):
        small_dlrm().pooled_via("rdma", 0, 4)


def test_tree_reduce_handles_odd_and_single_partials():
    workload = small_dlrm(dim=3)
    assert workload._tree_reduce([[1, 2, 3]]) == [1, 2, 3]
    assert workload._tree_reduce([[1, 0, 0], [0, 1, 0], [0, 0, 1]]) == [1, 1, 1]


# -- traffic model -------------------------------------------------------------------


def test_batch_traffic_matches_query_indices():
    workload = small_dlrm()
    rows_at, partials_at = workload.batch_traffic(0, 4)
    total_rows = sum(rows_at.values())
    assert total_rows == workload.batch_size * workload.tables * workload.pooling
    # one partial per (query, table, shard with at least one row)
    assert sum(partials_at.values()) <= total_rows
    assert set(partials_at) == set(rows_at)


def test_factories_are_reinvocable_and_deterministic():
    workload = small_dlrm()
    factories = workload.thread_factories(8, 4)
    first = [list(f()) for f in factories]
    second = [list(f()) for f in factories]
    assert first == second


def test_op_stream_bytes_match_traffic_model():
    workload = small_dlrm()
    num_threads, num_dimms = 8, 4
    factories = workload.thread_factories(num_threads, num_dimms)
    serve_read = 0
    gather_read = 0
    stamps = 0
    for thread_id, factory in enumerate(factories):
        home = thread_id // 2
        in_gather = True
        for op in factory():
            if isinstance(op, Barrier):
                in_gather = False
            elif isinstance(op, Stamp):
                assert op.key == BATCH_STAMP
                stamps += 1
                in_gather = True
            elif isinstance(op, Read):
                if in_gather:
                    assert op.dimm == home  # gather phase reads locally
                    gather_read += op.nbytes
                else:
                    serve_read += op.nbytes
    expected_rows = 0
    expected_partials = 0
    for batch in range(workload.batches_per_thread * num_threads):
        rows_at, partials_at = workload.batch_traffic(batch, num_dimms)
        expected_rows += sum(rows_at.values())
        expected_partials += sum(partials_at.values())
    vector = workload.dim * ELEMENT_BYTES
    assert gather_read == expected_rows * vector
    assert serve_read == expected_partials * vector
    assert stamps == num_threads * workload.batches_per_thread


def test_response_write_lands_on_home_dimm():
    workload = small_dlrm()
    factories = workload.thread_factories(8, 4)
    for thread_id, factory in enumerate(factories):
        writes = [op for op in factory() if isinstance(op, Write)]
        assert len(writes) == workload.batches_per_thread
        expected = (
            workload.batch_size * workload.tables * workload.dim * ELEMENT_BYTES
        )
        for op in writes:
            assert op.dimm == thread_id // 2
            assert op.nbytes == expected


# -- end-to-end runs -----------------------------------------------------------------


def test_nmp_run_records_batch_latency_histograms():
    config = SystemConfig.named("4D-2C")
    workload = build_workload("dlrm", "tiny")
    result = run_nmp(config, workload, mechanism="dimm_link")
    histograms = result.stats.histograms_suffix(BATCH_STAMP)
    assert histograms  # per-core scopes recorded batch latencies
    total = sum(h.count for h in histograms.values())
    threads = config.num_dimms * config.nmp.cores_per_dimm
    assert total == threads * workload.batches_per_thread
    assert all(h.min > 0 for h in histograms.values())


def test_cpu_run_records_batch_latency_histograms():
    config = SystemConfig.named("4D-2C")
    workload = build_workload("dlrm", "tiny")
    result = run_cpu(config, workload)
    total = sum(
        h.count for h in result.stats.histograms_suffix(BATCH_STAMP).values()
    )
    threads = config.num_dimms * config.nmp.cores_per_dimm
    assert total == threads * workload.batches_per_thread


def test_build_workload_overrides_shape():
    workload = build_workload("dlrm", "tiny", overrides={"batch_size": 6})
    assert isinstance(workload, DLRMEmbedding)
    assert workload.batch_size == 6
    assert workload.tables == 4  # rest of the tiny preset intact
